//! Trip planning with mixed spatial + non-spatial skylines (paper §1, §6).
//!
//! "In the domain of trip planning, the spatial skyline of hotels with
//! respect to the fixed locations of conference venue, beaches and museums
//! includes all the interesting hotels for lodging" — and §6 adds static
//! attributes: "the best restaurant in LA might be dominated in terms of
//! distance [...] but it is still in the skyline because of its rating."
//!
//! This example computes three skylines over the same hotel set:
//!   1. the pure spatial skyline S(Q)        (distance only),
//!   2. the static skyline S(A)              (price/rating only),
//!   3. the mixed skyline S(A, Q)            (both) — a superset of each.
//!
//! Run with: `cargo run --example trip_planning`

use spatial_skyline::prelude::*;

struct Hotel {
    name: &'static str,
    location: Point,
    price: f64,  // $ per night (lower is better)
    rating: f64, // 0-10, flipped to "badness" so lower is better
}

fn main() {
    let hotels = [
        Hotel {
            name: "Grand Marina",
            location: Point::new(1.0, 8.5),
            price: 320.0,
            rating: 9.1,
        },
        Hotel {
            name: "Conference Inn",
            location: Point::new(5.1, 5.2),
            price: 180.0,
            rating: 7.4,
        },
        Hotel {
            name: "Beach Hostel",
            location: Point::new(0.8, 1.2),
            price: 60.0,
            rating: 5.9,
        },
        Hotel {
            name: "Museum Suites",
            location: Point::new(8.9, 6.8),
            price: 240.0,
            rating: 8.2,
        },
        Hotel {
            name: "Midtown Budget",
            location: Point::new(4.8, 4.4),
            price: 95.0,
            rating: 6.1,
        },
        Hotel {
            name: "Harbor View",
            location: Point::new(2.2, 7.1),
            price: 210.0,
            rating: 8.8,
        },
        Hotel {
            name: "Airport Express",
            location: Point::new(9.7, 0.5),
            price: 110.0,
            rating: 6.6,
        },
        Hotel {
            name: "Old Town B&B",
            location: Point::new(6.3, 7.9),
            price: 150.0,
            rating: 7.9,
        },
    ];

    // The three must-see locations of the trip.
    let venue = Point::new(5.0, 5.0); // conference venue
    let beach = Point::new(1.0, 1.0); // the beach
    let museum = Point::new(8.5, 7.0); // the museum
    let q = vec![venue, beach, museum];

    let points: Vec<Point> = hotels.iter().map(|h| h.location).collect();
    // Attributes are minimized: price as-is, rating flipped.
    let attrs: Vec<Vec<f64>> = hotels
        .iter()
        .map(|h| vec![h.price, 10.0 - h.rating])
        .collect();

    let ctx = QueryContext::new(&q);
    let index = RTreeIndex::new(&points);
    let vindex = VoronoiIndex::new(&points).expect("distinct hotel locations");

    // 1. Pure spatial skyline.
    let spatial = b2s2(&index, &ctx);
    println!("S(Q) — interesting by distance to venue/beach/museum alone:");
    for &i in &spatial.skyline {
        println!("  {}", hotels[i as usize].name);
    }

    // 2. Static skyline over (price, 10 - rating).
    let static_ids = spatial_skyline::skyline::bnl(&attrs);
    println!("\nS(A) — interesting by price/rating alone:");
    for &i in &static_ids {
        let h = &hotels[i];
        println!("  {:<16} ${} rating {}", h.name, h.price, h.rating);
    }

    // 3. Mixed skyline: both criteria at once.
    let mctx = MixedContext::new(&points, &attrs, &ctx);
    let mixed = mixed_vs2(&vindex, &mctx);
    println!("\nS(A, Q) — the full shortlist (distances AND price/rating):");
    for &i in &mixed.skyline {
        let h = &hotels[i as usize];
        let d: Vec<String> = q
            .iter()
            .map(|&x| format!("{:.1}", x.distance(h.location)))
            .collect();
        println!(
            "  {:<16} ${:<4} rating {:<4} distances [{}]",
            h.name,
            h.price,
            h.rating,
            d.join(", ")
        );
    }

    // The containment laws of §6.
    for &i in &spatial.skyline {
        assert!(mixed.contains(i), "S(Q) ⊆ S(A,Q) violated");
    }
    for &i in &static_ids {
        assert!(mixed.contains(i as u32), "S(A) ⊆ S(A,Q) violated");
    }
    // And the R-tree variant agrees with the Voronoi variant.
    assert_eq!(mixed.skyline, mixed_b2s2(&index, &mctx).skyline);
    println!("\nS(A) ⊆ S(A,Q) and S(Q) ⊆ S(A,Q) hold; both algorithms agree.");
}
