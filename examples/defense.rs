//! Defense/intelligence scenario from the paper's introduction (§1).
//!
//! "Consider the locations of soldiers penetrating into enemy's camps as
//! query locations and the enemy's guard stations as data points. The
//! stations in the spatial skyline are those from which an attack might
//! be initiated against the platoon of soldiers."
//!
//! Any station NOT in the skyline is strictly farther from every soldier
//! than some skyline station — it can never be the first threat. The
//! example also shows Lemma 5's *closer chain*: for each threatening
//! station the subset of soldiers whose positions actually determine its
//! dominance.
//!
//! Run with: `cargo run --example defense`

use spatial_skyline::prelude::*;
use spatial_skyline::workload::usgs::uniform_points;

fn main() {
    // Guard stations scattered over the theatre (10 km square).
    let stations: Vec<Point> = uniform_points(400, 0xDEF)
        .into_iter()
        .map(|p| Point::new(p.x * 10.0, p.y * 10.0))
        .collect();

    // A platoon of five soldiers advancing in formation.
    let platoon = vec![
        Point::new(4.2, 4.0),
        Point::new(4.6, 4.3),
        Point::new(5.0, 4.0),
        Point::new(4.6, 3.7),
        Point::new(4.6, 4.0), // the radio operator in the middle
    ];

    let ctx = QueryContext::new(&platoon);
    let index = VoronoiIndex::new(&stations).expect("distinct station positions");
    let threats = vs2(&index, &ctx);

    println!(
        "{} of {} guard stations are potential first threats:",
        threats.skyline.len(),
        stations.len()
    );

    // Theorem 2 in action: the radio operator is inside the formation's
    // convex hull, so his position is irrelevant to the threat set.
    assert_eq!(
        ctx.anchors().len(),
        4,
        "the interior soldier must not be an anchor"
    );
    let without_op = QueryContext::new(&platoon[..4]);
    let same = vs2(&index, &without_op);
    assert_eq!(threats.skyline, same.skyline);
    println!("(the interior soldier's position does not affect the set — Theorem 2)");

    // For each threat, report which soldiers "pin" it: the closer chain of
    // the formation hull seen from the station (Lemma 5).
    println!("\nthreat  position            pinned by soldiers (closer chain)");
    for &i in threats.skyline.iter().take(8) {
        let s = stations[i as usize];
        let chain = ctx.hull().closer_chain(s);
        let who: Vec<String> = chain.iter().map(|&k| format!("#{k}")).collect();
        let label = if who.is_empty() {
            "TRAPPED inside the formation".to_string()
        } else {
            who.join(", ")
        };
        println!("{i:>6}  ({:>6.2}, {:>6.2})   {label}", s.x, s.y);
    }

    // Cross-check with the R-tree algorithm.
    let rt = RTreeIndex::new(&stations);
    assert_eq!(threats.skyline, b2s2(&rt, &ctx).skyline);
    println!("\nB²S² agrees with VS² on the threat set ✓");
}
