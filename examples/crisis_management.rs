//! Crisis management: evacuation priorities around multiple fires (§1).
//!
//! "In crisis management domain, the residential buildings that must be
//! evacuated first in the event of several explosions/fires are those
//! which are in the spatial skyline with respect to the fire locations.
//! The reason is that these places are either potentially trapped in the
//! convex hull of fires or located at the edges of the expanding fire."
//!
//! This example generates a synthetic city, drops three fires, and splits
//! the skyline into the two classes the paper describes: buildings inside
//! `CH(fires)` (trapped — Theorem 1 guarantees they are all in the
//! skyline) and buildings on the expanding edge.
//!
//! Run with: `cargo run --example crisis_management`

use spatial_skyline::prelude::*;
use spatial_skyline::workload::usgs::{synthetic_usgs, Category, UsgsConfig};

fn main() {
    // A synthetic city: use the USGS-like generator and keep the
    // residential categories.
    let city = synthetic_usgs(&UsgsConfig {
        n: 4000,
        clusters: 12,
        cluster_sigma: 0.05,
        background: 0.2,
        seed: 7,
    });
    let buildings: Vec<Point> = city
        .iter()
        .filter(|u| {
            matches!(
                u.category,
                Category::Building | Category::PopulatedPlace | Category::Institution
            )
        })
        .map(|u| u.location)
        .collect();
    println!("{} residential buildings in the city", buildings.len());

    // Three fires break out.
    let fires = vec![
        Point::new(0.42, 0.46),
        Point::new(0.55, 0.52),
        Point::new(0.47, 0.60),
    ];

    let ctx = QueryContext::new(&fires);
    let index = VoronoiIndex::new(&buildings).expect("distinct building locations");
    let result = vs2(&index, &ctx);

    let (trapped, edge): (Vec<u32>, Vec<u32>) = result
        .skyline
        .iter()
        .partition(|&&i| ctx.hull().contains(buildings[i as usize]));

    println!(
        "\nEvacuation list: {} buildings ({} trapped inside the fire hull, {} on the edge)",
        result.skyline.len(),
        trapped.len(),
        edge.len()
    );
    println!(
        "computed with {} dominance checks over {} visited buildings (of {})",
        result.stats.dominance_checks,
        result.stats.entries_visited,
        buildings.len()
    );

    // Theorem 1 in action: EVERY building inside the hull of the fires is
    // on the list, unconditionally.
    let inside_count = buildings
        .iter()
        .filter(|&&b| ctx.hull().contains(b))
        .count();
    assert_eq!(inside_count, trapped.len(), "Theorem 1 violated");
    println!("Theorem 1 check: all {inside_count} buildings inside CH(fires) are on the list.");

    // Show a few of the most urgent (closest to any fire) entries.
    let mut urgent: Vec<u32> = result.skyline.clone();
    urgent.sort_by(|&a, &b| {
        let da = fires
            .iter()
            .map(|&f| f.distance(buildings[a as usize]))
            .fold(f64::INFINITY, f64::min);
        let db = fires
            .iter()
            .map(|&f| f.distance(buildings[b as usize]))
            .fold(f64::INFINITY, f64::min);
        da.total_cmp(&db)
    });
    println!("\nMost urgent (nearest to a fire):");
    for &i in urgent.iter().take(5) {
        let b = buildings[i as usize];
        let d = fires
            .iter()
            .map(|&f| f.distance(b))
            .fold(f64::INFINITY, f64::min);
        let status = if ctx.hull().contains(b) {
            "TRAPPED"
        } else {
            "edge"
        };
        println!("  building {i:>5} at {b}  min fire distance {d:.4}  [{status}]");
    }
}
