//! Continuous SSQ over moving query points — VCS² (paper §5).
//!
//! The motivating scenario "becomes even more challenging when the team
//! members are mobile and change location over time": each GPS report
//! moves one team member, and the list of interesting meeting places must
//! be maintained on the fly. VCS² classifies each movement by how it
//! changes the convex hull of the team (patterns I–V) and patches the
//! skyline incrementally instead of recomputing it.
//!
//! Run with: `cargo run --example continuous_navigation`

use spatial_skyline::prelude::*;
use spatial_skyline::workload::motion::{MotionConfig, MovingQuerySet};
use spatial_skyline::workload::usgs::{synthetic_usgs_points, UsgsConfig};

fn main() {
    // The city's restaurants.
    let restaurants = synthetic_usgs_points(&UsgsConfig {
        n: 5000,
        seed: 99,
        ..UsgsConfig::default()
    });
    let index = VoronoiIndex::new(&restaurants).expect("distinct restaurant locations");

    // Five mobile team members streaming GPS updates.
    let mut team = MovingQuerySet::new(MotionConfig {
        count: 5,
        step: 0.008,
        start_box: 0.06,
        seed: 2026,
        ..MotionConfig::default()
    });

    let mut cont = ContinuousSkyline::new(&index, team.positions());
    println!(
        "initial skyline: {} interesting restaurants for the team",
        cont.skyline().len()
    );

    let mut total_stats = QueryStats::default();
    let updates = 500;
    for step in 0..updates {
        let up = team.next_update();
        let (outcome, stats) = cont.update(up.index, up.location);
        total_stats.absorb(&stats);
        if step % 100 == 99 {
            println!(
                "after {:>3} updates: skyline size {:>3}, last outcome {:?}",
                step + 1,
                cont.skyline().len(),
                outcome
            );
        }
    }

    let counts = cont.counts();
    let pct = |x: u64| 100.0 * x as f64 / counts.total() as f64;
    println!(
        "\nprocessed {} single-member location updates:",
        counts.total()
    );
    println!(
        "  pattern I  (hull unchanged, free):        {:>4}  ({:.1}%)",
        counts.unchanged,
        pct(counts.unchanged)
    );
    println!(
        "  patterns II-V (incremental patch):        {:>4}  ({:.1}%)",
        counts.incremental,
        pct(counts.incremental)
    );
    println!(
        "  complex (full VS² recomputation):         {:>4}  ({:.1}%)",
        counts.recomputed,
        pct(counts.recomputed)
    );
    println!(
        "\ntotal incremental work: {} dominance checks, {} graph vertices visited",
        total_stats.dominance_checks, total_stats.entries_visited
    );

    // Verify the maintained skyline against a fresh from-scratch run.
    let fresh = vs2(&index, &QueryContext::new(team.positions()));
    assert_eq!(cont.skyline(), fresh.skyline);
    println!("\nmaintained skyline verified against a fresh VS² recomputation ✓");
}
