//! The paper's physical design on disk: build the Delaunay graph once,
//! persist it as the Hilbert-paged adjacency flat file of §4.2, reopen it
//! and answer a query reading only a handful of pages.
//!
//! Run with: `cargo run --example flat_file`

use spatial_skyline::delaunay::file::{write_adjacency_file, AdjacencyFile, DEFAULT_PAGE_SIZE};
use spatial_skyline::delaunay::DelaunayGraph;
use spatial_skyline::prelude::*;
use spatial_skyline::workload::usgs::{synthetic_usgs_points, UsgsConfig};

fn main() {
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 20_000,
        seed: 0xF11E,
        ..UsgsConfig::default()
    });

    // One-time preprocessing: triangulate and write the flat file.
    let graph = DelaunayGraph::new(&points).expect("distinct points");
    let mut path = std::env::temp_dir();
    path.push("ssq_example_adjacency.bin");
    let pages =
        write_adjacency_file(&graph, &path, DEFAULT_PAGE_SIZE).expect("write adjacency file");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} points / {} Delaunay edges as {} pages ({} KiB) to {}",
        graph.len(),
        graph.edge_count(),
        pages,
        size / 1024,
        path.display()
    );

    // Reopen and walk a neighbourhood straight off the pages: a greedy
    // nearest-neighbour descent toward a query location, exactly the
    // VS² entry walk, reading pages on demand.
    let mut file = AdjacencyFile::open(&path).expect("reopen");
    let q = Point::new(0.42, 0.57);
    let mut cur = 0u32;
    let mut cur_d = file.record(cur).unwrap().location.distance_sq(q);
    loop {
        let rec = file.record(cur).unwrap();
        let mut best = cur;
        let mut best_d = cur_d;
        for &nb in &rec.neighbors {
            let loc = file.record(nb).unwrap().location;
            let d = loc.distance_sq(q);
            if d < best_d {
                best = nb;
                best_d = d;
            }
        }
        if best == cur {
            break;
        }
        cur = best;
        cur_d = best_d;
    }
    println!(
        "greedy walk to NN({q}) found point {cur} reading {} of {} pages",
        file.reads(),
        file.page_count()
    );

    // The on-disk walk agrees with the in-memory index.
    let index = VoronoiIndex::new(&points).expect("index");
    assert_eq!(cur, index.nearest(q, 0));
    println!("on-disk walk agrees with the in-memory index ✓");

    std::fs::remove_file(&path).ok();
}
