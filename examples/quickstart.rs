//! Quickstart: the paper's motivating example.
//!
//! "Members of a multidisciplinary task force team located at different
//! (fixed) offices want to put together a list of restaurants for their
//! weekly lunch meetings. [...] for each restaurant r in the list, no
//! other restaurant is closer to all members than r." (§1)
//!
//! Run with: `cargo run --example quickstart`

use spatial_skyline::prelude::*;

fn main() {
    // Restaurants in a 10 km × 10 km downtown grid.
    let restaurants = [
        ("Pasta Palace", Point::new(2.0, 3.0)),
        ("Taco Tower", Point::new(4.5, 4.8)),
        ("Sushi Spot", Point::new(5.2, 5.0)),
        ("Burger Barn", Point::new(9.0, 1.0)),
        ("Curry Corner", Point::new(4.0, 6.5)),
        ("Pho Place", Point::new(6.8, 4.2)),
        ("Deli Downtown", Point::new(5.0, 9.5)),
        ("Bistro Nine", Point::new(0.5, 9.0)),
    ];
    // The three team members' offices.
    let offices = vec![
        Point::new(3.5, 4.0),
        Point::new(6.0, 5.5),
        Point::new(5.0, 3.0),
    ];

    let points: Vec<Point> = restaurants.iter().map(|&(_, p)| p).collect();
    let index = RTreeIndex::new(&points);
    let ctx = QueryContext::new(&offices);
    let result = b2s2(&index, &ctx);

    println!(
        "Spatial skyline of {} restaurants w.r.t. {} offices:",
        points.len(),
        offices.len()
    );
    for &i in &result.skyline {
        let (name, p) = restaurants[i as usize];
        let dists: Vec<String> = offices
            .iter()
            .map(|&q| format!("{:.2}", q.distance(p)))
            .collect();
        println!("  {name:<14} at {p}   distances: [{}] km", dists.join(", "));
    }
    println!(
        "\nEvery restaurant NOT on this list is farther from all {} offices than \
         one of the listed ones — there is never a reason to pick it.",
        offices.len()
    );
    println!(
        "(cost: {} dominance checks, {} R-tree node accesses)",
        result.stats.dominance_checks, result.stats.node_accesses
    );

    // Sanity: the Voronoi-based algorithm agrees.
    let vindex = VoronoiIndex::new(&points).expect("distinct restaurant locations");
    let vs2_result = vs2(&vindex, &ctx);
    assert_eq!(result.skyline, vs2_result.skyline);
    println!("VS² agrees with B²S² on the result.");
}
