//! The engine under concurrency must be indistinguishable from the
//! single-threaded naive oracle.
//!
//! Two fronts:
//!
//! * **Snapshot queries** — many client threads submit randomized query
//!   sets (with deliberate duplicates, so the context cache serves some
//!   of them); every response must equal `naive_full` on the same `Q`.
//! * **Continuous sessions** — several VCS² sessions are driven through
//!   the pool while a serial `ContinuousSkyline` mirrors each one; the
//!   skylines must agree after every applied update.
//!
//! Deterministic and hermetic: all randomness comes from the in-repo
//! `ssq_rng` generator.

use spatial_skyline::engine::{Algorithm, Engine, EngineConfig, QueryRequest};
use spatial_skyline::prelude::*;
use ssq_rng::Xoshiro256;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn dataset(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

fn random_query(rng: &mut Xoshiro256) -> Vec<Point> {
    let n = 2 + rng.range_usize(6);
    (0..n)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect()
}

#[test]
fn concurrent_clients_match_the_naive_oracle() {
    let data = dataset(400, 0xE1);
    let engine = Arc::new(Engine::new(&data, EngineConfig::default().with_workers(4)).unwrap());

    // 6 client threads, 25 queries each. Every client draws from a pool
    // of 10 shared query sets (cache hits) *and* fresh private ones
    // (cache misses), interleaved.
    let mut rng = Xoshiro256::seed_from_u64(0xE2);
    let shared_queries: Vec<Vec<Point>> = (0..10).map(|_| random_query(&mut rng)).collect();
    let shared_queries = Arc::new(shared_queries);

    type ClientOutcomes = Vec<(Vec<Point>, Vec<u32>)>;
    let clients: Vec<std::thread::JoinHandle<ClientOutcomes>> = (0..6)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared_queries);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xE3 + client);
                let mut outcomes = Vec::new();
                for i in 0..25 {
                    let q = if i % 2 == 0 {
                        shared[rng.range_usize(shared.len())].clone()
                    } else {
                        random_query(&mut rng)
                    };
                    let response = engine.submit(QueryRequest::new(q.clone())).wait();
                    outcomes.push((q, response.skyline));
                }
                outcomes
            })
        })
        .collect();

    for client in clients {
        for (q, got) in client.join().unwrap() {
            let want = naive_full(&data, &QueryContext::new(&q)).skyline;
            assert_eq!(got, want, "engine diverged from the oracle on {q:?}");
        }
    }

    // The duplicate-heavy stream must have produced real cache traffic.
    let m = engine.metrics();
    assert_eq!(m.queries(), 6 * 25);
    assert!(m.cache_hits > 0, "shared query sets never hit the cache");
    assert!(m.cache_misses > 0);
    assert!(m.latency.count() == 6 * 25);
}

#[test]
fn forced_algorithms_agree_under_concurrency() {
    let data = dataset(250, 0xE4);
    let engine = Engine::new(&data, EngineConfig::default().with_workers(3)).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(0xE5);
    for case in 0..12 {
        let q = random_query(&mut rng);
        let ticket = engine.submit_batch(
            Algorithm::ALL
                .iter()
                .map(|&a| QueryRequest::forced(q.clone(), a))
                .collect(),
        );
        let skylines: Vec<Vec<u32>> = ticket.wait().into_iter().map(|r| r.skyline).collect();
        let want = naive_full(&data, &QueryContext::new(&q)).skyline;
        for (algo, sky) in Algorithm::ALL.iter().zip(&skylines) {
            assert_eq!(sky, &want, "case {case}: {algo} diverged");
        }
    }
}

#[test]
fn pooled_sessions_match_serial_continuous_skylines() {
    let data = dataset(350, 0xE6);
    let engine = Engine::new(&data, EngineConfig::default().with_workers(4)).unwrap();
    let index = VoronoiIndex::new(&data).unwrap();

    let mut rng = Xoshiro256::seed_from_u64(0xE7);
    const SESSIONS: usize = 4;
    const UPDATES: usize = 30;

    let queries: Vec<Vec<Point>> = (0..SESSIONS).map(|_| random_query(&mut rng)).collect();
    let ids: Vec<_> = queries.iter().map(|q| engine.open_session(q)).collect();
    let mut mirrors: Vec<ContinuousSkyline<&VoronoiIndex>> = queries
        .iter()
        .map(|q| ContinuousSkyline::new(&index, q))
        .collect();

    for (i, (&id, q)) in ids.iter().zip(&queries).enumerate() {
        assert_eq!(
            engine.session_skyline(id).unwrap(),
            mirrors[i].skyline(),
            "session {i} initial skyline diverged for {q:?}"
        );
    }

    // Interleave small random motions across all sessions. Updates to one
    // session go through the pool; the serial mirror is ground truth.
    for step in 0..UPDATES {
        let s = rng.range_usize(SESSIONS);
        let obj = rng.range_usize(queries[s].len());
        let current = mirrors[s].query()[obj];
        let new_loc = Point::new(
            (current.x + (rng.f64() - 0.5) * 0.4).clamp(0.0, 10.0),
            (current.y + (rng.f64() - 0.5) * 0.4).clamp(0.0, 10.0),
        );
        let update = engine.update_session(ids[s], obj, new_loc).unwrap().wait();
        let (mirror_outcome, _) = mirrors[s].update(obj, new_loc);
        assert_eq!(
            update.skyline,
            mirrors[s].skyline(),
            "step {step}: session {s} diverged after moving object {obj}"
        );
        assert_eq!(
            update.outcome, mirror_outcome,
            "step {step}: VCS² classified the update differently in the pool"
        );
        // And the session skyline must also match the naive oracle.
        let want = naive_full(&data, &QueryContext::new(mirrors[s].query())).skyline;
        assert_eq!(
            update.skyline, want,
            "step {step}: session diverged from oracle"
        );
    }

    assert_eq!(engine.metrics().session_updates, UPDATES as u64);
    for &id in &ids {
        assert!(engine.close_session(id));
    }
    assert_eq!(engine.open_sessions(), 0);
}

#[test]
fn shutdown_completes_while_swaps_and_a_tiny_queue_race() {
    // A deliberately tiny bounded queue keeps submitters blocked on
    // backpressure while a reindexer spams catalog swaps — the exact
    // interleaving where a shutdown that took locks in the wrong order
    // would deadlock. The whole teardown runs under a watchdog.
    let datasets = Arc::new([dataset(220, 0xEA), dataset(260, 0xEB)]);
    let mut config = EngineConfig::default().with_workers(2);
    config.queue_capacity = 4;
    let engine = Arc::new(Engine::new(&datasets[0], config).unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..3)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xEC + client);
                let mut handles = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let q = random_query(&mut rng);
                    handles.push((q.clone(), engine.submit(QueryRequest::new(q))));
                }
                handles
            })
        })
        .collect();
    let reindexer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let datasets = Arc::clone(&datasets);
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            while !stop.load(Ordering::SeqCst) {
                // Generations alternate between the two datasets:
                // odd generations carry datasets[1], even ones datasets[0].
                let next = &datasets[(swaps as usize + 1) % 2];
                engine.reindex(next).unwrap();
                swaps += 1;
            }
            swaps
        })
    };

    std::thread::sleep(Duration::from_millis(40));
    stop.store(true, Ordering::SeqCst);
    let handle_sets: Vec<_> = submitters.into_iter().map(|s| s.join().unwrap()).collect();
    let swaps = reindexer.join().unwrap();
    assert_eq!(engine.generation(), swaps);

    // Shutdown with jobs still queued must terminate; run it under a
    // watchdog so a deadlock fails the test instead of hanging it.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let closer = std::thread::spawn(move || {
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("an engine handle leaked past the joins"))
            .shutdown();
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("engine shutdown deadlocked with queued jobs and swaps in flight");
    closer.join().unwrap();

    // Every accepted job still ran, each answered against the dataset of
    // the generation it reports: ids stay in range for all of them, and a
    // sample is held to full oracle equality.
    for (k, (q, handle)) in handle_sets.into_iter().flatten().enumerate() {
        let response = handle.wait();
        let data = &datasets[usize::try_from(response.generation).unwrap() % 2];
        let limit = u32::try_from(data.len()).unwrap();
        assert!(
            response.skyline.iter().all(|&id| id < limit),
            "response ids exceed generation {}'s dataset",
            response.generation
        );
        if k % 9 == 0 {
            let want = naive_full(data, &QueryContext::new(&q)).skyline;
            assert_eq!(
                response.skyline, want,
                "a drained job diverged from generation {}'s oracle",
                response.generation
            );
        }
    }
}

#[test]
fn burst_of_session_updates_applies_in_submission_order() {
    let data = dataset(300, 0xE8);
    let engine = Engine::new(&data, EngineConfig::default().with_workers(4)).unwrap();
    let index = VoronoiIndex::new(&data).unwrap();
    let q = vec![
        Point::new(2.0, 2.0),
        Point::new(7.0, 3.0),
        Point::new(5.0, 8.0),
    ];
    let id = engine.open_session(&q);
    let mut mirror = ContinuousSkyline::new(&index, &q);

    // Submit a whole burst WITHOUT waiting in between: per-session FIFO
    // ordering is what keeps the final state well-defined.
    let mut rng = Xoshiro256::seed_from_u64(0xE9);
    let moves: Vec<(usize, Point)> = (0..20)
        .map(|_| {
            (
                rng.range_usize(q.len()),
                Point::new(rng.f64() * 10.0, rng.f64() * 10.0),
            )
        })
        .collect();
    let handles: Vec<_> = moves
        .iter()
        .map(|&(obj, loc)| engine.update_session(id, obj, loc).unwrap())
        .collect();
    let pooled: Vec<Vec<u32>> = handles.into_iter().map(|h| h.wait().skyline).collect();

    for (k, (&(obj, loc), got)) in moves.iter().zip(&pooled).enumerate() {
        mirror.update(obj, loc);
        assert_eq!(
            got,
            &mirror.skyline(),
            "burst update {k} applied out of order"
        );
    }
    assert_eq!(engine.session_skyline(id).unwrap(), mirror.skyline());
}

#[test]
fn abandoned_timed_out_tickets_leak_no_queue_slots() {
    // The ssq-net server abandons tickets when a connection dies: it
    // stops waiting and drops the handle mid-flight. The engine contract
    // that makes this safe is that a dropped ticket releases everything —
    // the worker's eventual fill lands in an abandoned cell, the queue
    // slot is freed by the dequeue as usual, and the engine keeps
    // serving. Regression: fill a tiny queue, time out on every ticket,
    // drop them all, and prove fresh submissions still complete.
    let data = dataset(800, 0xF1);
    let config = EngineConfig {
        workers: 1,
        queue_capacity: 2,
        ..EngineConfig::default()
    };
    let engine = Engine::new(&data, config).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(0xF2);

    for round in 0..5 {
        // Saturate: keep submitting until the queue turns us away.
        let mut abandoned = Vec::new();
        loop {
            let q = random_query(&mut rng);
            match engine.try_submit(QueryRequest::forced(q, Algorithm::Bbs)) {
                Ok(handle) => abandoned.push(handle),
                Err(spatial_skyline::engine::EngineError::QueueFull) => break,
                Err(e) => panic!("round {round}: unexpected rejection {e}"),
            }
            assert!(
                abandoned.len() <= 64,
                "round {round}: a 2-slot queue admitted 64 jobs"
            );
        }
        assert!(!abandoned.is_empty(), "round {round}: nothing was admitted");

        // Time out fast on every ticket, then drop whatever came back —
        // the connection-teardown pattern.
        for handle in abandoned {
            let _ = handle.wait_timeout(Duration::from_nanos(1));
        }

        // The engine must come all the way back: a fresh submission is
        // accepted (once the backlog drains) and completes correctly.
        let q = random_query(&mut rng);
        let response = loop {
            match engine.try_submit(QueryRequest::new(q.clone())) {
                Ok(handle) => break handle.wait(),
                Err(spatial_skyline::engine::EngineError::QueueFull) => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Err(e) => panic!("round {round}: engine did not recover: {e}"),
            }
        };
        let want = naive_full(&data, &QueryContext::new(&q)).skyline;
        assert_eq!(
            response.skyline, want,
            "round {round}: post-abandonment answer diverged from the oracle"
        );
    }
}
