//! The paper's geometric foundation (§3) as executable properties:
//! Lemma 1, Theorems 1–3, Lemmas 5/6 and Lemma 7 are each checked on
//! randomized instances against the ground-truth skyline.

use proptest::prelude::*;
use spatial_skyline::geom::convex_hull;
use spatial_skyline::prelude::*;

fn pts(v: Vec<(f64, f64)>) -> Vec<Point> {
    let mut p: Vec<Point> = v.into_iter().map(|(x, y)| Point::new(x, y)).collect();
    p.sort_by(Point::lex_cmp);
    p.dedup();
    p
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..max).prop_map(pts)
}

fn query_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 1: the nearest data point to each query point is a skyline
    /// point.
    #[test]
    fn lemma1_nearest_neighbors_are_skyline(
        points in points_strategy(40),
        q in query_strategy(7),
    ) {
        let ctx = QueryContext::new(&q);
        let sky = naive_full(&points, &ctx);
        for &qi in &q {
            let nn = (0..points.len() as u32)
                .min_by(|&a, &b| {
                    points[a as usize].distance_sq(qi)
                        .partial_cmp(&points[b as usize].distance_sq(qi)).unwrap()
                })
                .unwrap();
            prop_assert!(sky.contains(nn), "NN({:?}) not in skyline", qi);
        }
    }

    /// Theorem 1: every data point inside CH(Q) is a skyline point.
    #[test]
    fn theorem1_hull_interior_points_are_skyline(
        points in points_strategy(40),
        q in query_strategy(7),
    ) {
        let ctx = QueryContext::new(&q);
        let sky = naive_full(&points, &ctx);
        for (i, &p) in points.iter().enumerate() {
            if ctx.hull().contains(p) {
                prop_assert!(sky.contains(i as u32), "interior point {} missing", i);
            }
        }
    }

    /// Theorem 2: removing non-convex (interior) query points does not
    /// change the skyline.
    #[test]
    fn theorem2_interior_query_points_are_irrelevant(
        points in points_strategy(40),
        q in query_strategy(8),
    ) {
        let hull = convex_hull(&q);
        let hull_only: Vec<Point> = hull.vertices().to_vec();
        prop_assume!(!hull_only.is_empty());
        let full = naive_full(&points, &QueryContext::new(&q));
        let reduced = naive_full(&points, &QueryContext::new(&hull_only));
        prop_assert_eq!(full.skyline, reduced.skyline);
    }

    /// Theorem 3: a data point whose Voronoi cell intersects CH(Q) is a
    /// skyline point.
    #[test]
    fn theorem3_cells_meeting_hull_are_skyline(
        points in points_strategy(30),
        q in query_strategy(6),
    ) {
        let ctx = QueryContext::new(&q);
        prop_assume!(!ctx.hull().is_degenerate());
        let sky = naive_full(&points, &ctx);
        let vi = VoronoiIndex::new(&points).unwrap();
        for i in 0..points.len() as u32 {
            let cell = vi.voronoi_cell(i);
            if cell.intersects_convex(ctx.hull()) {
                prop_assert!(sky.contains(i), "cell of {} meets CH(Q) but not skyline", i);
            }
        }
    }

    /// Lemmas 5/6: a point OUTSIDE the visible region of hull vertex q is
    /// insensitive to q — removing q from Q cannot change whether that
    /// point is dominated.
    #[test]
    fn lemma6_invisible_points_ignore_the_vertex(
        points in points_strategy(30),
        q in query_strategy(7),
    ) {
        let ctx = QueryContext::new(&q);
        let hull = ctx.hull();
        prop_assume!(hull.len() >= 3);
        let sky_full = naive_full(&points, &ctx);
        // Drop one hull vertex.
        let victim = hull.vertices()[0];
        let reduced: Vec<Point> = q.iter().copied().filter(|&x| x != victim).collect();
        prop_assume!(!reduced.is_empty());
        let sky_reduced = naive_full(&points, &QueryContext::new(&reduced));
        let vr = hull.visible_region(0);
        for (i, &p) in points.iter().enumerate() {
            if !vr.contains(p) && !hull.contains(p) {
                // Outside the visible region (and outside the hull): the
                // vertex cannot affect this point's membership.
                prop_assert_eq!(
                    sky_full.contains(i as u32),
                    sky_reduced.contains(i as u32),
                    "invisible point {} changed status when removing the vertex", i
                );
            }
        }
    }

    /// Lemma 7: every mixed-skyline member lies within the search bound
    /// built from S(A).
    #[test]
    fn lemma7_mixed_results_live_in_the_bound(
        points in points_strategy(30),
        q in query_strategy(5),
        seed in 0u64..500,
    ) {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).max(1);
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let attrs: Vec<Vec<f64>> = (0..points.len()).map(|_| vec![next()]).collect();
        let ctx = QueryContext::new(&q);
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let bound = mctx.search_bound();
        for id in mixed_naive(&points, &mctx).skyline {
            prop_assert!(bound.contains(points[id as usize]));
        }
    }

    /// The B²S² pruning invariant: every skyline point lies inside
    /// MBR(SR(p, Q)) of every other data point (this is what justifies
    /// intersecting B with each new skyline point's box).
    #[test]
    fn search_region_boxes_cover_the_skyline(
        points in points_strategy(25),
        q in query_strategy(5),
    ) {
        use spatial_skyline::geom::circle::search_region_mbr;
        let ctx = QueryContext::new(&q);
        let sky = naive_full(&points, &ctx);
        for &x in &points {
            let mbr = search_region_mbr(x, ctx.anchors());
            for &s in &sky.skyline {
                prop_assert!(
                    mbr.contains(points[s as usize]),
                    "skyline point {} escapes SR box of {:?}", s, x
                );
            }
        }
    }
}

/// Deterministic Theorem 1 edge case: data points exactly on the hull
/// boundary are also skyline points (closed containment).
#[test]
fn theorem1_boundary_points() {
    let q = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.5, 1.0),
    ];
    let points = vec![
        Point::new(0.5, 0.0),  // on hull edge
        Point::new(0.0, 0.0),  // on hull vertex
        Point::new(0.5, 0.4),  // interior
        Point::new(3.0, 3.0),  // far outside
    ];
    let ctx = QueryContext::new(&q);
    let sky = naive_full(&points, &ctx);
    assert!(sky.contains(0));
    assert!(sky.contains(1));
    assert!(sky.contains(2));
    assert!(!sky.contains(3));
}
