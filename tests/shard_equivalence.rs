//! The sharded engine must be indistinguishable from both the
//! single-engine and the naive oracle — for every partition policy,
//! shard count, and data distribution.
//!
//! Covers the acceptance matrix:
//!
//! * **uniform** and **clustered** datasets;
//! * 1, 2, 4 and 8 shards, grid and kd-split policies;
//! * queries whose `CH(Q)` straddles shard boundaries (anchors spread
//!   across the whole universe, so no single shard contains the hull);
//! * corner queries where the pruning bound demonstrably skips shards —
//!   without changing a single answer.
//!
//! Deterministic and hermetic: all randomness from the in-repo `ssq_rng`.

use spatial_skyline::engine::{Engine, EngineConfig, QueryRequest};
use spatial_skyline::prelude::*;
use spatial_skyline::shard::{PartitionPolicy, ShardConfig, ShardedEngine};
use ssq_rng::Xoshiro256;

fn uniform_dataset(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

fn clustered_dataset(n: usize, seed: u64) -> Vec<Point> {
    // A handful of tight Gaussian blobs: shard loads are skewed, and
    // grid cells straddle cluster edges.
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let centers: Vec<Point> = (0..5)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect();
    let mut pts: Vec<Point> = (0..n)
        .map(|i| {
            let c = centers[i % centers.len()];
            let (dx, dy) = rng.gaussian_pair();
            Point::new(
                (c.x + dx * 0.5).clamp(0.0, 10.0),
                (c.y + dy * 0.5).clamp(0.0, 10.0),
            )
        })
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

/// Every routed answer must equal both oracles, across the full
/// policy × shard-count matrix.
fn assert_matrix(data: &[Point], queries: &[Vec<Point>], label: &str) {
    let single = Engine::new(data, EngineConfig::default().with_workers(2)).unwrap();
    for policy in PartitionPolicy::ALL {
        for shards in [1usize, 2, 4, 8] {
            let config = ShardConfig::default()
                .with_shards(shards)
                .with_policy(policy)
                .with_engine(EngineConfig::default().with_workers(2));
            let sharded = ShardedEngine::new(data, config).unwrap();
            for (qi, q) in queries.iter().enumerate() {
                let got = sharded.query(q).unwrap();
                let via_engine = single.submit(QueryRequest::new(q.clone())).wait();
                let want = naive_full(data, &QueryContext::new(q)).skyline;
                assert_eq!(
                    got.skyline, want,
                    "{label}: policy {policy}, {shards} shards, query {qi} vs naive"
                );
                assert_eq!(
                    via_engine.skyline, want,
                    "{label}: single engine diverged on query {qi}"
                );
                assert_eq!(
                    got.shards_queried + got.shards_pruned,
                    sharded.shard_count(),
                    "{label}: shard accounting broken"
                );
            }
            sharded.shutdown();
        }
    }
    single.shutdown();
}

/// Query sets whose hull straddles shard boundaries: anchors spread over
/// the whole universe, so with ≥ 2 shards no shard rect contains CH(Q).
fn straddling_queries(rng: &mut Xoshiro256) -> Vec<Vec<Point>> {
    let mut qs = vec![
        // Fixed wide triangle: corners of three different quadrants.
        vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 2.0),
            Point::new(5.0, 9.0),
        ],
        // A hull crossing the vertical midline only.
        vec![
            Point::new(4.0, 5.0),
            Point::new(6.0, 4.5),
            Point::new(5.0, 6.0),
        ],
    ];
    for _ in 0..4 {
        let n = 2 + rng.range_usize(5);
        qs.push(
            (0..n)
                .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
                .collect(),
        );
    }
    qs
}

#[test]
fn uniform_workload_matches_both_oracles() {
    let data = uniform_dataset(500, 0x5EED);
    let mut rng = Xoshiro256::seed_from_u64(0x5EED + 1);
    let queries = straddling_queries(&mut rng);
    assert_matrix(&data, &queries, "uniform");
}

#[test]
fn clustered_workload_matches_both_oracles() {
    let data = clustered_dataset(500, 0xC1A5);
    let mut rng = Xoshiro256::seed_from_u64(0xC1A5 + 1);
    let queries = straddling_queries(&mut rng);
    assert_matrix(&data, &queries, "clustered");
}

#[test]
fn corner_queries_prune_shards_and_stay_exact() {
    let data = uniform_dataset(800, 0xC04E);
    let config = ShardConfig::default()
        .with_shards(8)
        .with_engine(EngineConfig::default().with_workers(2));
    let engine = ShardedEngine::new(&data, config).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(0xC04E + 1);
    let mut total_pruned = 0usize;
    for _ in 0..6 {
        // Tight query sets in the low corner of the 10×10 universe.
        let q: Vec<Point> = (0..3)
            .map(|_| Point::new(rng.f64() * 0.8, rng.f64() * 0.8))
            .collect();
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline,
            "pruning changed the answer on {q:?}"
        );
        total_pruned += got.shards_pruned;
    }
    assert!(
        total_pruned > 0,
        "corner queries never pruned a shard out of {} shards",
        engine.shard_count()
    );
    let m = engine.metrics();
    assert_eq!(m.shards_pruned as usize, total_pruned);
    assert!(m.prune_rate() > 0.0);
    engine.shutdown();
}

#[test]
fn pruning_on_and_off_agree_everywhere() {
    // Belt and braces for the bound's soundness: with pruning disabled
    // the router queries every shard, so any divergence is the bound's
    // fault alone.
    let data = clustered_dataset(400, 0xAB1E);
    let on = ShardedEngine::new(
        &data,
        ShardConfig::default()
            .with_shards(8)
            .with_engine(EngineConfig::default().with_workers(2)),
    )
    .unwrap();
    let off = ShardedEngine::new(
        &data,
        ShardConfig::default()
            .with_shards(8)
            .with_engine(EngineConfig::default().with_workers(2))
            .with_prune(false),
    )
    .unwrap();
    let mut rng = Xoshiro256::seed_from_u64(0xAB1E + 1);
    for case in 0..12 {
        let n = 2 + rng.range_usize(5);
        let q: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
            .collect();
        let a = on.query(&q).unwrap();
        let b = off.query(&q).unwrap();
        assert_eq!(
            a.skyline, b.skyline,
            "case {case}: pruning changed the answer"
        );
        assert_eq!(b.shards_pruned, 0);
    }
    on.shutdown();
    off.shutdown();
}
