//! Cross-algorithm equivalence: every algorithm in the paper must return
//! the same spatial skyline. Randomized (deterministic, hermetic — cases
//! come from the in-repo `ssq_rng` generator) plus targeted deterministic
//! cases.

use spatial_skyline::prelude::*;
use spatial_skyline::rtree::RTreeConfig;
use ssq_rng::Xoshiro256;

/// A set of distinct data points in the unit square.
fn random_points(rng: &mut Xoshiro256, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + rng.range_usize(hi - lo);
    let mut pts: Vec<Point> = (0..n).map(|_| Point::new(rng.f64(), rng.f64())).collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

fn random_query(rng: &mut Xoshiro256, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + rng.range_usize(hi - lo);
    (0..n).map(|_| Point::new(rng.f64(), rng.f64())).collect()
}

#[test]
fn all_algorithms_agree() {
    let mut rng = Xoshiro256::seed_from_u64(0xA1);
    for case in 0..64 {
        let points = random_points(&mut rng, 1, 60);
        let q = random_query(&mut rng, 1, 8);
        let ctx = QueryContext::new(&q);
        let want = naive_full(&points, &ctx).skyline;

        assert_eq!(naive_sorted(&points, &ctx).skyline, want, "case {case}");

        let rt = RTreeIndex::with_config(&points, RTreeConfig::with_max_entries(4));
        assert_eq!(bbs(&rt, &ctx).skyline, want, "case {case}");
        assert_eq!(b2s2(&rt, &ctx).skyline, want, "case {case}");

        let vi = VoronoiIndex::new(&points).unwrap();
        assert_eq!(vs2(&vi, &ctx).skyline, want, "case {case}");

        // The verbatim paper traversal may miss points but must never
        // fabricate one.
        let paper = vs2_with(&vi, &ctx, VsExpansion::Paper, None);
        for id in &paper.skyline {
            assert!(want.contains(id), "case {case}: paper mode fabricated {id}");
        }
    }
}

#[test]
fn skyline_is_never_empty_for_nonempty_data() {
    let mut rng = Xoshiro256::seed_from_u64(0xA2);
    for case in 0..64 {
        // Lemma 1 guarantees at least NN(q1) is in the skyline.
        let points = random_points(&mut rng, 1, 40);
        let q = random_query(&mut rng, 1, 6);
        let ctx = QueryContext::new(&q);
        let r = naive_full(&points, &ctx);
        assert!(!r.skyline.is_empty(), "case {case}");
    }
}

#[test]
fn skyline_members_are_pairwise_incomparable() {
    let mut rng = Xoshiro256::seed_from_u64(0xA3);
    for case in 0..64 {
        let points = random_points(&mut rng, 1, 50);
        let q = random_query(&mut rng, 1, 6);
        let ctx = QueryContext::new(&q);
        let r = naive_full(&points, &ctx);
        let vecs: Vec<Vec<f64>> = r
            .skyline
            .iter()
            .map(|&i| q.iter().map(|&x| x.distance(points[i as usize])).collect())
            .collect();
        for i in 0..vecs.len() {
            for j in 0..vecs.len() {
                if i == j {
                    continue;
                }
                let dominates = vecs[i].iter().zip(&vecs[j]).all(|(a, b)| a <= b)
                    && vecs[i].iter().zip(&vecs[j]).any(|(a, b)| a < b);
                assert!(
                    !dominates,
                    "case {case}: skyline members {i} and {j} comparable"
                );
            }
        }
    }
}

#[test]
fn mixed_algorithms_agree() {
    let mut rng = Xoshiro256::seed_from_u64(0xA4);
    for case in 0..64 {
        let points = random_points(&mut rng, 1, 40);
        let q = random_query(&mut rng, 1, 5);
        let attrs: Vec<Vec<f64>> = (0..points.len())
            .map(|_| vec![rng.f64(), rng.f64()])
            .collect();
        let ctx = QueryContext::new(&q);
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let want = mixed_naive(&points, &mctx).skyline;

        let rt = RTreeIndex::with_config(&points, RTreeConfig::with_max_entries(4));
        assert_eq!(mixed_b2s2(&rt, &mctx).skyline, want, "case {case}");
        let vi = VoronoiIndex::new(&points).unwrap();
        assert_eq!(mixed_vs2(&vi, &mctx).skyline, want, "case {case}");
    }
}

#[test]
fn duplicate_query_points_are_harmless() {
    let points: Vec<Point> = (0..20)
        .map(|i| Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0))
        .collect();
    let q = vec![
        Point::new(0.3, 0.3),
        Point::new(0.3, 0.3),
        Point::new(0.7, 0.6),
    ];
    let ctx = QueryContext::new(&q);
    let want = naive_full(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn collinear_query_points_degenerate_hull() {
    let points: Vec<Point> = (0..30)
        .map(|i| Point::new((i as f64 * 0.17) % 1.0, (i as f64 * 0.43) % 1.0))
        .collect();
    // All query points on one line: CH(Q) is a segment with an empty
    // interior.
    let q = vec![
        Point::new(0.2, 0.2),
        Point::new(0.5, 0.5),
        Point::new(0.8, 0.8),
    ];
    let ctx = QueryContext::new(&q);
    assert_eq!(ctx.anchors().len(), 2, "interior collinear point dropped");
    let want = naive_full(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(bbs(&rt, &ctx).skyline, want);
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn data_point_coinciding_with_query_point() {
    // A data point exactly at a query location dominates everything for
    // that query point's distance (distance 0).
    let points = vec![
        Point::new(0.5, 0.5),
        Point::new(0.6, 0.6),
        Point::new(0.1, 0.9),
    ];
    let q = vec![Point::new(0.5, 0.5), Point::new(0.65, 0.6)];
    let ctx = QueryContext::new(&q);
    let want = naive_full(&points, &ctx).skyline;
    assert!(want.contains(&0));
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn large_clustered_instance_all_agree() {
    use spatial_skyline::workload::usgs::{synthetic_usgs_points, UsgsConfig};
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 3000,
        seed: 1234,
        ..UsgsConfig::default()
    });
    let q = spatial_skyline::workload::random_query_set(
        &spatial_skyline::workload::QueryConfig::paper_default(7, 42),
    );
    let ctx = QueryContext::new(&q);
    let want = naive_sorted(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(bbs(&rt, &ctx).skyline, want);
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}
