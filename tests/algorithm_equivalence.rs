//! Cross-algorithm equivalence: every algorithm in the paper must return
//! the same spatial skyline. Property-based with proptest, plus targeted
//! deterministic cases.

use proptest::prelude::*;
use spatial_skyline::prelude::*;
use spatial_skyline::rtree::RTreeConfig;

/// Strategy: a set of distinct data points in the unit square.
fn points_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max).prop_map(|v| {
        let mut pts: Vec<Point> = v.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        pts.sort_by(Point::lex_cmp);
        pts.dedup();
        pts
    })
}

fn query_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree(points in points_strategy(60), q in query_strategy(8)) {
        let ctx = QueryContext::new(&q);
        let want = naive_full(&points, &ctx).skyline;

        prop_assert_eq!(&naive_sorted(&points, &ctx).skyline, &want);

        let rt = RTreeIndex::with_config(&points, RTreeConfig::with_max_entries(4));
        prop_assert_eq!(&bbs(&rt, &ctx).skyline, &want);
        prop_assert_eq!(&b2s2(&rt, &ctx).skyline, &want);

        let vi = VoronoiIndex::new(&points).unwrap();
        prop_assert_eq!(&vs2(&vi, &ctx).skyline, &want);

        // The verbatim paper traversal may miss points but must never
        // fabricate one.
        let paper = vs2_with(&vi, &ctx, VsExpansion::Paper, None);
        for id in &paper.skyline {
            prop_assert!(want.contains(id), "paper mode fabricated {}", id);
        }
    }

    #[test]
    fn skyline_is_never_empty_for_nonempty_data(
        points in points_strategy(40),
        q in query_strategy(6),
    ) {
        // Lemma 1 guarantees at least NN(q1) is in the skyline.
        let ctx = QueryContext::new(&q);
        let r = naive_full(&points, &ctx);
        prop_assert!(!r.skyline.is_empty());
    }

    #[test]
    fn skyline_members_are_pairwise_incomparable(
        points in points_strategy(50),
        q in query_strategy(6),
    ) {
        let ctx = QueryContext::new(&q);
        let r = naive_full(&points, &ctx);
        let vecs: Vec<Vec<f64>> = r
            .skyline
            .iter()
            .map(|&i| q.iter().map(|&x| x.distance(points[i as usize])).collect())
            .collect();
        for i in 0..vecs.len() {
            for j in 0..vecs.len() {
                if i == j { continue; }
                let dominates = vecs[i].iter().zip(&vecs[j]).all(|(a, b)| a <= b)
                    && vecs[i].iter().zip(&vecs[j]).any(|(a, b)| a < b);
                prop_assert!(!dominates, "skyline members {i} and {j} comparable");
            }
        }
    }

    #[test]
    fn mixed_algorithms_agree(
        points in points_strategy(40),
        q in query_strategy(5),
        seed in 0u64..1000,
    ) {
        // Attributes derived deterministically from the seed.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let attrs: Vec<Vec<f64>> = (0..points.len()).map(|_| vec![next(), next()]).collect();
        let ctx = QueryContext::new(&q);
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let want = mixed_naive(&points, &mctx).skyline;

        let rt = RTreeIndex::with_config(&points, RTreeConfig::with_max_entries(4));
        prop_assert_eq!(&mixed_b2s2(&rt, &mctx).skyline, &want);
        let vi = VoronoiIndex::new(&points).unwrap();
        prop_assert_eq!(&mixed_vs2(&vi, &mctx).skyline, &want);
    }
}

#[test]
fn duplicate_query_points_are_harmless() {
    let points: Vec<Point> = (0..20)
        .map(|i| Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0))
        .collect();
    let q = vec![
        Point::new(0.3, 0.3),
        Point::new(0.3, 0.3),
        Point::new(0.7, 0.6),
    ];
    let ctx = QueryContext::new(&q);
    let want = naive_full(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn collinear_query_points_degenerate_hull() {
    let points: Vec<Point> = (0..30)
        .map(|i| Point::new((i as f64 * 0.17) % 1.0, (i as f64 * 0.43) % 1.0))
        .collect();
    // All query points on one line: CH(Q) is a segment with an empty
    // interior.
    let q = vec![
        Point::new(0.2, 0.2),
        Point::new(0.5, 0.5),
        Point::new(0.8, 0.8),
    ];
    let ctx = QueryContext::new(&q);
    assert_eq!(ctx.anchors().len(), 2, "interior collinear point dropped");
    let want = naive_full(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(bbs(&rt, &ctx).skyline, want);
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn data_point_coinciding_with_query_point() {
    // A data point exactly at a query location dominates everything for
    // that query point's distance (distance 0).
    let points = vec![
        Point::new(0.5, 0.5),
        Point::new(0.6, 0.6),
        Point::new(0.1, 0.9),
    ];
    let q = vec![Point::new(0.5, 0.5), Point::new(0.65, 0.6)];
    let ctx = QueryContext::new(&q);
    let want = naive_full(&points, &ctx).skyline;
    assert!(want.contains(&0));
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}

#[test]
fn large_clustered_instance_all_agree() {
    use spatial_skyline::workload::usgs::{synthetic_usgs_points, UsgsConfig};
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 3000,
        seed: 1234,
        ..UsgsConfig::default()
    });
    let q = spatial_skyline::workload::random_query_set(
        &spatial_skyline::workload::QueryConfig::paper_default(7, 42),
    );
    let ctx = QueryContext::new(&q);
    let want = naive_sorted(&points, &ctx).skyline;
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    assert_eq!(bbs(&rt, &ctx).skyline, want);
    assert_eq!(b2s2(&rt, &ctx).skyline, want);
    assert_eq!(vs2(&vi, &ctx).skyline, want);
}
