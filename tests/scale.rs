//! Moderate-scale end-to-end test: all algorithms must agree on a
//! clustered 20k-point dataset across a spread of query shapes, and the
//! two VS² start-point modes (kd-tree vs greedy walk) must be
//! indistinguishable in results.

use spatial_skyline::prelude::*;
use spatial_skyline::workload::queries::{random_query_set, QueryConfig};
use spatial_skyline::workload::usgs::{synthetic_usgs_points, UsgsConfig};

#[test]
fn all_algorithms_agree_at_20k() {
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 20_000,
        seed: 0x5CA1E,
        ..UsgsConfig::default()
    });
    let rt = RTreeIndex::new(&points);
    let vi = VoronoiIndex::new(&points).unwrap();
    let vi_greedy = spatial_skyline::core::VoronoiIndex::without_start_index(&points).unwrap();

    for (count, frac, seed) in [
        (2usize, 0.001, 1u64),
        (5, 0.0001, 2),
        (8, 0.003, 3),
        (12, 0.01, 4),
    ] {
        let q = random_query_set(&QueryConfig {
            count,
            mbr_area_fraction: frac,
            universe: spatial_skyline::workload::usgs::universe(),
            seed,
        });
        let ctx = QueryContext::new(&q);
        let want = naive_sorted(&points, &ctx).skyline;
        assert!(!want.is_empty());
        assert_eq!(bbs(&rt, &ctx).skyline, want, "bbs |Q|={count} frac={frac}");
        assert_eq!(
            b2s2(&rt, &ctx).skyline,
            want,
            "b2s2 |Q|={count} frac={frac}"
        );
        assert_eq!(vs2(&vi, &ctx).skyline, want, "vs2 |Q|={count} frac={frac}");
        assert_eq!(
            vs2(&vi_greedy, &ctx).skyline,
            want,
            "vs2/greedy |Q|={count} frac={frac}"
        );
    }
}

#[test]
fn continuous_at_10k_stays_exact_with_spot_checks() {
    use spatial_skyline::workload::motion::{MotionConfig, MovingQuerySet};

    let points = synthetic_usgs_points(&UsgsConfig {
        n: 10_000,
        seed: 0xB16,
        ..UsgsConfig::default()
    });
    let vi = VoronoiIndex::new(&points).unwrap();
    let mut team = MovingQuerySet::new(MotionConfig {
        count: 6,
        step: 0.006,
        start_box: 0.05,
        seed: 0x33,
        ..MotionConfig::default()
    });
    let mut cont = ContinuousSkyline::new(&vi, team.positions());
    for step in 0..300 {
        let up = team.next_update();
        cont.update(up.index, up.location);
        // Spot-check exactness every 25 updates (a full check per update
        // at this scale belongs in the release-mode harness).
        if step % 25 == 24 {
            let fresh = vs2(&vi, &QueryContext::new(team.positions()));
            assert_eq!(cont.skyline(), fresh.skyline, "divergence at step {step}");
        }
    }
    let counts = cont.counts();
    assert!(counts.recomputed * 5 < counts.total(), "{counts:?}");
}
