//! Live reindex acceptance: snapshots swap under load without pausing,
//! corrupting, or leaking.
//!
//! Three fronts:
//!
//! * **Engine swaps** — client threads query continuously while the
//!   catalog publishes two new generations mid-stream; every response
//!   must be *exactly* the naive-oracle skyline of the dataset belonging
//!   to the generation it reports, and the retired generation's snapshot
//!   must be freed (its `Weak` dies) once nothing pins it.
//! * **Fleet swaps** — the sharded router republishes its whole fleet
//!   mid-stream; responses stay exact against the union dataset of the
//!   generation they report.
//! * **Session pinning** — a VCS² session opened before a swap keeps
//!   answering exactly against its pinned generation, reports
//!   `SnapshotSuperseded`, and releases the pinned indexes on close.
//!
//! Deterministic and hermetic: all randomness comes from the in-repo
//! `ssq_rng` generator; swap timing only shifts *which* generation a
//! response reports, never whether it is correct.

use spatial_skyline::engine::{
    Engine, EngineConfig, QueryRequest, QueryResponse, SnapshotSuperseded,
};
use spatial_skyline::prelude::*;
use spatial_skyline::shard::{ShardConfig, ShardedEngine, ShardedResponse};
use ssq_rng::Xoshiro256;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn dataset(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

fn random_query(rng: &mut Xoshiro256) -> Vec<Point> {
    let n = 2 + rng.range_usize(5);
    (0..n)
        .map(|_| Point::new(rng.f64() * 10.0, rng.f64() * 10.0))
        .collect()
}

/// Spin until `counter` reaches `at` (the swap thread's trigger).
fn wait_for(counter: &AtomicUsize, at: usize) {
    while counter.load(Ordering::SeqCst) < at {
        std::thread::yield_now();
    }
}

/// What one client thread brings home: each query paired with its response.
type Outcomes<R> = Vec<(Vec<Point>, R)>;

#[test]
fn clients_stay_exact_through_two_live_swaps() {
    // One dataset per generation; the third is *smaller* than the first,
    // so any response carrying a stale generation number would point past
    // the end of its claimed dataset.
    let generations: Vec<Vec<Point>> =
        vec![dataset(400, 0xA1), dataset(520, 0xA2), dataset(300, 0xA3)];
    let engine =
        Arc::new(Engine::new(&generations[0], EngineConfig::default().with_workers(4)).unwrap());
    let retired = Arc::downgrade(&engine.snapshot());

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 160;
    let started = Arc::new(AtomicUsize::new(0));

    let clients: Vec<std::thread::JoinHandle<Outcomes<QueryResponse>>> = (0..CLIENTS)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xB0 + client as u64);
                let mut outcomes = Vec::new();
                // Claim requests from the shared budget so the stream
                // keeps flowing across both swaps no matter how the
                // scheduler interleaves the clients.
                while started.fetch_add(1, Ordering::SeqCst) < REQUESTS {
                    let q = random_query(&mut rng);
                    let response = engine.submit(QueryRequest::new(q.clone())).wait();
                    outcomes.push((q, response));
                }
                outcomes
            })
        })
        .collect();

    // Publish generation 1 a third of the way through the stream and
    // generation 2 at two thirds, while the clients keep querying.
    for (generation, at) in [(1u64, REQUESTS / 3), (2u64, 2 * REQUESTS / 3)] {
        wait_for(&started, at);
        let published = engine.reindex(&generations[generation as usize]).unwrap();
        assert_eq!(published, generation);
    }

    let mut per_generation = [0usize; 3];
    for client in clients {
        for (q, response) in client.join().unwrap() {
            let generation = usize::try_from(response.generation).unwrap();
            assert!(generation < generations.len(), "unknown generation");
            let want = naive_full(&generations[generation], &QueryContext::new(&q)).skyline;
            assert_eq!(
                response.skyline, want,
                "response for generation {generation} diverged from that generation's oracle on {q:?}"
            );
            per_generation[generation] += 1;
        }
    }
    assert_eq!(per_generation.iter().sum::<usize>(), REQUESTS);
    assert!(
        per_generation[2] > 0,
        "no query was ever answered against the final generation"
    );

    // The metrics carry the swap history and the per-generation split.
    let m = engine.metrics();
    assert_eq!(m.generation, 2);
    assert_eq!(m.swaps, 2);
    assert!(m.last_build > std::time::Duration::ZERO);
    assert_eq!(
        m.queries_per_generation.values().sum::<u64>(),
        REQUESTS as u64
    );
    for (generation, &count) in per_generation.iter().enumerate() {
        if count > 0 {
            assert_eq!(
                m.queries_per_generation.get(&(generation as u64)),
                Some(&(count as u64)),
                "metrics split diverged for generation {generation}"
            );
        }
    }

    // Retirement: with every pinned query drained, nothing holds the
    // generation-0 snapshot any more — its memory is actually released.
    assert!(
        retired.upgrade().is_none(),
        "generation 0 snapshot is still alive after the swap drained"
    );
}

#[test]
fn sharded_fleet_swaps_stay_exact_for_concurrent_clients() {
    let old_points = dataset(380, 0xC1);
    let new_points = dataset(460, 0xC2);
    let config = ShardConfig::default().with_shards(4);
    let engine = Arc::new(ShardedEngine::new(&old_points, config).unwrap());

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 120;
    let started = Arc::new(AtomicUsize::new(0));

    let clients: Vec<std::thread::JoinHandle<Outcomes<ShardedResponse>>> = (0..CLIENTS)
        .map(|client| {
            let engine = Arc::clone(&engine);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xC3 + client as u64);
                let mut outcomes = Vec::new();
                while started.fetch_add(1, Ordering::SeqCst) < REQUESTS {
                    let q = random_query(&mut rng);
                    let response = engine.query(&q).expect("routed query failed mid-swap");
                    outcomes.push((q, response));
                }
                outcomes
            })
        })
        .collect();

    // Republish the whole fleet halfway through the stream.
    wait_for(&started, REQUESTS / 2);
    assert_eq!(engine.reindex(&new_points).unwrap(), 1);

    let mut per_generation = [0usize; 2];
    for client in clients {
        for (q, response) in client.join().unwrap() {
            let generation = usize::try_from(response.generation).unwrap();
            let data = if generation == 0 {
                &old_points
            } else {
                &new_points
            };
            let want = naive_full(data, &QueryContext::new(&q)).skyline;
            assert_eq!(
                response.skyline, want,
                "fleet generation {generation} diverged from the union-dataset oracle on {q:?}"
            );
            per_generation[generation] += 1;
        }
    }
    assert_eq!(per_generation.iter().sum::<usize>(), REQUESTS);

    let m = engine.metrics();
    assert_eq!(m.generation, 1);
    assert_eq!(m.swaps, 1);
    assert_eq!(engine.data_len(), new_points.len());
}

#[test]
fn sessions_pin_their_generation_and_release_it_on_close() {
    let d0 = dataset(300, 0xD1);
    let d1 = dataset(340, 0xD2);
    let engine = Engine::new(&d0, EngineConfig::default().with_workers(2)).unwrap();

    let snapshot0 = engine.snapshot();
    let weak_snapshot = Arc::downgrade(&snapshot0);
    let weak_voronoi = Arc::downgrade(snapshot0.voronoi());
    drop(snapshot0);

    let q = vec![
        Point::new(2.0, 2.0),
        Point::new(7.0, 3.0),
        Point::new(5.0, 8.0),
    ];
    let id = engine.open_session(&q);
    assert_eq!(engine.session_generation(id), Some(0));

    assert_eq!(engine.reindex(&d1).unwrap(), 1);
    assert_eq!(engine.generation(), 1);
    // The catalog dropped the generation-0 snapshot wrapper at install;
    // only the Voronoi index the session pinned stays alive.
    assert!(weak_snapshot.upgrade().is_none());
    assert!(
        weak_voronoi.upgrade().is_some(),
        "the open session lost its pinned Voronoi index"
    );

    // The session still answers exactly — against its pinned generation 0.
    let index = VoronoiIndex::new(&d0).unwrap();
    let mut mirror = ContinuousSkyline::new(&index, &q);
    let moved = Point::new(3.1, 2.4);
    let update = engine.update_session(id, 0, moved).unwrap().wait();
    mirror.update(0, moved);
    assert_eq!(update.generation, 0);
    assert_eq!(
        update.superseded,
        Some(SnapshotSuperseded {
            pinned: 0,
            current: 1
        })
    );
    assert_eq!(update.skyline, mirror.skyline());
    assert_eq!(
        update.skyline,
        naive_full(&d0, &QueryContext::new(mirror.query())).skyline,
        "the pinned session diverged from its own generation's oracle"
    );

    // Closing the session releases the last pin on generation 0.
    assert!(engine.close_session(id));
    assert!(
        weak_voronoi.upgrade().is_none(),
        "closing the session did not release the pinned generation-0 index"
    );
}
