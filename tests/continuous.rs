//! End-to-end validation of VCS² (continuous SSQ, paper §5): the
//! maintained skyline must equal a from-scratch recomputation after every
//! single update, across motion patterns, query-set sizes and datasets.

use spatial_skyline::prelude::*;
use spatial_skyline::workload::motion::{MotionConfig, MovingQuerySet};
use spatial_skyline::workload::usgs::{synthetic_usgs_points, uniform_points, UsgsConfig};

fn check_stream(points: &[Point], cfg: MotionConfig, updates: usize) {
    let index = VoronoiIndex::new(points).unwrap();
    let mut team = MovingQuerySet::new(cfg);
    let mut cont = ContinuousSkyline::new(&index, team.positions());
    for step in 0..updates {
        let up = team.next_update();
        let (outcome, _) = cont.update(up.index, up.location);
        let fresh = vs2(&index, &QueryContext::new(team.positions()));
        assert_eq!(
            cont.skyline(),
            fresh.skyline,
            "divergence at step {step} (outcome {outcome:?}, |Q| = {})",
            cfg.count
        );
    }
}

#[test]
fn uniform_data_small_team() {
    let points = uniform_points(300, 11);
    check_stream(
        &points,
        MotionConfig {
            count: 3,
            step: 0.02,
            start_box: 0.1,
            seed: 1,
            ..MotionConfig::default()
        },
        80,
    );
}

#[test]
fn clustered_data_medium_team() {
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 400,
        seed: 5,
        ..UsgsConfig::default()
    });
    check_stream(
        &points,
        MotionConfig {
            count: 6,
            step: 0.015,
            start_box: 0.08,
            seed: 2,
            ..MotionConfig::default()
        },
        80,
    );
}

#[test]
fn large_steps_force_recomputations() {
    // Steps of 10% of the universe per update: hull changes are often
    // complex, exercising the recompute path heavily.
    let points = uniform_points(250, 17);
    let index = VoronoiIndex::new(&points).unwrap();
    let mut team = MovingQuerySet::new(MotionConfig {
        count: 4,
        step: 0.1,
        start_box: 0.2,
        seed: 3,
        ..MotionConfig::default()
    });
    let mut cont = ContinuousSkyline::new(&index, team.positions());
    for step in 0..60 {
        let up = team.next_update();
        cont.update(up.index, up.location);
        let fresh = vs2(&index, &QueryContext::new(team.positions()));
        assert_eq!(cont.skyline(), fresh.skyline, "divergence at step {step}");
    }
}

#[test]
fn single_moving_query_point() {
    // |Q| = 1: the skyline is exactly the nearest neighbour of the single
    // query point at all times.
    let points = uniform_points(200, 23);
    let index = VoronoiIndex::new(&points).unwrap();
    let mut team = MovingQuerySet::new(MotionConfig {
        count: 1,
        step: 0.05,
        start_box: 0.01,
        seed: 4,
        ..MotionConfig::default()
    });
    let mut cont = ContinuousSkyline::new(&index, team.positions());
    for _ in 0..50 {
        let up = team.next_update();
        cont.update(up.index, up.location);
        let q = team.positions()[0];
        let nn = (0..points.len() as u32)
            .min_by(|&a, &b| {
                points[a as usize]
                    .distance_sq(q)
                    .total_cmp(&points[b as usize].distance_sq(q))
            })
            .unwrap();
        let sky = cont.skyline();
        assert!(sky.contains(&nn));
        // All skyline members tie the NN distance exactly.
        for &s in &sky {
            assert_eq!(
                points[s as usize].distance_sq(q),
                points[nn as usize].distance_sq(q)
            );
        }
    }
}

#[test]
fn incremental_dominates_outcome_mix_for_small_steps() {
    // The paper's headline continuous result: with small movements, only a
    // tiny fraction of updates needs a full recomputation.
    let points = synthetic_usgs_points(&UsgsConfig {
        n: 2000,
        seed: 31,
        ..UsgsConfig::default()
    });
    let index = VoronoiIndex::new(&points).unwrap();
    let mut team = MovingQuerySet::new(MotionConfig {
        count: 7,
        step: 0.005,
        start_box: 0.05,
        seed: 6,
        ..MotionConfig::default()
    });
    let mut cont = ContinuousSkyline::new(&index, team.positions());
    for _ in 0..400 {
        let up = team.next_update();
        cont.update(up.index, up.location);
    }
    let counts = cont.counts();
    assert_eq!(counts.total(), 400);
    let recompute_frac = counts.recomputed as f64 / counts.total() as f64;
    assert!(
        recompute_frac < 0.15,
        "too many full recomputations: {recompute_frac} ({counts:?})"
    );
    // Final state still exact.
    let fresh = vs2(&index, &QueryContext::new(team.positions()));
    assert_eq!(cont.skyline(), fresh.skyline);
}
