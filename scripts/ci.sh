#!/usr/bin/env bash
# The whole local gate, fully offline. Run before pushing.
#
#   scripts/ci.sh             # the mandatory gate
#   SSQ_CI_DEEP=1 scripts/ci.sh   # + miri and ThreadSanitizer stages
#
# Mirrors what reviewers run: static analysis, format check, clippy
# (mandatory — a missing clippy component fails the gate), release build,
# full tests. The deep stages need a nightly toolchain with the miri and
# rust-src components; when those are absent each stage prints a SKIPPED
# notice and the gate continues — deep stages never fail the build by
# being unavailable, only by finding bugs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> ssq-analyze (mandatory static analysis; exit 1 = violations, 2 = internal error)"
cargo run -q -p ssq-analyze

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (mandatory, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> bench smoke (kernel hot path; fails on panics or non-finite numbers)"
cargo run --release -p ssq-bench --bin throughput_scaling -- --smoke
test -s BENCH_hotpath.json

if [[ "${SSQ_CI_DEEP:-0}" == "1" ]]; then
    echo "==> deep: miri (undefined-behavior check on the core unit tests)"
    if cargo +nightly miri --version >/dev/null 2>&1; then
        # Unit tests only: miri cannot spawn real OS threads fast enough
        # for the pool integration tests to be worth the hours.
        MIRIFLAGS="-Zmiri-disable-isolation" \
            cargo +nightly miri test -p ssq-geom -p ssq-core --lib -q
    else
        echo "    SKIPPED: nightly miri not installed (rustup +nightly component add miri)"
    fi

    echo "==> deep: ThreadSanitizer (data-race check on the engine concurrency tests)"
    if cargo +nightly --version >/dev/null 2>&1 \
        && [[ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]]; then
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p ssq-engine --test lock_order -q
    else
        echo "    SKIPPED: nightly rust-src not installed (rustup +nightly component add rust-src)"
    fi
else
    echo "==> deep stages skipped (set SSQ_CI_DEEP=1 to run miri + ThreadSanitizer)"
fi

echo "==> ci.sh: all green"
