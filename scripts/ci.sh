#!/usr/bin/env bash
# The whole local gate, fully offline. Run before pushing.
#
#   scripts/ci.sh             # the mandatory gate
#   SSQ_CI_DEEP=1 scripts/ci.sh   # + miri and ThreadSanitizer stages
#
# Mirrors what reviewers run: static analysis, format check, clippy
# (mandatory — a missing clippy component fails the gate), release build,
# full tests. The deep stages need a nightly toolchain with the miri and
# rust-src components; when those are absent each stage prints a SKIPPED
# notice and the gate continues — deep stages never fail the build by
# being unavailable, only by finding bugs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> ssq-analyze (mandatory static analysis; exit 1 = violations or stale suppressions, 2 = internal error)"
# All four call-graph rules run here (deny-alloc-transitive,
# no-panic-transitive, lock-rank-static, simd-dispatch-guard) on top of
# the local ones. The JSON report is the gate's build artifact — keep it
# alongside the BENCH_*.json files; --audit-suppressions additionally
# fails the stage when an allow directive no longer matches anything.
cargo run -q -p ssq-analyze -- --json ANALYZE_REPORT.json --audit-suppressions
test -s ANALYZE_REPORT.json

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (mandatory, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (detected SIMD dispatch)"
cargo test --workspace -q

echo "==> cargo test (SSQ_FORCE_SCALAR=1 — scalar tile-kernel oracle)"
# The full suite runs twice so every equivalence and integration test
# exercises both sides of the runtime dispatch: the detected AVX2/SSE2
# tile kernels above, the scalar oracle here. Same binaries, no rebuild.
SSQ_FORCE_SCALAR=1 cargo test --workspace -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> bench smoke (kernel hot path; fails on panics or non-finite numbers)"
cargo run --release -p ssq-bench --bin throughput_scaling -- --smoke
test -s BENCH_hotpath.json

echo "==> diagram smoke (hit vs planner latency; fails on misses or non-finite numbers)"
cargo run --release -p ssq-bench --bin diagram_bench -- --smoke
test -s BENCH_DIAGRAM.json

echo "==> net soak smoke (loopback server, 8 connections x 16 pipeline)"
cargo run --release -p ssq-bench --bin net_soak -- --smoke
test -s BENCH_net.json

echo "==> ingest soak smoke (delta publish >= 10x cheaper than full rebuild on 100k points)"
cargo run --release -p ssq-bench --bin ingest_soak -- --smoke
test -s BENCH_INGEST.json

echo "==> net serve smoke (real ssq binary, ephemeral port, clean shutdown)"
# ssq-analyze already covers crates/net (no-panic gate) in the first
# stage; this drives the shipped binary end to end: serve on :0 with
# stdin on a FIFO, burst a pipelined client at it, close the FIFO (EOF
# = shutdown), and require the clean-drain report and exit 0.
NET_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$NET_SMOKE_DIR"' EXIT
./target/release/ssq generate --n 500 --out "$NET_SMOKE_DIR/points.csv" --seed 7
mkfifo "$NET_SMOKE_DIR/control"
./target/release/ssq serve --data "$NET_SMOKE_DIR/points.csv" --addr 127.0.0.1:0 \
    < "$NET_SMOKE_DIR/control" > "$NET_SMOKE_DIR/serve.log" &
SERVE_PID=$!
exec 9> "$NET_SMOKE_DIR/control"   # hold the write end: serve runs until we close it
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^listening on //p' "$NET_SMOKE_DIR/serve.log" | head -n1)"
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$SERVE_ADDR" ]] || { echo "serve never printed its address"; exit 1; }
./target/release/ssq net-throughput --addr "$SERVE_ADDR" \
    --connections 8 --pipeline 16 --requests 400
exec 9>&-                           # EOF on stdin: drain and exit
wait "$SERVE_PID"                   # exit 0 or the gate fails (set -e)
grep -q "drained clean" "$NET_SMOKE_DIR/serve.log" \
    || { echo "serve did not report a clean drain"; cat "$NET_SMOKE_DIR/serve.log"; exit 1; }

if [[ "${SSQ_CI_DEEP:-0}" == "1" ]]; then
    echo "==> deep: miri (undefined-behavior check on the core unit tests)"
    if cargo +nightly miri --version >/dev/null 2>&1; then
        # Unit tests only: miri cannot spawn real OS threads fast enough
        # for the pool integration tests to be worth the hours.
        MIRIFLAGS="-Zmiri-disable-isolation" \
            cargo +nightly miri test -p ssq-geom -p ssq-core --lib -q
    else
        echo "    SKIPPED: nightly miri not installed (rustup +nightly component add miri)"
    fi

    echo "==> deep: ThreadSanitizer (data-race check on the engine concurrency tests)"
    if cargo +nightly --version >/dev/null 2>&1 \
        && [[ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]]; then
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p ssq-engine --test lock_order -q
    else
        echo "    SKIPPED: nightly rust-src not installed (rustup +nightly component add rust-src)"
    fi
else
    echo "==> deep stages skipped (set SSQ_CI_DEEP=1 to run miri + ThreadSanitizer)"
fi

echo "==> ci.sh: all green"
