#!/usr/bin/env bash
# The whole local gate, fully offline. Run before pushing.
#
#   scripts/ci.sh
#
# Mirrors what reviewers run: format check, clippy (best-effort if the
# component is missing from the toolchain), release build, full tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipping)"
fi

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> ci.sh: all green"
