#!/usr/bin/env bash
# The whole local gate, fully offline. Run before pushing.
#
#   scripts/ci.sh
#
# Mirrors what reviewers run: format check, clippy (mandatory — a missing
# clippy component fails the gate), release build, full tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (mandatory, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> bench smoke (kernel hot path; fails on panics or non-finite numbers)"
cargo run --release -p ssq-bench --bin throughput_scaling -- --smoke
test -s BENCH_hotpath.json

echo "==> ci.sh: all green"
