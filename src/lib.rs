//! # spatial-skyline
//!
//! A complete, from-scratch Rust implementation of **The Spatial Skyline
//! Queries** (Sharifzadeh & Shahabi, VLDB 2006).
//!
//! Given a set of data points `P` (restaurants, hotels, guard stations…)
//! and a set of query points `Q` (team members, landmarks, soldiers…), a
//! *spatial skyline query* returns every data point not **spatially
//! dominated** — no other point is at least as close to all query points
//! and strictly closer to one. This crate re-exports the full workspace:
//!
//! * [`core`] — the algorithms: naive, BBS (baseline), B²S², VS², VCS²
//!   (continuous/moving queries) and mixed spatial+attribute skylines;
//! * [`geom`] — the computational-geometry substrate (convex hulls, exact
//!   predicates, visible regions);
//! * [`delaunay`] — Delaunay triangulation / Voronoi diagram substrate;
//! * [`rtree`] — the R*-tree substrate;
//! * [`skyline`] — classic non-spatial skyline algorithms (BNL, SFS, D&C);
//! * [`workload`] — synthetic datasets and query/motion generators for the
//!   paper's experiments;
//! * [`engine`] — a concurrent query-serving engine (worker pool, LRU
//!   query-context cache, adaptive planner, continuous sessions, metrics)
//!   over a versioned snapshot catalog: immutable index snapshots that
//!   swap atomically under load (live reindex, generation-pinned queries);
//! * [`shard`] — sharded serving: spatial partitioner (grid / kd-split),
//!   one engine per shard, a dominance-bound shard-pruning router, an
//!   exact cross-shard skyline merge, and atomic whole-fleet reindexing.
//!
//! ## Quickstart
//!
//! ```
//! use spatial_skyline::prelude::*;
//!
//! // Where can three friends meet for coffee?
//! let cafes = vec![
//!     Point::new(0.2, 0.4),
//!     Point::new(0.5, 0.5),
//!     Point::new(0.8, 0.1),
//!     Point::new(0.9, 0.9),
//! ];
//! let friends = vec![
//!     Point::new(0.3, 0.3),
//!     Point::new(0.6, 0.4),
//!     Point::new(0.4, 0.7),
//! ];
//!
//! let index = RTreeIndex::new(&cafes);
//! let ctx = QueryContext::new(&friends);
//! let result = b2s2(&index, &ctx);
//! // `result.skyline` holds the cafés worth considering: every other café
//! // is farther from *all three* friends than one of these.
//! assert!(!result.skyline.is_empty());
//! ```

pub use ssq_core as core;
pub use ssq_delaunay as delaunay;
pub use ssq_engine as engine;
pub use ssq_geom as geom;
pub use ssq_rtree as rtree;
pub use ssq_shard as shard;
pub use ssq_skyline as skyline;
pub use ssq_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use ssq_core::mixed::{mixed_b2s2, mixed_naive, mixed_vs2, MixedContext};
    pub use ssq_core::{
        b2s2, bbs, naive_full, naive_sorted, vs2, vs2_with, ContinuousSkyline, QueryContext,
        QueryStats, RTreeIndex, SkylineResult, UpdateOutcome, VoronoiIndex, VsExpansion,
    };
    pub use ssq_geom::{Point, Rect};
}
