//! # ssq-rng
//!
//! A small, deterministic, portable PRNG shared by the whole workspace.
//!
//! The experiment harness must generate byte-identical datasets across
//! platforms and library versions so that paper-reproduction runs are
//! comparable; external generators explicitly reserve the right to change
//! their algorithm between versions. We therefore use our own xoshiro256**
//! generator (Blackman & Vigna), seeded through SplitMix64 — the standard
//! pairing — which is `Clone`, tiny and stable forever.
//!
//! The crate has **no dependencies** so even the leaf crates (`ssq-geom`,
//! `ssq-rtree`, `ssq-delaunay`) can use it in their randomized test
//! suites without pulling anything from a registry; `ssq-workload`
//! re-exports it as `ssq_workload::rng` for backwards compatibility.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

/// xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform `usize` in `[0, n)`. Panics when `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift (Lemire); the tiny modulo bias of the plain
        // approach is irrelevant for workload generation, but this is
        // unbiased anyway for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A pair of independent standard-normal variates (Box–Muller).
    pub fn gaussian_pair(&mut self) -> (f64, f64) {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(1);
        let mut c = Xoshiro256::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range_usize(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = r.gaussian_pair();
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sum_sq / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = Xoshiro256::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
