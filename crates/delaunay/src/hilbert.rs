//! Hilbert-curve ordering.
//!
//! Used in two places, both taken from the paper:
//!
//! * insertion order for the incremental Delaunay construction (short
//!   locate walks — a standard locality trick);
//! * the page layout of the Delaunay adjacency file: "To preserve locality,
//!   points are organized in pages according to their Hilbert values"
//!   (§4.2). [`crate::paged::PagedAdjacency`] groups points into pages in
//!   this order.

use ssq_geom::{Point, Rect};

/// Resolution of the Hilbert grid: coordinates are quantized to
/// `2^ORDER × 2^ORDER` cells.
pub const ORDER: u32 = 16;

/// Maps `p` to its Hilbert index on a `2^ORDER` grid spanning `bbox`.
///
/// Points outside `bbox` are clamped; degenerate boxes map everything to 0.
pub fn hilbert_index(p: Point, bbox: &Rect) -> u64 {
    let side = (1u32 << ORDER) as f64;
    let w = bbox.width();
    let h = bbox.height();
    let x = if w > 0.0 {
        (((p.x - bbox.min.x) / w) * (side - 1.0)).clamp(0.0, side - 1.0) as u32
    } else {
        0
    };
    let y = if h > 0.0 {
        (((p.y - bbox.min.y) / h) * (side - 1.0)).clamp(0.0, side - 1.0) as u32
    } else {
        0
    };
    xy_to_hilbert(x, y)
}

/// Converts grid coordinates to the Hilbert curve index (the classic
/// iterative bit-twiddling formulation).
pub fn xy_to_hilbert(mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << ORDER;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Sorts `indices` into Hilbert order of their points.
pub fn sort_by_hilbert(points: &[Point], indices: &mut [u32]) {
    let bbox = Rect::bounding(points.iter().copied());
    indices.sort_by_key(|&i| hilbert_index(points[i as usize], &bbox));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_is_injective_on_small_grid() {
        // All cells of an 8x8 subgrid must get distinct indices.
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                assert!(seen.insert(xy_to_hilbert(x, y)), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn hilbert_neighbors_are_close() {
        // Consecutive Hilbert indices correspond to adjacent grid cells:
        // walk a small curve segment and verify unit steps.
        let side = 16u32;
        let mut cells: Vec<(u64, (u32, u32))> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                cells.push((xy_to_hilbert(x, y), (x, y)));
            }
        }
        cells.sort();
        for w in cells.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            // Indices within the subgrid are not globally consecutive, so
            // only check pairs whose indices differ by exactly 1.
            if w[1].0 == w[0].0 + 1 {
                let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
                assert_eq!(manhattan, 1, "Hilbert step must be a unit move");
            }
        }
    }

    #[test]
    fn index_respects_bbox() {
        let bbox = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let a = hilbert_index(Point::new(0.0, 0.0), &bbox);
        let b = hilbert_index(Point::new(0.1, 0.0), &bbox);
        let far = hilbert_index(Point::new(10.0, 10.0), &bbox);
        assert!(a <= b);
        assert_ne!(a, far);
        // Clamping: out-of-box points don't panic.
        let _ = hilbert_index(Point::new(-5.0, 50.0), &bbox);
    }

    #[test]
    fn degenerate_bbox_maps_to_zero() {
        let bbox = Rect::from_point(Point::new(3.0, 3.0));
        assert_eq!(hilbert_index(Point::new(3.0, 3.0), &bbox), 0);
    }

    #[test]
    fn sort_by_hilbert_orders_locally() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(1.0, 1.0),
            Point::new(99.0, 99.0),
        ];
        let mut idx: Vec<u32> = (0..4).collect();
        sort_by_hilbert(&points, &mut idx);
        // The two near-origin points must be adjacent in the order, as must
        // the two far points.
        let pos = |i: u32| idx.iter().position(|&x| x == i).unwrap();
        assert_eq!(pos(0).abs_diff(pos(2)), 1);
        assert_eq!(pos(1).abs_diff(pos(3)), 1);
    }
}
