//! Incremental Delaunay triangulation (Bowyer–Watson with a ghost vertex).
//!
//! # Design
//!
//! The triangulation is built by inserting points one at a time: locate the
//! triangle whose circumdisk contains the new point (a *visibility walk*,
//! which always terminates on a Delaunay triangulation), grow the *cavity*
//! of all triangles whose circumdisks contain the point, delete it and
//! re-triangulate its boundary as a fan around the new point.
//!
//! Instead of the classic "super-triangle" (whose finite coordinates make
//! hull handling subtly wrong for skinny boundary triangles), the region
//! outside the convex hull is covered by **ghost triangles**: for every CCW
//! hull edge `a → b` there is a triangle `(b, a, GHOST)` with a symbolic
//! vertex at infinity. The in-circumdisk test for a ghost triangle
//! degenerates to an orientation test, so the exact predicates of
//! `ssq-geom` keep the whole structure exact for any finite `f64` input.
//!
//! Points are inserted in Hilbert-curve order, which keeps the locate walks
//! short and makes construction effectively linear time in practice.

use ssq_geom::predicates::{incircle_sign, orient2d_sign};
use ssq_geom::{Point, Rect};

use crate::hilbert;

/// The symbolic vertex at infinity used by ghost triangles.
pub const GHOST: u32 = u32::MAX;

/// Errors reported by [`Triangulation::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two input points are exactly identical; the Delaunay diagram of a
    /// multiset is ill-defined. The payload carries the two input indices.
    DuplicatePoint(usize, usize),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::DuplicatePoint(i, j) => {
                write!(f, "input points {i} and {j} are identical")
            }
            BuildError::NonFiniteCoordinate(i) => {
                write!(f, "input point {i} has a NaN/infinite coordinate")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors reported by the incremental maintenance entry points
/// ([`Triangulation::insert_point`] / [`Triangulation::remove_point`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The inserted point exactly coincides with an existing vertex.
    Duplicate,
    /// The inserted point has a NaN/infinite coordinate.
    NonFinite,
    /// The operation cannot be applied incrementally (degenerate input or
    /// a hole with no valid retriangulation); the caller must rebuild from
    /// scratch. The triangulation is left unchanged.
    NeedsRebuild,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Duplicate => write!(f, "point duplicates an existing vertex"),
            DeltaError::NonFinite => write!(f, "point has a NaN/infinite coordinate"),
            DeltaError::NeedsRebuild => write!(f, "delta not applicable; full rebuild required"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A triangle record: vertex indices (CCW for finite triangles; ghost
/// triangles keep `GHOST` in slot 2) and the neighbour opposite each
/// vertex.
#[derive(Clone, Copy, Debug)]
struct Tri {
    v: [u32; 3],
    /// `nbr[i]` is the triangle sharing the edge opposite `v[i]`;
    /// `u32::MAX` means "none" (only during construction).
    nbr: [u32; 3],
    alive: bool,
    /// Cavity-search stamp (epoch marking instead of clearing a bitmap).
    stamp: u32,
}

const NO_TRI: u32 = u32::MAX;

/// A Delaunay triangulation of a set of distinct points.
///
/// For inputs whose points are all collinear (or fewer than 3 points) no
/// triangle exists; [`Triangulation::is_degenerate`] reports this and
/// [`Triangulation::triangles`] is empty. [`crate::DelaunayGraph`] handles
/// that case with a path graph, so SSQ algorithms never need to care.
#[derive(Clone, Debug)]
pub struct Triangulation {
    points: Vec<Point>,
    tris: Vec<Tri>,
    /// Some alive triangle, used as the default walk start.
    seed: u32,
    /// True when the input was collinear/too small to triangulate.
    degenerate: bool,
    epoch: u32,
}

impl Triangulation {
    /// Builds the Delaunay triangulation of `points`.
    ///
    /// `O(n log n)` for the Hilbert sort plus effectively linear insertion.
    /// Exact duplicates and non-finite coordinates are rejected.
    pub fn new(points: &[Point]) -> Result<Triangulation, BuildError> {
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(BuildError::NonFiniteCoordinate(i));
            }
        }
        // Duplicate detection via lexicographic sort of indices.
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        order.sort_by(|&i, &j| points[i as usize].lex_cmp(&points[j as usize]));
        for w in order.windows(2) {
            if points[w[0] as usize] == points[w[1] as usize] {
                let (a, b) = (w[0] as usize, w[1] as usize);
                return Err(BuildError::DuplicatePoint(a.min(b), a.max(b)));
            }
        }

        let mut t = Triangulation {
            points: points.to_vec(),
            tris: Vec::new(),
            seed: NO_TRI,
            degenerate: true,
            epoch: 0,
        };
        if points.len() < 3 {
            return Ok(t);
        }

        // Hilbert insertion order over the data MBR.
        let bbox = Rect::bounding(points.iter().copied());
        let mut insert_order: Vec<u32> = (0..points.len() as u32).collect();
        insert_order.sort_by_key(|&i| hilbert::hilbert_index(points[i as usize], &bbox));

        // Find the first non-collinear triple in insertion order to seed the
        // triangulation: (first two distinct points, first point off their
        // line).
        let i0 = insert_order[0];
        let mut i1 = None;
        let mut i2 = None;
        for &i in &insert_order[1..] {
            if i1.is_none() {
                i1 = Some(i);
                continue;
            }
            let a = points[i0 as usize];
            // ssq-analyze: allow(no-panic-transitive): i1 is assigned on a previous iteration before this arm is reachable
            let b = points[i1.expect("set above") as usize];
            if orient2d_sign(a, b, points[i as usize]) != 0 {
                i2 = Some(i);
                break;
            }
        }
        let Some(i2) = i2 else {
            return Ok(t); // all points collinear: degenerate
        };
        // ssq-analyze: allow(no-panic-transitive): i2 is only found after i1 was set, so i1 is Some here
        let i1 = i1.expect("at least two points");
        t.degenerate = false;
        t.init_first_triangle(i0, i1, i2);
        for &i in &insert_order[1..] {
            if i == i1 || i == i2 {
                continue;
            }
            t.insert(i);
        }
        Ok(t)
    }

    /// The input points, in their original order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// `true` when the input had no non-collinear triple.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Iterates over the finite triangles as CCW vertex-index triples.
    pub fn triangles(&self) -> impl Iterator<Item = [u32; 3]> + '_ {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v[2] != GHOST)
            .map(|t| t.v)
    }

    /// Collects the undirected Delaunay edges (each reported once, with
    /// `a < b`).
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for t in self.tris.iter().filter(|t| t.alive) {
            for k in 0..3 {
                let a = t.v[k];
                let b = t.v[(k + 1) % 3];
                if a == GHOST || b == GHOST {
                    continue;
                }
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Calls `f(a, b)` for every finite *directed* Delaunay edge `a → b`.
    ///
    /// Each directed edge is visited exactly once: the triangle on its left
    /// contributes `a → b` and the triangle on its right (a ghost, for hull
    /// edges) contributes `b → a`. This lets callers build adjacency
    /// structures in `O(|edges|)` without a global sort.
    pub fn for_each_directed_edge(&self, mut f: impl FnMut(u32, u32)) {
        for t in self.tris.iter().filter(|t| t.alive) {
            for k in 0..3 {
                let a = t.v[k];
                let b = t.v[(k + 1) % 3];
                if a != GHOST && b != GHOST {
                    f(a, b);
                }
            }
        }
    }

    // -- incremental maintenance -------------------------------------------

    /// Appends `p` as a new vertex and inserts it into the triangulation
    /// (visibility-walk locate + Bowyer–Watson cavity). Returns the new
    /// vertex id. `O(log n)` expected for well-distributed inserts.
    ///
    /// Fails with [`DeltaError::NeedsRebuild`] on a degenerate
    /// triangulation (the caller rebuilds from the full point set, which
    /// also resolves a formerly-collinear set gaining an off-line point).
    pub fn insert_point(&mut self, p: Point) -> Result<u32, DeltaError> {
        if !p.is_finite() {
            return Err(DeltaError::NonFinite);
        }
        if self.degenerate {
            return Err(DeltaError::NeedsRebuild);
        }
        // Duplicate check: a coinciding vertex must be a corner of the
        // located (closed-containing) triangle. A point strictly outside
        // the hull lands on a ghost and cannot coincide with anything.
        let t = self.locate(p, self.seed);
        for &v in &self.tris[t as usize].v {
            if v != GHOST && self.pt(v) == p {
                return Err(DeltaError::Duplicate);
            }
        }
        let pi = self.points.len() as u32;
        self.points.push(p);
        self.insert(pi);
        Ok(pi)
    }

    /// Removes vertex `vi`, retriangulating the star-shaped hole left by
    /// its incident triangles (cavity retriangulation by Delaunay ear
    /// clipping; hull vertices are handled through their ghost ring).
    ///
    /// The vertex's `points` slot becomes stale but keeps its index so
    /// later operations in the same batch can still use old ids; call
    /// [`Triangulation::compact`] once the batch is done. Fails with
    /// [`DeltaError::NeedsRebuild`] — leaving the triangulation unchanged
    /// — when the hole admits no valid ear (collinear residue). Callers
    /// must keep at least three finite vertices with a non-collinear
    /// triple; batches shrinking the set below that must rebuild instead.
    pub fn remove_point(&mut self, vi: u32) -> Result<(), DeltaError> {
        if self.degenerate {
            return Err(DeltaError::NeedsRebuild);
        }
        let start = self.locate(self.pt(vi), self.seed);
        if self.is_ghost(start) || !self.tris[start as usize].v.contains(&vi) {
            // `vi` is not a vertex of the triangulation (stale id).
            return Err(DeltaError::NeedsRebuild);
        }

        // Collect the link ring around `vi` by rotating through the
        // neighbour links: incident triangle i is (vi, ring[i], ring[i+1])
        // cyclically, and outs[i] is the neighbour across the ring edge
        // (ring[i], ring[i+1]). With ghosts every vertex has a closed
        // ring; GHOST appears at most once (exactly once for hull
        // vertices).
        let mut ring: Vec<u32> = Vec::with_capacity(8);
        let mut outs: Vec<(u32, usize)> = Vec::with_capacity(8);
        let mut incident: Vec<u32> = Vec::with_capacity(8);
        let mut cur = start;
        loop {
            let t = self.tris[cur as usize];
            let Some(k) = (0..3).find(|&j| t.v[j] == vi) else {
                return Err(DeltaError::NeedsRebuild);
            };
            let a = t.v[(k + 1) % 3];
            let out = t.nbr[k];
            let out_edge = (0..3)
                .find(|&j| self.tris[out as usize].nbr[j] == cur)
                // ssq-analyze: allow(no-panic-transitive): neighbour links are symmetric by construction; asymmetry is structural corruption where fail-fast beats silent miscounting
                .expect("neighbour links must be symmetric");
            ring.push(a);
            outs.push((out, out_edge));
            incident.push(cur);
            cur = t.nbr[(k + 1) % 3];
            if cur == start {
                break;
            }
        }
        let m = ring.len();
        debug_assert!(m >= 3, "every vertex has degree >= 3 counting GHOST");

        // Phase 1 (read-only): plan the retriangulation by ear clipping a
        // scratch copy of the ring. A finite ear must be CCW with a
        // circumdisk empty of the remaining ring vertices; an ear
        // containing GHOST is a prospective hull edge whose outer
        // half-plane (the ghost "disk") must be empty of them. Aborting
        // here leaves the triangulation untouched.
        let mut hole: Vec<u32> = ring.clone();
        let mut planned: Vec<[u32; 3]> = Vec::with_capacity(m - 2);
        while hole.len() > 3 {
            let len = hole.len();
            let mut clipped = None;
            for i in 0..len {
                let x = hole[(i + len - 1) % len];
                let y = hole[i];
                let z = hole[(i + 1) % len];
                let valid = if x != GHOST && y != GHOST && z != GHOST {
                    orient2d_sign(self.pt(x), self.pt(y), self.pt(z)) == 1
                        && hole.iter().all(|&d| {
                            d == x
                                || d == y
                                || d == z
                                || d == GHOST
                                || incircle_sign(self.pt(x), self.pt(y), self.pt(z), self.pt(d))
                                    <= 0
                        })
                } else {
                    // Rotating the ghost into slot 2 turns the ear into
                    // the ghost triangle (u, w, GHOST) of hull edge w->u.
                    let (u, w) = if x == GHOST {
                        (y, z)
                    } else if y == GHOST {
                        (z, x)
                    } else {
                        (x, y)
                    };
                    hole.iter().all(|&d| {
                        d == u
                            || d == w
                            || d == GHOST
                            || !self.ghost_disk_contains(u, w, self.pt(d))
                    })
                };
                if valid {
                    clipped = Some(i);
                    break;
                }
            }
            let Some(i) = clipped else {
                return Err(DeltaError::NeedsRebuild);
            };
            let len = hole.len();
            planned.push([hole[(i + len - 1) % len], hole[i], hole[(i + 1) % len]]);
            hole.remove(i);
        }
        let (x, y, z) = (hole[0], hole[1], hole[2]);
        if x != GHOST
            && y != GHOST
            && z != GHOST
            && orient2d_sign(self.pt(x), self.pt(y), self.pt(z)) != 1
        {
            return Err(DeltaError::NeedsRebuild);
        }
        planned.push([x, y, z]);

        // Phase 2: delete the star and materialise the plan, stitching
        // neighbour links through an undirected-edge map seeded with the
        // ring boundary (the same scheme the insertion cavity uses).
        for &t in &incident {
            self.tris[t as usize].alive = false;
        }
        let mut edge_map: std::collections::HashMap<(u32, u32), (u32, usize)> =
            std::collections::HashMap::with_capacity(m * 2);
        for i in 0..m {
            let a = ring[i];
            let b = ring[(i + 1) % m];
            edge_map.insert((a.min(b), a.max(b)), outs[i]);
        }
        let mut new_seed = NO_TRI;
        for &[x, y, z] in &planned {
            let (v, rot) = if x == GHOST {
                ([y, z, GHOST], 1)
            } else if y == GHOST {
                ([z, x, GHOST], 2)
            } else {
                ([x, y, z], 0)
            };
            let nt = self.alloc(v);
            if new_seed == NO_TRI || v[2] != GHOST {
                new_seed = nt;
            }
            let opp = |orig: usize| (orig + 3 - rot) % 3;
            for (orig_idx, ea, eb) in [(0usize, y, z), (1, z, x), (2, x, y)] {
                let key = (ea.min(eb), ea.max(eb));
                match edge_map.remove(&key) {
                    Some((other, other_edge)) => {
                        self.tris[nt as usize].nbr[opp(orig_idx)] = other;
                        self.tris[other as usize].nbr[other_edge] = nt;
                    }
                    None => {
                        edge_map.insert(key, (nt, opp(orig_idx)));
                    }
                }
            }
        }
        debug_assert!(edge_map.is_empty(), "hole stitching must close");
        self.seed = new_seed;
        Ok(())
    }

    /// Compacts vertex ids and the triangle arena after a batch of
    /// [`Triangulation::remove_point`] / [`Triangulation::insert_point`]
    /// calls.
    ///
    /// `deleted` lists the removed vertex ids in ascending order.
    /// Surviving vertices slide down to fill the gaps (the id map is
    /// monotone, so sorted id lists stay sorted under it); dead triangle
    /// slots are dropped so the arena does not grow across generations.
    /// Returns the old-id → new-id map, with `u32::MAX` for deleted ids.
    pub fn compact(&mut self, deleted: &[u32]) -> Vec<u32> {
        debug_assert!(deleted.windows(2).all(|w| w[0] < w[1]));
        let n = self.points.len();
        let mut remap = vec![u32::MAX; n];
        let mut kept = Vec::with_capacity(n - deleted.len());
        let mut di = 0usize;
        for (i, &p) in self.points.iter().enumerate() {
            if di < deleted.len() && deleted[di] as usize == i {
                di += 1;
                continue;
            }
            remap[i] = kept.len() as u32;
            kept.push(p);
        }
        debug_assert_eq!(di, deleted.len(), "deleted ids must be in range");
        self.points = kept;

        let mut tri_remap = vec![NO_TRI; self.tris.len()];
        let mut kept_tris: Vec<Tri> = Vec::with_capacity(self.tris.len());
        for (i, t) in self.tris.iter().enumerate() {
            if t.alive {
                tri_remap[i] = kept_tris.len() as u32;
                kept_tris.push(*t);
            }
        }
        for t in &mut kept_tris {
            for k in 0..3 {
                if t.v[k] != GHOST {
                    debug_assert_ne!(
                        remap[t.v[k] as usize],
                        u32::MAX,
                        "live triangle references a deleted vertex"
                    );
                    t.v[k] = remap[t.v[k] as usize];
                }
                t.nbr[k] = tri_remap[t.nbr[k] as usize];
            }
            t.stamp = 0;
        }
        self.tris = kept_tris;
        self.epoch = 0;
        self.seed = if self.tris.is_empty() {
            NO_TRI
        } else {
            tri_remap[self.seed as usize]
        };
        remap
    }

    // -- crate-internal accessors (used by the Voronoi extraction) ---------

    /// Number of triangle slots (alive or dead).
    pub(crate) fn slot_count(&self) -> usize {
        self.tris.len()
    }

    /// Is slot `t` an alive triangle?
    pub(crate) fn slot_alive(&self, t: u32) -> bool {
        self.tris[t as usize].alive
    }

    /// Vertex indices of slot `t` (slot 2 is `GHOST` for ghost triangles).
    pub(crate) fn slot_verts(&self, t: u32) -> [u32; 3] {
        self.tris[t as usize].v
    }

    /// Neighbour of slot `t` opposite its vertex `k`.
    pub(crate) fn slot_nbr(&self, t: u32, k: usize) -> u32 {
        self.tris[t as usize].nbr[k]
    }

    // -- construction internals --------------------------------------------

    fn init_first_triangle(&mut self, i0: u32, i1: u32, i2: u32) {
        let (a, b, c) = (
            self.points[i0 as usize],
            self.points[i1 as usize],
            self.points[i2 as usize],
        );
        let (i0, i1, i2) = if orient2d_sign(a, b, c) > 0 {
            (i0, i1, i2)
        } else {
            (i0, i2, i1)
        };
        // Finite triangle 0 plus ghosts 1..=3, one per CCW hull edge.
        // Hull edge (v[k+1] -> v[k+2]) is opposite vertex k; its ghost is
        // stored reversed: (v[k+2], v[k+1], GHOST).
        let f = self.alloc([i0, i1, i2]);
        let v = [i0, i1, i2];
        let mut ghosts = [NO_TRI; 3];
        for (k, g) in ghosts.iter_mut().enumerate() {
            let a = v[(k + 1) % 3];
            let b = v[(k + 2) % 3];
            *g = self.alloc([b, a, GHOST]);
        }
        for k in 0..3 {
            self.tris[f as usize].nbr[k] = ghosts[k];
            self.tris[ghosts[k] as usize].nbr[2] = f;
            // Ghost (b, a, GHOST) for hull edge a->b:
            //  - edge opposite v0=b is (a, GHOST): shared with the ghost of
            //    the previous CCW hull edge (the one ending at a);
            //  - edge opposite v1=a is (GHOST, b): shared with the ghost of
            //    the next CCW hull edge (the one starting at b).
            // Hull edge k goes v[k+1] -> v[k+2]; the previous edge is k-1
            // (ends at v[k+1]), the next is k+1 (starts at v[k+2]).
            self.tris[ghosts[k] as usize].nbr[0] = ghosts[(k + 2) % 3];
            self.tris[ghosts[k] as usize].nbr[1] = ghosts[(k + 1) % 3];
        }
        self.seed = f;
    }

    fn alloc(&mut self, v: [u32; 3]) -> u32 {
        let id = self.tris.len() as u32;
        self.tris.push(Tri {
            v,
            nbr: [NO_TRI; 3],
            alive: true,
            stamp: 0,
        });
        id
    }

    #[inline]
    fn pt(&self, i: u32) -> Point {
        self.points[i as usize]
    }

    #[inline]
    fn is_ghost(&self, t: u32) -> bool {
        self.tris[t as usize].v[2] == GHOST
    }

    /// Is `p` inside the (open, plus the degenerate boundary cases discussed
    /// in the module docs) circumdisk of triangle `t`?
    fn in_disk(&self, t: u32, p: Point) -> bool {
        let tri = &self.tris[t as usize];
        if tri.v[2] == GHOST {
            // Ghost (u, w, GHOST) for CCW hull edge w -> u: its "disk" is
            // the open half-plane strictly left of u -> w (strictly outside
            // the hull edge), plus — for points exactly on the supporting
            // line — the open edge segment itself, so a point splitting a
            // hull edge swallows the ghost instead of creating a degenerate
            // finite triangle. A collinear point *beyond* the segment must
            // NOT enter this ghost's cavity: it belongs to the adjacent
            // hull edge's ghost, and including this one would fan a
            // zero-area triangle.
            self.ghost_disk_contains(tri.v[0], tri.v[1], p)
        } else {
            incircle_sign(self.pt(tri.v[0]), self.pt(tri.v[1]), self.pt(tri.v[2]), p) > 0
        }
    }

    /// The symbolic circumdisk test of ghost triangle `(u, w, GHOST)`: the
    /// open half-plane strictly left of `u -> w`, plus the open hull-edge
    /// segment itself (see [`Triangulation::in_disk`] for the rationale).
    fn ghost_disk_contains(&self, u: u32, w: u32, p: Point) -> bool {
        let pu = self.pt(u);
        let pw = self.pt(w);
        match orient2d_sign(pu, pw, p) {
            1 => true,
            0 => {
                let t = (p - pu).dot(pw - pu);
                t > 0.0 && t < (pw - pu).norm_sq()
            }
            _ => false,
        }
    }

    /// Visibility walk from `start` to the triangle containing `p` (or a
    /// ghost triangle when `p` is outside the hull). Always terminates on a
    /// Delaunay triangulation.
    fn locate(&self, p: Point, start: u32) -> u32 {
        let mut cur = if self.is_ghost(start) {
            self.tris[start as usize].nbr[2]
        } else {
            start
        };
        let mut prev = NO_TRI;
        loop {
            let tri = &self.tris[cur as usize];
            debug_assert!(tri.alive);
            let mut next = NO_TRI;
            for k in 0..3 {
                let a = tri.v[(k + 1) % 3];
                let b = tri.v[(k + 2) % 3];
                if orient2d_sign(self.pt(a), self.pt(b), p) < 0 {
                    let n = tri.nbr[k];
                    if n != prev {
                        next = n;
                        break;
                    }
                    // Don't walk straight back; try another crossing edge.
                    if next == NO_TRI {
                        next = n;
                    }
                }
            }
            if next == NO_TRI {
                return cur; // inside (or on the boundary of) cur
            }
            if self.is_ghost(next) {
                return next; // p is outside the hull, beyond this hull edge
            }
            prev = cur;
            cur = next;
        }
    }

    /// Inserts point index `pi` (which must not duplicate an existing
    /// vertex).
    fn insert(&mut self, pi: u32) {
        let p = self.pt(pi);
        let seed = self.locate(p, self.seed);
        debug_assert!(
            self.in_disk(seed, p),
            "locate returned a non-containing triangle"
        );

        // Grow the cavity: BFS over triangles whose circumdisk contains p.
        self.epoch += 1;
        let epoch = self.epoch;
        let mut cavity: Vec<u32> = Vec::with_capacity(8);
        let mut stack = vec![seed];
        self.tris[seed as usize].stamp = epoch;
        while let Some(t) = stack.pop() {
            cavity.push(t);
            for k in 0..3 {
                let n = self.tris[t as usize].nbr[k];
                if n == NO_TRI || self.tris[n as usize].stamp == epoch {
                    continue;
                }
                if self.in_disk(n, p) {
                    self.tris[n as usize].stamp = epoch;
                    stack.push(n);
                }
            }
        }

        // Collect the directed boundary edges (x, y): edges of cavity
        // triangles whose opposite neighbour is outside the cavity, directed
        // so the cavity (hence p) lies to the left.
        struct Boundary {
            x: u32,
            y: u32,
            outside: u32,
            outside_edge: usize,
        }
        let mut boundary: Vec<Boundary> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            let tri = self.tris[t as usize];
            for k in 0..3 {
                let n = tri.nbr[k];
                debug_assert_ne!(n, NO_TRI, "triangulation boundary is closed by ghosts");
                if self.tris[n as usize].stamp == epoch {
                    continue; // internal cavity edge
                }
                let x = tri.v[(k + 1) % 3];
                let y = tri.v[(k + 2) % 3];
                // Which edge of `n` faces back to the cavity?
                let ntri = &self.tris[n as usize];
                let outside_edge = (0..3)
                    .find(|&j| ntri.nbr[j] == t)
                    // ssq-analyze: allow(no-panic-transitive): neighbour links are symmetric by construction; asymmetry is structural corruption where fail-fast beats silent miscounting
                    .expect("neighbour links must be symmetric");
                boundary.push(Boundary {
                    x,
                    y,
                    outside: n,
                    outside_edge,
                });
            }
        }

        // Delete the cavity and fan new triangles (x, y, p) around p.
        for &t in &cavity {
            self.tris[t as usize].alive = false;
        }
        let mut edge_map: std::collections::HashMap<(u32, u32), (u32, usize)> =
            std::collections::HashMap::with_capacity(boundary.len() * 2);
        let mut first_new = NO_TRI;
        for b in &boundary {
            // Rotate so a GHOST vertex (if any) sits in slot 2. The rotation
            // permutes edges consistently: rotating vertices left by one
            // also rotates the "opposite" indexing left by one.
            let (v, rot) = if b.x == GHOST {
                ([b.y, pi, GHOST], 1) // (x,y,p) rotated left once
            } else if b.y == GHOST {
                ([pi, b.x, GHOST], 2) // rotated left twice
            } else {
                ([b.x, b.y, pi], 0)
            };
            let nt = self.alloc(v);
            if first_new == NO_TRI {
                first_new = nt;
            }
            // In (x, y, p) coordinates: edge opposite p (index 2) borders
            // `outside`; edge opposite x (index 0) is (y, p); edge opposite
            // y (index 1) is (p, x). Map through the rotation.
            let opp = |orig: usize| (orig + 3 - rot) % 3;
            self.tris[nt as usize].nbr[opp(2)] = b.outside;
            self.tris[b.outside as usize].nbr[b.outside_edge] = nt;
            // Stitch the p-incident edges via the shared non-p endpoint,
            // keyed by undirected (min, max).
            for (orig_idx, shared) in [(0usize, b.y), (1usize, b.x)] {
                let key = (shared.min(pi), shared.max(pi));
                if let Some(&(other, other_edge)) = edge_map.get(&key) {
                    self.tris[nt as usize].nbr[opp(orig_idx)] = other;
                    self.tris[other as usize].nbr[other_edge] = nt;
                } else {
                    edge_map.insert(key, (nt, opp(orig_idx)));
                }
            }
        }
        debug_assert!(first_new != NO_TRI);
        self.seed = first_new;
    }

    /// Checks the structural invariants (symmetric neighbour links, CCW
    /// finite triangles, closed ghost ring). Used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if self.degenerate {
            return;
        }
        for (id, t) in self.tris.iter().enumerate() {
            if !t.alive {
                continue;
            }
            if t.v[2] != GHOST {
                assert_eq!(
                    orient2d_sign(self.pt(t.v[0]), self.pt(t.v[1]), self.pt(t.v[2])),
                    1,
                    "finite triangle {id} must be CCW"
                );
            }
            for k in 0..3 {
                let n = t.nbr[k];
                assert_ne!(n, NO_TRI, "triangle {id} missing neighbour {k}");
                let nt = &self.tris[n as usize];
                assert!(nt.alive, "triangle {id} points at dead neighbour {n}");
                assert!(
                    (0..3).any(|j| nt.nbr[j] == id as u32),
                    "neighbour link {id} -> {n} is not symmetric"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Brute-force Delaunay check: no point lies strictly inside any
    /// triangle's circumcircle.
    fn assert_delaunay(t: &Triangulation) {
        t.check_invariants();
        let pts = t.points();
        for tri in t.triangles() {
            let (a, b, c) = (
                pts[tri[0] as usize],
                pts[tri[1] as usize],
                pts[tri[2] as usize],
            );
            for (i, &d) in pts.iter().enumerate() {
                if tri.contains(&(i as u32)) {
                    continue;
                }
                assert!(
                    incircle_sign(a, b, c, d) <= 0,
                    "point {i} {d:?} violates the empty-circumcircle property of {tri:?}"
                );
            }
        }
    }

    /// Euler check: for a triangulation of n points with h points on the
    /// hull *boundary* (corner vertices plus collinear boundary points),
    /// #triangles = 2n - h - 2 and #edges = 3n - h - 3.
    fn assert_euler(t: &Triangulation) {
        let n = t.points().len();
        let hull = ssq_geom::convex_hull(t.points());
        let h = t
            .points()
            .iter()
            .filter(|&&p| hull.contains(p) && !hull.contains_strict(p))
            .count();
        let tri_count = t.triangles().count();
        let edge_count = t.edges().len();
        assert_eq!(tri_count, 2 * n - h - 2, "triangle count (n={n}, h={h})");
        assert_eq!(edge_count, 3 * n - h - 3, "edge count (n={n}, h={h})");
    }

    #[test]
    fn single_triangle() {
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)]).unwrap();
        assert!(!t.is_degenerate());
        assert_eq!(t.triangles().count(), 1);
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn square_produces_two_triangles() {
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]).unwrap();
        assert_eq!(t.triangles().count(), 2);
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn interior_point() {
        let t = Triangulation::new(&[
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
        ])
        .unwrap();
        assert_eq!(t.triangles().count(), 4);
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn point_outside_hull_extends_it() {
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(3.0, 3.0)]).unwrap();
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn collinear_point_on_hull_edge_line() {
        // (2,0) is collinear with hull edge (0,0)-(1,0) and beyond it.
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(2.0, 0.0)]).unwrap();
        assert_delaunay(&t);
        assert_euler(&t);
        // Splitting point exactly ON a hull edge.
        let t = Triangulation::new(&[p(0.0, 0.0), p(2.0, 0.0), p(0.0, 2.0), p(1.0, 0.0)]).unwrap();
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn cocircular_points() {
        // Four cocircular points: either diagonal is a valid Delaunay
        // triangulation; both must satisfy the (non-strict) empty-circle
        // property and the invariants.
        let t =
            Triangulation::new(&[p(1.0, 0.0), p(0.0, 1.0), p(-1.0, 0.0), p(0.0, -1.0)]).unwrap();
        assert_eq!(t.triangles().count(), 2);
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn grid_with_many_cocircular_quads() {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let t = Triangulation::new(&pts).unwrap();
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Triangulation::new(&[]).unwrap().is_degenerate());
        assert!(Triangulation::new(&[p(1.0, 2.0)]).unwrap().is_degenerate());
        assert!(Triangulation::new(&[p(0.0, 0.0), p(1.0, 1.0)])
            .unwrap()
            .is_degenerate());
        let collinear =
            Triangulation::new(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(5.0, 5.0)]).unwrap();
        assert!(collinear.is_degenerate());
        assert_eq!(collinear.triangles().count(), 0);
    }

    #[test]
    fn duplicate_points_rejected() {
        let err = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(0.0, 0.0)]).unwrap_err();
        assert_eq!(err, BuildError::DuplicatePoint(0, 2));
    }

    #[test]
    fn non_finite_rejected() {
        let err = Triangulation::new(&[p(0.0, 0.0), p(f64::NAN, 0.0)]).unwrap_err();
        assert_eq!(err, BuildError::NonFiniteCoordinate(1));
    }

    #[test]
    fn pseudorandom_sets_are_delaunay() {
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 4 + trial * 7;
            let pts: Vec<Point> = (0..n).map(|_| p(next() * 100.0, next() * 100.0)).collect();
            let t = Triangulation::new(&pts).unwrap();
            assert_delaunay(&t);
            assert_euler(&t);
        }
    }

    #[test]
    fn insert_point_extends_the_triangulation() {
        let mut t = Triangulation::new(&[p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0)]).unwrap();
        // Interior, on-edge, outside-hull, and collinear-beyond inserts.
        for q in [p(1.0, 1.0), p(2.0, 0.0), p(5.0, 5.0), p(8.0, 0.0)] {
            let id = t.insert_point(q).unwrap();
            assert_eq!(t.points()[id as usize], q);
            assert_delaunay(&t);
            assert_euler(&t);
        }
        assert_eq!(t.insert_point(p(1.0, 1.0)), Err(DeltaError::Duplicate));
        assert_eq!(t.insert_point(p(f64::NAN, 0.0)), Err(DeltaError::NonFinite));
    }

    #[test]
    fn remove_interior_point() {
        let mut t = Triangulation::new(&[
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
        ])
        .unwrap();
        t.remove_point(4).unwrap();
        assert_delaunay_sparse(&t, &[4]);
        let _ = t.compact(&[4]);
        assert_delaunay(&t);
        assert_euler(&t);
        assert_eq!(t.triangles().count(), 2);
    }

    #[test]
    fn remove_hull_vertex() {
        let mut t = Triangulation::new(&[
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
        ])
        .unwrap();
        t.remove_point(0).unwrap();
        assert_delaunay_sparse(&t, &[0]);
        let _ = t.compact(&[0]);
        assert_delaunay(&t);
        assert_euler(&t);
        // 4 remaining points, all on the hull boundary of the residue
        // ((2,2) sits exactly on the new hull edge (0,4)-(4,0)).
        assert_eq!(t.triangles().count(), 2);
    }

    #[test]
    fn remove_then_compact_keeps_delaunay() {
        let mut pts = Vec::new();
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..60 {
            pts.push(p(next() * 100.0, next() * 100.0));
        }
        let mut t = Triangulation::new(&pts).unwrap();
        let deleted: Vec<u32> = vec![3, 17, 18, 30, 44, 59];
        for (applied, &d) in deleted.iter().enumerate() {
            t.remove_point(d).unwrap();
            assert_delaunay_sparse(&t, &deleted[..=applied]);
        }
        let remap = t.compact(&deleted);
        assert_eq!(t.points().len(), 54);
        // Monotone on survivors.
        let survivors: Vec<u32> = remap.iter().copied().filter(|&r| r != u32::MAX).collect();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
        assert_delaunay(&t);
        assert_euler(&t);
    }

    /// Like `assert_delaunay` but skips deleted (stale) point slots.
    fn assert_delaunay_sparse(t: &Triangulation, deleted: &[u32]) {
        t.check_invariants();
        let pts = t.points();
        for tri in t.triangles() {
            assert!(!tri.iter().any(|v| deleted.contains(v)));
            let (a, b, c) = (
                pts[tri[0] as usize],
                pts[tri[1] as usize],
                pts[tri[2] as usize],
            );
            for (i, &d) in pts.iter().enumerate() {
                if tri.contains(&(i as u32)) || deleted.contains(&(i as u32)) {
                    continue;
                }
                assert!(
                    incircle_sign(a, b, c, d) <= 0,
                    "point {i} violates empty-circumcircle after deletion"
                );
            }
        }
    }

    #[test]
    fn interleaved_insert_remove_matches_fresh_build() {
        let mut seed = 0xACE1u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts: Vec<Point> = (0..50).map(|_| p(next() * 100.0, next() * 100.0)).collect();
        let mut t = Triangulation::new(&pts).unwrap();

        // Delete 12 scattered old ids, insert 15 new points, compact.
        let deleted: Vec<u32> = vec![0, 4, 9, 13, 21, 22, 23, 30, 38, 44, 48, 49];
        for &d in &deleted {
            t.remove_point(d).unwrap();
        }
        let mut inserts = Vec::new();
        for _ in 0..15 {
            let q = p(next() * 100.0, next() * 100.0);
            let id = t.insert_point(q).unwrap();
            assert_eq!(id as usize, pts.len() + inserts.len());
            inserts.push(q);
        }
        let _ = t.compact(&deleted);
        assert_delaunay(&t);
        assert_euler(&t);

        // The surviving point sequence matches the delta semantics.
        let mut expect: Vec<Point> = Vec::new();
        for (i, &q) in pts.iter().enumerate() {
            if !deleted.contains(&(i as u32)) {
                expect.push(q);
            }
        }
        expect.append(&mut inserts);
        assert_eq!(t.points(), expect.as_slice());

        // Same edge set as a fresh build (no exact cocircularities in
        // random data, so the Delaunay triangulation is unique).
        let fresh = Triangulation::new(&expect).unwrap();
        assert_eq!(t.edges(), fresh.edges());
        pts.clear();
    }

    #[test]
    fn grid_deletions_with_cocircular_ties() {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let mut t = Triangulation::new(&pts).unwrap();
        // Corner (hull), edge-midpoint (hull), and center (interior).
        let deleted = vec![0u32, 3, 14, 21, 35];
        for &d in &deleted {
            t.remove_point(d).unwrap();
        }
        let _ = t.compact(&deleted);
        assert_delaunay(&t);
        assert_euler(&t);
    }

    #[test]
    fn degenerate_states_demand_rebuild() {
        let mut t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.insert_point(p(1.0, 0.0)), Err(DeltaError::NeedsRebuild));
        assert_eq!(t.remove_point(0), Err(DeltaError::NeedsRebuild));
    }

    #[test]
    fn clustered_points_with_near_degeneracies() {
        // Tight clusters plus points on a shared circle: stresses both the
        // exact predicates and the ghost machinery.
        let mut pts = Vec::new();
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(p(a.cos() * 10.0, a.sin() * 10.0));
        }
        for k in 0..8 {
            pts.push(p(1e-7 * k as f64, 2e-7 * (k as f64).powi(2)));
        }
        let t = Triangulation::new(&pts).unwrap();
        assert_delaunay(&t);
        assert_euler(&t);
    }
}
