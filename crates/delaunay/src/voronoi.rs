//! Voronoi cell extraction from the Delaunay triangulation.
//!
//! The Voronoi cell of a site is the convex polygon whose vertices are the
//! circumcenters of the site's incident Delaunay triangles, in rotational
//! order; hull sites additionally own two unbounded edges perpendicular to
//! their hull edges. This module traces those cells directly — `O(deg)`
//! per site — which is both the textbook construction and markedly faster
//! than intersecting bisector half-planes (the fallback used for
//! degenerate inputs).
//!
//! All cells are clipped to a caller-provided rectangle (the SSQ
//! algorithms only ever test cells against bounded regions), and the
//! construction is validated against the half-plane method by the tests.

use ssq_geom::{ConvexPolygon, Point, Rect};

use crate::triangulation::{Triangulation, GHOST};

/// Circumcenter of triangle `(a, b, c)`, or `None` when the triangle is
/// numerically too flat for a finite center (the *exact* orientation can
/// be nonzero while the double-precision denominator underflows).
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let acx = c.x - a.x;
    let acy = c.y - a.y;
    let d = 2.0 * (abx * acy - aby * acx);
    if d == 0.0 || !d.is_finite() {
        return None;
    }
    let ab2 = abx * abx + aby * aby;
    let ac2 = acx * acx + acy * acy;
    let ux = (acy * ab2 - aby * ac2) / d;
    let uy = (abx * ac2 - acx * ab2) / d;
    let cc = Point::new(a.x + ux, a.y + uy);
    cc.is_finite().then_some(cc)
}

/// Computes the Voronoi cell polygons of every site, clipped to `clip`.
///
/// Returns `None` for degenerate triangulations (collinear input) — the
/// caller should fall back to [`crate::DelaunayGraph::voronoi_cell`]'s
/// half-plane construction, which handles those. Individual cells whose
/// circumcenters are numerically unusable are also built by the fallback,
/// signalled with `None` in the per-site vector.
pub fn voronoi_cells(tri: &Triangulation, clip: &Rect) -> Option<Vec<Option<ConvexPolygon>>> {
    if tri.is_degenerate() {
        return None;
    }
    let points = tri.points();
    let n = points.len();

    // One incident (finite) triangle per site, with the site's slot index.
    let mut incident: Vec<(u32, u8)> = vec![(u32::MAX, 0); n];
    for t in 0..tri.slot_count() as u32 {
        if !tri.slot_alive(t) {
            continue;
        }
        let v = tri.slot_verts(t);
        if v[2] == GHOST {
            continue;
        }
        for (k, &vi) in v.iter().enumerate() {
            incident[vi as usize] = (t, k as u8);
        }
    }

    // Scale for the synthetic "far" endpoints of unbounded edges: anything
    // that comfortably exits the clip rectangle.
    let clip_diag = (clip.width() + clip.height()).max(1.0);

    let mut cells: Vec<Option<ConvexPolygon>> = Vec::with_capacity(n);
    'site: for site in 0..n as u32 {
        let (t0, k0) = incident[site as usize];
        if t0 == u32::MAX {
            cells.push(None);
            continue;
        }

        // Rotate clockwise around the site to find the CW-most finite
        // triangle (or detect a full interior loop).
        let mut start = (t0, k0 as usize);
        let mut interior = false;
        {
            let mut cur = start;
            loop {
                // CW neighbour: across edge (site, v[k+1]).
                let nbr = tri.slot_nbr(cur.0, (cur.1 + 2) % 3);
                if tri.slot_verts(nbr)[2] == GHOST {
                    break; // hull site: cur is the CW-most finite triangle
                }
                if nbr == t0 {
                    interior = true;
                    break;
                }
                let k = vertex_index(tri, nbr, site);
                cur = (nbr, k);
                if cur == start {
                    interior = true;
                    break;
                }
            }
            if !interior {
                // Walk again to actually land on the CW-most triangle.
                let mut cur2 = start;
                loop {
                    let nbr = tri.slot_nbr(cur2.0, (cur2.1 + 2) % 3);
                    if tri.slot_verts(nbr)[2] == GHOST {
                        break;
                    }
                    cur2 = (nbr, vertex_index(tri, nbr, site));
                }
                start = cur2;
            }
        }

        // Collect circumcenters rotating counter-clockwise from `start`.
        let mut ccs: Vec<Point> = Vec::with_capacity(8);
        let mut fan: Vec<(u32, usize)> = Vec::with_capacity(8);
        let mut cur = start;
        loop {
            let v = tri.slot_verts(cur.0);
            let Some(cc) = circumcenter(
                points[v[0] as usize],
                points[v[1] as usize],
                points[v[2] as usize],
            ) else {
                cells.push(None); // numerically flat triangle: fallback
                continue 'site;
            };
            ccs.push(cc);
            fan.push(cur);
            // CCW neighbour: across edge (site, v[k+2]).
            let nbr = tri.slot_nbr(cur.0, (cur.1 + 1) % 3);
            if tri.slot_verts(nbr)[2] == GHOST {
                break; // hull site: fan complete
            }
            let k = vertex_index(tri, nbr, site);
            cur = (nbr, k);
            if cur == start {
                break; // interior site: loop closed
            }
        }

        let poly = if interior {
            ConvexPolygon::from_ccw_dirty(ccs, 1e-12)
        } else {
            // Hull site: prepend/append far points along the two unbounded
            // bisector rays. The CW-most triangle's hull edge is
            // (site, v[k+1]); the CCW-most triangle's hull edge is
            // (site, v[k+2]).
            let site_pt = points[site as usize];
            let big = 4.0
                * (clip_diag
                    + ccs
                        .iter()
                        .map(|c| c.distance(clip.center()))
                        .fold(0.0, f64::max));

            let (t_first, k_first) = fan[0];
            let vfirst = tri.slot_verts(t_first);
            let other_first = points[vfirst[(k_first + 1) % 3] as usize];
            let third_first = points[vfirst[(k_first + 2) % 3] as usize];
            let ray_first = outward_ray(site_pt, other_first, third_first);

            // ssq-analyze: allow(no-panic-transitive): fan[0] was indexed just above, so the fan is nonempty
            let (t_last, k_last) = *fan.last().expect("nonempty fan");
            let vlast = tri.slot_verts(t_last);
            let other_last = points[vlast[(k_last + 2) % 3] as usize];
            let third_last = points[vlast[(k_last + 1) % 3] as usize];
            let ray_last = outward_ray(site_pt, other_last, third_last);

            let mut ring: Vec<Point> = Vec::with_capacity(ccs.len() + 2);
            ring.push(ccs[0] + ray_first * big);
            ring.extend(ccs.iter().copied());
            // ssq-analyze: allow(no-panic-transitive): ccs[0] was indexed just above, so ccs is nonempty
            ring.push(*ccs.last().expect("nonempty") + ray_last * big);
            ConvexPolygon::from_ccw_dirty(ring, 1e-12).clip_rect(clip)
        };
        let poly = if interior { poly.clip_rect(clip) } else { poly };
        if poly.is_empty() || !poly.contains(points[site as usize]) {
            // Numerical trouble (e.g. huge circumcenters collapsing the
            // ring): let the caller rebuild this cell by half-planes.
            cells.push(None);
        } else {
            cells.push(Some(poly));
        }
    }
    Some(cells)
}

/// Index of `site` within triangle `t`'s vertex array.
fn vertex_index(tri: &Triangulation, t: u32, site: u32) -> usize {
    tri.slot_verts(t)
        .iter()
        .position(|&v| v == site)
        // ssq-analyze: allow(no-panic-transitive): callers pass triangles incident to the site; a miss is a corrupted triangulation where fail-fast is correct
        .expect("triangle must contain the site")
}

/// Unit direction of the unbounded Voronoi edge dual to hull edge
/// `(site, other)`: perpendicular to the edge, pointing away from the
/// triangle's third vertex (i.e. out of the hull).
fn outward_ray(site: Point, other: Point, third: Point) -> Point {
    let edge = other - site;
    let mut dir = edge.perp();
    let mid = site.midpoint(other);
    if dir.dot(third - mid) > 0.0 {
        dir = -dir;
    }
    dir.normalized().unwrap_or(Point::new(1.0, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelaunayGraph;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next() * 100.0, next() * 100.0)).collect()
    }

    #[test]
    fn circumcenter_equidistant() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(0.0, 6.0));
        let cc = circumcenter(a, b, c).unwrap();
        let (da, db, dc) = (cc.distance(a), cc.distance(b), cc.distance(c));
        assert!((da - db).abs() < 1e-9);
        assert!((da - dc).abs() < 1e-9);
    }

    #[test]
    fn circumcenter_degenerate_is_none() {
        assert!(circumcenter(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)).is_none());
    }

    #[test]
    fn cells_match_halfplane_construction() {
        for seed in [1u64, 7, 42] {
            let pts = pseudorandom(60, seed);
            let tri = Triangulation::new(&pts).unwrap();
            let graph = DelaunayGraph::from_triangulation(&tri);
            let clip = graph.default_clip();
            let fast = voronoi_cells(&tri, &clip).expect("non-degenerate");
            for (i, cell) in fast.iter().enumerate() {
                let slow = graph.voronoi_cell(i as u32, &clip);
                let Some(cell) = cell else {
                    continue; // fallback case, nothing to compare
                };
                assert!(
                    (cell.area() - slow.area()).abs() < 1e-6 * slow.area().max(1.0),
                    "site {i}: area {} vs {}",
                    cell.area(),
                    slow.area()
                );
                // Mutual vertex containment within tolerance.
                for &v in cell.vertices() {
                    assert!(slow.distance(v) < 1e-6, "site {i}: vertex {v:?} escapes");
                }
                for &v in slow.vertices() {
                    assert!(cell.distance(v) < 1e-6, "site {i}: missing region at {v:?}");
                }
            }
        }
    }

    #[test]
    fn cells_on_grid_with_cocircular_quads() {
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let tri = Triangulation::new(&pts).unwrap();
        let graph = DelaunayGraph::from_triangulation(&tri);
        let clip = graph.default_clip();
        let fast = voronoi_cells(&tri, &clip).expect("non-degenerate");
        let mut total = 0.0;
        for (i, cell) in fast.iter().enumerate() {
            let cell = cell
                .clone()
                .unwrap_or_else(|| graph.voronoi_cell(i as u32, &clip));
            assert!(cell.contains(pts[i]));
            total += cell.area();
        }
        assert!(
            (total - clip.area()).abs() < 1e-6 * clip.area(),
            "cells must tile the clip box"
        );
    }

    #[test]
    fn degenerate_input_returns_none() {
        let tri = Triangulation::new(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]).unwrap();
        assert!(voronoi_cells(&tri, &Rect::from_corners(p(-1.0, -1.0), p(3.0, 3.0))).is_none());
    }
}
