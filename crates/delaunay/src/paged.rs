//! A page-access-counting view of the Delaunay adjacency "file".
//!
//! The paper stores the Delaunay adjacency list in a flat file whose pages
//! group points by Hilbert value (§4.2), and reports the R-tree
//! competitors' I/O as "number of accessed nodes" (Fig. 12c/f). To compare
//! VS²'s data accesses on the same footing, [`PagedAdjacency`] assigns each
//! point to a page (Hilbert order, fixed fan-out) and counts a *page
//! access* the first time any point of a page is touched since the counter
//! was reset — i.e. an LRU-∞ (buffer never evicts within one query), the
//! same accounting the R-tree side uses.

use ssq_geom::Point;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::hilbert;

/// Page assignment plus an access counter for a point set.
///
/// The counters use relaxed atomics so a shared index stays `Sync` and can
/// serve queries from many threads at once; under concurrent use the page
/// counts are best-effort (a page touched simultaneously by two threads may
/// be counted twice), which is fine for the paper's single-query I/O
/// accounting the counter exists to reproduce.
pub struct PagedAdjacency {
    /// `page_of[i]` is the page holding point `i`'s adjacency list.
    page_of: Vec<u32>,
    page_count: u32,
    /// Epoch-stamped "page in buffer" marks.
    stamps: Vec<AtomicU32>,
    epoch: AtomicU32,
    accesses: AtomicU64,
}

impl PagedAdjacency {
    /// Lays out `points` into pages of `per_page` entries in Hilbert order.
    ///
    /// `per_page` mirrors the paper's R-tree node capacity (≤ 50 entries
    /// per 1 KB page) so I/O numbers are comparable.
    pub fn new(points: &[Point], per_page: usize) -> PagedAdjacency {
        assert!(per_page > 0, "page capacity must be positive");
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        hilbert::sort_by_hilbert(points, &mut order);
        let mut page_of = vec![0u32; points.len()];
        for (rank, &i) in order.iter().enumerate() {
            page_of[i as usize] = (rank / per_page) as u32;
        }
        let page_count = points.len().div_ceil(per_page) as u32;
        PagedAdjacency {
            page_of,
            page_count,
            stamps: (0..page_count).map(|_| AtomicU32::new(0)).collect(),
            epoch: AtomicU32::new(1),
            accesses: AtomicU64::new(0),
        }
    }

    /// Builds a view from an explicit page assignment, without re-running
    /// the Hilbert layout.
    ///
    /// Delta builds use this to carry the previous generation's layout
    /// forward: surviving points keep their page, inserted points are
    /// assigned the page of a Delaunay neighbour. Any assignment is valid —
    /// pages are an accounting fiction, so the only requirement is
    /// `page_of[i] < page_count` for every point.
    pub fn with_layout(page_of: Vec<u32>, page_count: u32) -> PagedAdjacency {
        assert!(
            page_of.iter().all(|&p| p < page_count),
            "page assignment out of range"
        );
        PagedAdjacency {
            page_of,
            page_count,
            stamps: (0..page_count).map(|_| AtomicU32::new(0)).collect(),
            epoch: AtomicU32::new(1),
            accesses: AtomicU64::new(0),
        }
    }

    /// Total number of pages.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// The page holding point `i`.
    pub fn page_of(&self, i: u32) -> u32 {
        self.page_of[i as usize]
    }

    /// Records an access to point `i`'s adjacency list; counts one page
    /// access the first time the page is touched in the current epoch.
    pub fn touch(&self, i: u32) {
        let page = self.page_of[i as usize] as usize;
        let epoch = self.epoch.load(Ordering::Relaxed);
        if self.stamps[page].swap(epoch, Ordering::Relaxed) != epoch {
            self.accesses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of distinct page accesses since the last reset.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Resets the counter and empties the simulated buffer.
    pub fn reset(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.accesses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 13) as f64, (i / 13) as f64))
            .collect()
    }

    #[test]
    fn page_layout_covers_all_points() {
        let p = pts(103);
        let paged = PagedAdjacency::new(&p, 10);
        assert_eq!(paged.page_count(), 11);
        for i in 0..103u32 {
            assert!(paged.page_of(i) < 11);
        }
    }

    #[test]
    fn touch_counts_distinct_pages_once() {
        let p = pts(40);
        let paged = PagedAdjacency::new(&p, 10);
        paged.touch(0);
        paged.touch(0);
        paged.touch(0);
        assert_eq!(paged.accesses(), 1);
        // Touch every point: exactly page_count accesses.
        for i in 0..40u32 {
            paged.touch(i);
        }
        assert_eq!(paged.accesses(), paged.page_count() as u64);
    }

    #[test]
    fn reset_clears_buffer() {
        let p = pts(20);
        let paged = PagedAdjacency::new(&p, 5);
        paged.touch(3);
        assert_eq!(paged.accesses(), 1);
        paged.reset();
        assert_eq!(paged.accesses(), 0);
        paged.touch(3);
        assert_eq!(paged.accesses(), 1);
    }

    #[test]
    fn hilbert_layout_groups_nearby_points() {
        // Points in a tight cluster should share few pages.
        let mut p: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64 * 0.01, i as f64 * 0.01))
            .collect();
        p.push(Point::new(1000.0, 1000.0));
        let paged = PagedAdjacency::new(&p, 25);
        let far_page = paged.page_of(50);
        let cluster_pages: std::collections::HashSet<u32> =
            (0..50).map(|i| paged.page_of(i)).collect();
        assert!(cluster_pages.len() <= 3);
        // The far point sits in the last page along the curve.
        assert!(far_page >= *cluster_pages.iter().max().unwrap());
    }
}
