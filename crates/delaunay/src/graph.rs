//! The Delaunay graph: adjacency lists, Voronoi cells and greedy walks.
//!
//! VS² (paper §4.2) assumes "the Voronoi neighbors of each data point is
//! known. To be specific, the adjacency list of the Delaunay graph of the
//! points in P is stored in a flat file". [`DelaunayGraph`] is that
//! structure: a compressed sparse row (CSR) adjacency built once from the
//! triangulation, with the two geometric queries the SSQ algorithms need —
//! Voronoi cells (for the Theorem 3/4 pruning tests) and greedy
//! nearest-neighbour walks (to find the traversal's entry point `NN(q₁)`).

use ssq_geom::{ConvexPolygon, HalfPlane, Point, Rect};

use crate::triangulation::{BuildError, Triangulation};

/// The Delaunay graph of a point set.
///
/// For degenerate inputs (fewer than three points, or all points collinear)
/// the graph is the path connecting consecutive points along their common
/// line — exactly the Delaunay graph limit — so every query below still
/// behaves correctly.
pub struct DelaunayGraph {
    points: Vec<Point>,
    /// CSR offsets: neighbours of `i` are `adj[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    adj: Vec<u32>,
    /// MBR of the points, inflated; used as the default Voronoi clip box.
    clip: Rect,
}

impl DelaunayGraph {
    /// Builds the Delaunay graph of `points`.
    pub fn new(points: &[Point]) -> Result<DelaunayGraph, BuildError> {
        let tri = Triangulation::new(points)?;
        Ok(Self::from_triangulation(&tri))
    }

    /// Builds the graph from an existing triangulation.
    pub fn from_triangulation(tri: &Triangulation) -> DelaunayGraph {
        let points = tri.points().to_vec();
        let n = points.len();

        let (offsets, mut adj);
        if tri.is_degenerate() {
            let edges = degenerate_path_edges(&points);
            let mut degree = vec![0u32; n];
            for &(a, b) in &edges {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
            offsets = prefix_sum(&degree);
            adj = vec![0u32; offsets[n] as usize];
            let mut cursor = offsets.clone();
            for &(a, b) in &edges {
                adj[cursor[a as usize] as usize] = b;
                cursor[a as usize] += 1;
                adj[cursor[b as usize] as usize] = a;
                cursor[b as usize] += 1;
            }
        } else {
            // Direct CSR fill: every finite *directed* edge `a → b` occurs
            // exactly once over the alive triangles (the reverse edge lives
            // in the adjacent triangle — a ghost, for hull edges), so two
            // passes over the triangle corners build the adjacency without
            // materializing and sorting a global edge list.
            let mut degree = vec![0u32; n];
            tri.for_each_directed_edge(|a, _| degree[a as usize] += 1);
            offsets = prefix_sum(&degree);
            adj = vec![0u32; offsets[n] as usize];
            let mut cursor = offsets.clone();
            tri.for_each_directed_edge(|a, b| {
                adj[cursor[a as usize] as usize] = b;
                cursor[a as usize] += 1;
            });
        }
        // Sort each neighbour list for determinism and binary search.
        for i in 0..n {
            adj[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        let span = Rect::bounding(points.iter().copied());
        let margin = (span.width().max(span.height())).max(1.0);
        DelaunayGraph {
            points,
            offsets,
            adj,
            clip: span.inflate(margin),
        }
    }

    /// The underlying points, in input order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> Point {
        self.points[i as usize]
    }

    /// The Voronoi (Delaunay) neighbours of point `i`, sorted by index.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.adj[self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize]
    }

    /// Total number of undirected Delaunay edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// The default clipping rectangle for Voronoi cells: the data MBR
    /// inflated by its own larger side (so boundary cells comfortably cover
    /// the data universe).
    pub fn default_clip(&self) -> Rect {
        self.clip
    }

    /// The Voronoi cell of point `i`, clipped to `clip`.
    ///
    /// The cell is computed as the intersection of `clip` with the
    /// bisector half-planes toward each Delaunay neighbour — which equals
    /// the true Voronoi cell intersected with `clip`, because the Voronoi
    /// cell of a point is already the intersection of the bisector
    /// half-planes of its *Delaunay neighbours* alone.
    pub fn voronoi_cell(&self, i: u32, clip: &Rect) -> ConvexPolygon {
        let p = self.point(i);
        let c = clip.corners();
        let mut poly = ConvexPolygon::from_ccw_vertices(vec![c[0], c[1], c[2], c[3]]);
        for &j in self.neighbors(i) {
            poly = poly.clip_halfplane(&HalfPlane::closer_to(p, self.point(j)));
            if poly.is_empty() {
                break;
            }
        }
        poly
    }

    /// The Voronoi cell of point `i` with the default clip box.
    pub fn voronoi_cell_default(&self, i: u32) -> ConvexPolygon {
        self.voronoi_cell(i, &self.clip.clone())
    }

    /// Greedy nearest-neighbour walk: starting from `start`, repeatedly
    /// moves to any neighbour strictly closer to `q`, stopping at a local
    /// (= global, on Delaunay graphs) minimum. Returns the index of the
    /// nearest point to `q` and the number of hops taken.
    ///
    /// Greedy routing provably reaches the point whose Voronoi cell
    /// contains `q` on a Delaunay triangulation (Bose & Morin 2004), which
    /// is exactly the nearest neighbour. This is the `Φ(√|P|)`-step entry
    /// point the paper describes when no index is available (§4.2).
    pub fn greedy_nearest(&self, q: Point, start: u32) -> (u32, usize) {
        let mut cur = start;
        let mut cur_d = self.point(cur).distance_sq(q);
        let mut hops = 0;
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &j in self.neighbors(cur) {
                let d = self.point(j).distance_sq(q);
                if d < best_d {
                    best = j;
                    best_d = d;
                }
            }
            if best == cur {
                return (cur, hops);
            }
            cur = best;
            cur_d = best_d;
            hops += 1;
        }
    }

    /// Exact nearest neighbour of `q` by greedy walk from point 0.
    pub fn nearest(&self, q: Point) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.greedy_nearest(q, 0).0)
    }
}

/// Exclusive prefix sum of `degree`, as CSR offsets.
fn prefix_sum(degree: &[u32]) -> Vec<u32> {
    let mut offsets = vec![0u32; degree.len() + 1];
    for (i, &d) in degree.iter().enumerate() {
        offsets[i + 1] = offsets[i] + d;
    }
    offsets
}

/// Delaunay edges of a degenerate (collinear or tiny) point set: the path
/// connecting consecutive points along the line.
fn degenerate_path_edges(points: &[Point]) -> Vec<(u32, u32)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    // Order by projection onto the dominant direction (fall back to
    // lexicographic order, which equals projection order for collinear
    // sets).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&i, &j| points[i as usize].lex_cmp(&points[j as usize]));
    order
        .windows(2)
        .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn grid(w: usize, h: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..w {
            for j in 0..h {
                pts.push(p(i as f64, j as f64));
            }
        }
        pts
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next() * 100.0, next() * 100.0)).collect()
    }

    #[test]
    fn neighbors_are_symmetric_and_sorted() {
        let g = DelaunayGraph::new(&pseudorandom(60, 7)).unwrap();
        for i in 0..g.len() as u32 {
            let ns = g.neighbors(i);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
            for &j in ns {
                assert!(g.neighbors(j).contains(&i), "symmetry {i} <-> {j}");
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        let g = DelaunayGraph::new(&pseudorandom(80, 99)).unwrap();
        let n = g.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 0;
        while let Some(i) = stack.pop() {
            count += 1;
            for &j in g.neighbors(i) {
                if !seen[j as usize] {
                    seen[j as usize] = true;
                    stack.push(j);
                }
            }
        }
        assert_eq!(count, n, "Delaunay graph must be connected");
    }

    #[test]
    fn voronoi_cell_contains_owner_and_separates() {
        let pts = pseudorandom(40, 3);
        let g = DelaunayGraph::new(&pts).unwrap();
        let clip = g.default_clip();
        for i in 0..g.len() as u32 {
            let cell = g.voronoi_cell(i, &clip);
            assert!(cell.contains(g.point(i)), "cell contains its site");
            // Sample the cell's vertices: they must be (weakly) closest to i.
            for &v in cell.vertices() {
                let di = v.distance(g.point(i));
                for j in 0..g.len() as u32 {
                    assert!(
                        v.distance(g.point(j)) >= di - 1e-7,
                        "cell vertex {v:?} of site {i} closer to {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn voronoi_cells_cover_random_probes() {
        // Brute-force check: the site whose cell contains a probe point is
        // its nearest site.
        let pts = pseudorandom(30, 11);
        let g = DelaunayGraph::new(&pts).unwrap();
        let clip = g.default_clip();
        let probes = pseudorandom(50, 1234);
        for q in probes {
            let nn = (0..g.len() as u32)
                .min_by(|&a, &b| {
                    g.point(a)
                        .distance_sq(q)
                        .total_cmp(&g.point(b).distance_sq(q))
                })
                .unwrap();
            let cell = g.voronoi_cell(nn, &clip);
            assert!(
                cell.contains(q),
                "probe {q:?} must lie in the cell of its nearest site {nn}"
            );
        }
    }

    #[test]
    fn greedy_walk_finds_true_nearest() {
        let pts = pseudorandom(100, 21);
        let g = DelaunayGraph::new(&pts).unwrap();
        let probes = pseudorandom(50, 4321);
        for q in probes {
            let brute = (0..g.len() as u32)
                .min_by(|&a, &b| {
                    g.point(a)
                        .distance_sq(q)
                        .total_cmp(&g.point(b).distance_sq(q))
                })
                .unwrap();
            let (found, _) = g.greedy_nearest(q, 0);
            assert_eq!(
                g.point(found).distance_sq(q),
                g.point(brute).distance_sq(q),
                "greedy walk must find a true nearest neighbour"
            );
        }
    }

    #[test]
    fn grid_interior_degree_is_bounded() {
        let g = DelaunayGraph::new(&grid(5, 5)).unwrap();
        // Every vertex of a Delaunay triangulation of a grid has at most 8
        // neighbours (the 4-neighbourhood plus diagonals).
        for i in 0..g.len() as u32 {
            assert!(g.neighbors(i).len() <= 8);
            assert!(!g.neighbors(i).is_empty());
        }
    }

    #[test]
    fn degenerate_collinear_forms_path() {
        let g = DelaunayGraph::new(&[p(0.0, 0.0), p(2.0, 0.0), p(1.0, 0.0), p(3.0, 0.0)]).unwrap();
        // Path order along the line: 0 - 2 - 1 - 3.
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(1), &[2, 3]);
        assert_eq!(g.neighbors(3), &[1]);
        // NN walks still work.
        assert_eq!(g.nearest(p(2.9, 1.0)), Some(3));
    }

    #[test]
    fn two_points_and_one_point() {
        let g = DelaunayGraph::new(&[p(0.0, 0.0), p(5.0, 5.0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        let g1 = DelaunayGraph::new(&[p(1.0, 1.0)]).unwrap();
        assert!(g1.neighbors(0).is_empty());
        assert_eq!(g1.nearest(p(0.0, 0.0)), Some(0));
        assert_eq!(DelaunayGraph::new(&[]).unwrap().nearest(p(0.0, 0.0)), None);
    }

    #[test]
    fn voronoi_cell_of_isolated_point_is_clip_box() {
        let g = DelaunayGraph::new(&[p(1.0, 1.0)]).unwrap();
        let clip = Rect::from_corners(p(0.0, 0.0), p(2.0, 2.0));
        let cell = g.voronoi_cell(0, &clip);
        assert!((cell.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn voronoi_cells_tile_the_clip_box() {
        // Total cell area must equal the clip-box area (cells partition it).
        let pts = pseudorandom(25, 5);
        let g = DelaunayGraph::new(&pts).unwrap();
        let clip = Rect::from_corners(p(-10.0, -10.0), p(110.0, 110.0));
        let total: f64 = (0..g.len() as u32)
            .map(|i| g.voronoi_cell(i, &clip).area())
            .sum();
        assert!(
            (total - clip.area()).abs() < 1e-6 * clip.area(),
            "cells must tile the box: {total} vs {}",
            clip.area()
        );
    }
}
