//! # ssq-delaunay
//!
//! The Voronoi/Delaunay substrate of the spatial skyline library.
//!
//! The VS² and VCS² algorithms of Sharifzadeh & Shahabi (VLDB 2006) treat
//! the Delaunay graph of the data points as a *roadmap*: starting from the
//! nearest neighbour of a query point they expand outward through Voronoi
//! neighbours in ascending `mindist` order, pruning with the Voronoi-cell
//! tests of Theorems 3 and 4 (paper §4.2, Fig. 7). This crate provides the
//! machinery they need:
//!
//! * [`Triangulation`] — an incremental (Bowyer–Watson) Delaunay
//!   triangulation built on the exact predicates of `ssq-geom`, using a
//!   symbolic *ghost vertex* instead of a super-triangle so hull handling
//!   is exact;
//! * [`DelaunayGraph`] — the CSR adjacency ("the adjacency list of the
//!   Delaunay graph", §4.2) with greedy nearest-neighbour walks;
//! * Voronoi cells ([`DelaunayGraph::voronoi_cell`]) as clipped convex
//!   polygons, obtained by intersecting bisector half-planes of the
//!   Delaunay neighbours;
//! * [`hilbert`] — Hilbert-curve ordering, both for insertion locality and
//!   for the paper's page layout ("points are organized in pages according
//!   to their Hilbert values");
//! * [`paged::PagedAdjacency`] — a page-access-counting view of the
//!   adjacency file, so VS²'s I/O can be accounted like the paper does for
//!   the R-tree.
//!
//! Degenerate inputs (all points collinear, fewer than three points) have
//! no triangulation; [`DelaunayGraph`] still exists for them (a path graph
//! along the line), so every public query keeps working.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod file;
pub mod graph;
pub mod hilbert;
pub mod paged;
pub mod triangulation;
pub mod voronoi;

pub use graph::DelaunayGraph;
pub use triangulation::{BuildError, DeltaError, Triangulation};
