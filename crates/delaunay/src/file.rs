//! The on-disk adjacency "flat file" of §4.2.
//!
//! The paper's VS² setup assumes no R-tree: "the adjacency list of the
//! Delaunay graph of the points in P is stored in a flat file. To
//! preserve locality, points are organized in pages according to their
//! Hilbert values." This module implements that file format for real, so
//! a Delaunay graph can be persisted once and reopened without
//! re-triangulating:
//!
//! ```text
//! header:   magic "SSQDG1\0\0" · u64 point count · u64 page size ·
//!           u64 page count · u64 directory offset
//! pages:    fixed-size pages; each holds whole records
//!           record = u32 point id · f64 x · f64 y ·
//!                    u32 degree · degree × u32 neighbour ids
//! directory: page count × (u64 file offset, u32 record count)
//!            then point count × u32 (page index of each point id)
//! ```
//!
//! All integers are little-endian. Records never span pages (a record
//! larger than the page payload gets a page of its own — degrees above
//! ~120 cannot occur in a Delaunay graph of distinct points in practice,
//! but the format stays correct regardless).

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use ssq_geom::Point;

use crate::graph::DelaunayGraph;
use crate::hilbert;

const MAGIC: &[u8; 8] = b"SSQDG1\0\0";

/// Default page size in bytes, matching the paper's 1 KB pages (§7).
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Errors from reading/writing adjacency files.
#[derive(Debug)]
pub enum FileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an adjacency file or is corrupt.
    Format(String),
}

impl From<io::Error> for FileError {
    fn from(e: io::Error) -> Self {
        FileError::Io(e)
    }
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Io(e) => write!(f, "I/O error: {e}"),
            FileError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for FileError {}

/// Writes the graph's adjacency lists to `path` in Hilbert-paged layout.
///
/// Returns the number of pages written.
pub fn write_adjacency_file(
    graph: &DelaunayGraph,
    path: &Path,
    page_size: usize,
) -> Result<u64, FileError> {
    assert!(page_size >= 64, "page size too small to hold any record");
    let n = graph.len();
    let points = graph.points();

    // Hilbert layout of the records.
    let mut order: Vec<u32> = (0..n as u32).collect();
    hilbert::sort_by_hilbert(points, &mut order);

    // Assign records to pages greedily in Hilbert order.
    let record_len = |i: u32| 4 + 8 + 8 + 4 + 4 * graph.neighbors(i).len();
    let mut pages: Vec<Vec<u32>> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let mut used = 0usize;
    for &i in &order {
        let len = record_len(i);
        if used + len > page_size && !current.is_empty() {
            pages.push(std::mem::take(&mut current));
            used = 0;
        }
        current.push(i);
        used += len;
    }
    if !current.is_empty() {
        pages.push(current);
    }

    let mut w = BufWriter::new(File::create(path)?);
    // Header (directory offset patched at the end).
    w.write_all(MAGIC)?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&(page_size as u64).to_le_bytes())?;
    w.write_all(&(pages.len() as u64).to_le_bytes())?;
    let dir_offset_pos = 8 + 8 + 8 + 8;
    w.write_all(&0u64.to_le_bytes())?; // placeholder

    // Pages.
    let mut page_offsets: Vec<(u64, u32)> = Vec::with_capacity(pages.len());
    let mut page_of = vec![0u32; n];
    let mut offset = dir_offset_pos as u64 + 8;
    for (pidx, page) in pages.iter().enumerate() {
        page_offsets.push((offset, page.len() as u32));
        let mut buf: Vec<u8> = Vec::with_capacity(page_size);
        for &i in page {
            page_of[i as usize] = pidx as u32;
            buf.extend_from_slice(&i.to_le_bytes());
            let p = points[i as usize];
            buf.extend_from_slice(&p.x.to_le_bytes());
            buf.extend_from_slice(&p.y.to_le_bytes());
            let ns = graph.neighbors(i);
            buf.extend_from_slice(&(ns.len() as u32).to_le_bytes());
            for &nb in ns {
                buf.extend_from_slice(&nb.to_le_bytes());
            }
        }
        buf.resize(page_size.max(buf.len()), 0); // pad to page size
        offset += buf.len() as u64;
        w.write_all(&buf)?;
    }

    // Directory.
    let dir_offset = offset;
    for &(off, count) in &page_offsets {
        w.write_all(&off.to_le_bytes())?;
        w.write_all(&count.to_le_bytes())?;
    }
    for &pg in &page_of {
        w.write_all(&pg.to_le_bytes())?;
    }
    // Patch the header.
    w.flush()?;
    let mut f = w.into_inner().map_err(|e| FileError::Io(e.into_error()))?;
    f.seek(SeekFrom::Start(dir_offset_pos as u64))?;
    f.write_all(&dir_offset.to_le_bytes())?;
    f.sync_all()?;
    Ok(pages.len() as u64)
}

/// A reader over an adjacency file that fetches whole pages on demand and
/// counts page reads — the physical realization of the I/O model the
/// in-memory [`crate::paged::PagedAdjacency`] simulates.
pub struct AdjacencyFile {
    file: File,
    n: usize,
    /// `(offset, record count)` per page.
    directory: Vec<(u64, u32)>,
    /// Page index per point id.
    page_of: Vec<u32>,
    /// File offset where the directory begins (end of the page area).
    dir_offset: u64,
    /// Cached pages (page index -> parsed records), an unbounded buffer
    /// like the in-memory model.
    cache: std::collections::HashMap<u32, Vec<Record>>,
    reads: u64,
}

/// One parsed adjacency record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Point id.
    pub id: u32,
    /// Point location.
    pub location: Point,
    /// Voronoi neighbour ids.
    pub neighbors: Vec<u32>,
}

impl AdjacencyFile {
    /// Opens an adjacency file and reads its header and directory.
    pub fn open(path: &Path) -> Result<AdjacencyFile, FileError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; 8 + 8 + 8 + 8 + 8];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(FileError::Format("bad magic".into()));
        }
        let read_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
        let n = read_u64(&header[8..16]) as usize;
        let page_size = read_u64(&header[16..24]) as usize;
        let page_count = read_u64(&header[24..32]) as usize;
        let dir_offset = read_u64(&header[32..40]);

        file.seek(SeekFrom::Start(dir_offset))?;
        let mut dir_buf = vec![0u8; page_count * 12 + n * 4];
        file.read_exact(&mut dir_buf)?;
        let mut directory = Vec::with_capacity(page_count);
        for k in 0..page_count {
            let off = read_u64(&dir_buf[k * 12..k * 12 + 8]);
            let count = u32::from_le_bytes(
                dir_buf[k * 12 + 8..k * 12 + 12]
                    .try_into()
                    .expect("4-byte slice"),
            );
            directory.push((off, count));
        }
        let base = page_count * 12;
        let mut page_of = Vec::with_capacity(n);
        for k in 0..n {
            page_of.push(u32::from_le_bytes(
                dir_buf[base + k * 4..base + k * 4 + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ));
        }
        let _ = page_size;
        Ok(AdjacencyFile {
            file,
            n,
            directory,
            page_of,
            dir_offset,
            cache: std::collections::HashMap::new(),
            reads: 0,
        })
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the file stores no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.directory.len()
    }

    /// Page reads performed since opening (or the last
    /// [`AdjacencyFile::reset_reads`]).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Resets the read counter and drops the page cache.
    pub fn reset_reads(&mut self) {
        self.reads = 0;
        self.cache.clear();
    }

    /// Fetches the record of point `id`, reading (and caching) its page.
    pub fn record(&mut self, id: u32) -> Result<Record, FileError> {
        if id as usize >= self.n {
            return Err(FileError::Format(format!("point id {id} out of range")));
        }
        let page = self.page_of[id as usize];
        if !self.cache.contains_key(&page) {
            let records = self.read_page(page)?;
            self.cache.insert(page, records);
            self.reads += 1;
        }
        self.cache[&page]
            .iter()
            .find(|r| r.id == id)
            .cloned()
            .ok_or_else(|| FileError::Format(format!("record {id} missing from its page")))
    }

    fn read_page(&mut self, page: u32) -> Result<Vec<Record>, FileError> {
        let (offset, count) = self.directory[page as usize];
        // Page byte length: up to the next page's offset (an oversized
        // record gets a page longer than page_size); the last page ends
        // where the directory begins.
        let end = self
            .directory
            .get(page as usize + 1)
            .map(|&(off, _)| off)
            .unwrap_or(self.dir_offset);
        let len = (end - offset) as usize;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let got = self.file.read(&mut buf)?;
        let buf = &buf[..got];
        let mut records = Vec::with_capacity(count as usize);
        let mut pos = 0usize;
        let take_u32 = |b: &[u8], pos: usize| -> u32 {
            u32::from_le_bytes(b[pos..pos + 4].try_into().expect("4-byte slice"))
        };
        let take_f64 = |b: &[u8], pos: usize| -> f64 {
            f64::from_le_bytes(b[pos..pos + 8].try_into().expect("8-byte slice"))
        };
        for _ in 0..count {
            if pos + 24 > buf.len() {
                return Err(FileError::Format("truncated page".into()));
            }
            let id = take_u32(buf, pos);
            let x = take_f64(buf, pos + 4);
            let y = take_f64(buf, pos + 12);
            let degree = take_u32(buf, pos + 20) as usize;
            pos += 24;
            if pos + 4 * degree > buf.len() {
                return Err(FileError::Format("truncated record".into()));
            }
            let mut neighbors = Vec::with_capacity(degree);
            for k in 0..degree {
                neighbors.push(take_u32(buf, pos + 4 * k));
            }
            pos += 4 * degree;
            records.push(Record {
                id,
                location: Point::new(x, y),
                neighbors,
            });
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, seed: u64) -> DelaunayGraph {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        DelaunayGraph::new(&pts).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ssq_adj_{name}_{}.bin", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = graph(150, 7);
        let path = tmp("roundtrip");
        let pages = write_adjacency_file(&g, &path, DEFAULT_PAGE_SIZE).unwrap();
        assert!(pages >= 1);
        let mut f = AdjacencyFile::open(&path).unwrap();
        assert_eq!(f.len(), 150);
        for i in 0..150u32 {
            let r = f.record(i).unwrap();
            assert_eq!(r.id, i);
            assert_eq!(r.location, g.point(i));
            assert_eq!(r.neighbors, g.neighbors(i));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_reads_are_counted_once_per_page() {
        let g = graph(200, 9);
        let path = tmp("reads");
        write_adjacency_file(&g, &path, DEFAULT_PAGE_SIZE).unwrap();
        let mut f = AdjacencyFile::open(&path).unwrap();
        // Reading the same record repeatedly costs one page read.
        f.record(5).unwrap();
        f.record(5).unwrap();
        f.record(5).unwrap();
        assert_eq!(f.reads(), 1);
        // Reading everything costs at most page_count reads.
        for i in 0..200u32 {
            f.record(i).unwrap();
        }
        assert_eq!(f.reads() as usize, f.page_count());
        f.reset_reads();
        assert_eq!(f.reads(), 0);
    }

    #[test]
    fn hilbert_layout_localizes_nearby_points() {
        // Points in one tight cluster should occupy few pages relative to
        // scattered ones.
        let mut pts: Vec<Point> = (0..100)
            .map(|i| Point::new(0.001 * i as f64, 0.001 * i as f64))
            .collect();
        pts.extend(
            (0..100).map(|i| Point::new(50.0 + (i % 10) as f64 * 7.0, (i / 10) as f64 * 9.0)),
        );
        let g = DelaunayGraph::new(&pts).unwrap();
        let path = tmp("locality");
        write_adjacency_file(&g, &path, DEFAULT_PAGE_SIZE).unwrap();
        let mut f = AdjacencyFile::open(&path).unwrap();
        for i in 0..100u32 {
            f.record(i).unwrap();
        }
        let cluster_reads = f.reads();
        assert!(
            (cluster_reads as usize) < f.page_count(),
            "cluster should not touch every page"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, [0x55u8; 64]).unwrap();
        assert!(matches!(
            AdjacencyFile::open(&path),
            Err(FileError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_id_is_rejected() {
        let g = graph(20, 3);
        let path = tmp("range");
        write_adjacency_file(&g, &path, DEFAULT_PAGE_SIZE).unwrap();
        let mut f = AdjacencyFile::open(&path).unwrap();
        assert!(f.record(20).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_page_size_still_roundtrips() {
        // Pages that fit one record each.
        let g = graph(30, 5);
        let path = tmp("tinypages");
        write_adjacency_file(&g, &path, 64).unwrap();
        let mut f = AdjacencyFile::open(&path).unwrap();
        for i in 0..30u32 {
            let r = f.record(i).unwrap();
            assert_eq!(r.neighbors, g.neighbors(i));
        }
        std::fs::remove_file(&path).ok();
    }
}
