//! Randomized property tests for the Delaunay/Voronoi substrate
//! (deterministic, hermetic: cases come from the in-repo `ssq_rng`
//! generator, so failures replay exactly by case number).

use ssq_delaunay::{DelaunayGraph, Triangulation};
use ssq_geom::predicates::incircle_sign;
use ssq_geom::Point;
use ssq_rng::Xoshiro256;

fn distinct_points(rng: &mut Xoshiro256, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + rng.range_usize(hi - lo);
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.range_f64(-50.0, 50.0), rng.range_f64(-50.0, 50.0)))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

/// Low-entropy points on a coarse grid: maximal stress for the exact
/// predicates (many collinear and cocircular subsets).
fn grid_points(rng: &mut Xoshiro256, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + rng.range_usize(hi - lo);
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.range_usize(8) as f64, rng.range_usize(8) as f64))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

fn assert_delaunay(t: &Triangulation) {
    t.check_invariants();
    let pts = t.points();
    for tri in t.triangles() {
        let (a, b, c) = (
            pts[tri[0] as usize],
            pts[tri[1] as usize],
            pts[tri[2] as usize],
        );
        for (i, &d) in pts.iter().enumerate() {
            if tri.contains(&(i as u32)) {
                continue;
            }
            assert!(
                incircle_sign(a, b, c, d) <= 0,
                "empty-circumcircle violated by point {i}"
            );
        }
    }
}

#[test]
fn triangulation_is_always_delaunay() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE01);
    for _ in 0..64 {
        let points = distinct_points(&mut rng, 1, 60);
        let t = Triangulation::new(&points).unwrap();
        assert_delaunay(&t);
    }
}

#[test]
fn degenerate_grids_are_delaunay() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE02);
    for _ in 0..64 {
        let points = grid_points(&mut rng, 3, 30);
        let t = Triangulation::new(&points).unwrap();
        assert_delaunay(&t);
    }
}

#[test]
fn graph_is_connected_and_symmetric() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE03);
    for case in 0..64 {
        let points = distinct_points(&mut rng, 1, 50);
        let g = DelaunayGraph::new(&points).unwrap();
        let n = g.len();
        if n < 2 {
            continue;
        }
        // Symmetry.
        for i in 0..n as u32 {
            for &j in g.neighbors(i) {
                assert!(g.neighbors(j).contains(&i), "case {case}");
            }
        }
        // Connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 0;
        while let Some(i) = stack.pop() {
            count += 1;
            for &j in g.neighbors(i) {
                if !seen[j as usize] {
                    seen[j as usize] = true;
                    stack.push(j);
                }
            }
        }
        assert_eq!(count, n, "case {case}");
    }
}

#[test]
fn greedy_walk_always_finds_nearest() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE04);
    for case in 0..64 {
        let points = distinct_points(&mut rng, 1, 40);
        let q = Point::new(rng.range_f64(-60.0, 60.0), rng.range_f64(-60.0, 60.0));
        let g = DelaunayGraph::new(&points).unwrap();
        if g.is_empty() {
            continue;
        }
        let (found, _) = g.greedy_nearest(q, 0);
        let best = (0..g.len() as u32)
            .map(|i| g.point(i).distance_sq(q))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(g.point(found).distance_sq(q), best, "case {case}");
    }
}

#[test]
fn voronoi_cell_separation() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE05);
    for case in 0..64 {
        let points = distinct_points(&mut rng, 1, 25);
        let g = DelaunayGraph::new(&points).unwrap();
        if g.len() < 2 {
            continue;
        }
        let clip = g.default_clip();
        for i in 0..g.len() as u32 {
            let cell = g.voronoi_cell(i, &clip);
            assert!(cell.contains(g.point(i)), "case {case}");
            let centroid = cell.centroid();
            // The cell centroid's nearest site is its owner (ties possible
            // only in degenerate symmetric cases; allow epsilon).
            let d_own = centroid.distance(g.point(i));
            for j in 0..g.len() as u32 {
                assert!(centroid.distance(g.point(j)) >= d_own - 1e-7, "case {case}");
            }
        }
    }
}

#[test]
fn edges_match_cell_adjacency_count() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE06);
    for case in 0..64 {
        // Handshake: sum of degrees = 2 * edge count.
        let points = distinct_points(&mut rng, 1, 30);
        let g = DelaunayGraph::new(&points).unwrap();
        let degree_sum: usize = (0..g.len() as u32).map(|i| g.neighbors(i).len()).sum();
        assert_eq!(degree_sum, 2 * g.edge_count(), "case {case}");
    }
}
