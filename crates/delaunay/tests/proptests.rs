//! Property-based tests for the Delaunay/Voronoi substrate.

use proptest::prelude::*;
use ssq_delaunay::{DelaunayGraph, Triangulation};
use ssq_geom::predicates::incircle_sign;
use ssq_geom::Point;

fn distinct_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..max).prop_map(|v| {
        let mut pts: Vec<Point> = v.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        pts.sort_by(Point::lex_cmp);
        pts.dedup();
        pts
    })
}

/// Low-entropy points on a coarse grid: maximal stress for the exact
/// predicates (many collinear and cocircular subsets).
fn grid_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0i32..8, 0i32..8), 3..max).prop_map(|v| {
        let mut pts: Vec<Point> = v
            .into_iter()
            .map(|(x, y)| Point::new(x as f64, y as f64))
            .collect();
        pts.sort_by(Point::lex_cmp);
        pts.dedup();
        pts
    })
}

fn assert_delaunay(t: &Triangulation) {
    t.check_invariants();
    let pts = t.points();
    for tri in t.triangles() {
        let (a, b, c) = (
            pts[tri[0] as usize],
            pts[tri[1] as usize],
            pts[tri[2] as usize],
        );
        for (i, &d) in pts.iter().enumerate() {
            if tri.contains(&(i as u32)) {
                continue;
            }
            assert!(
                incircle_sign(a, b, c, d) <= 0,
                "empty-circumcircle violated by point {i}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triangulation_is_always_delaunay(points in distinct_points(60)) {
        let t = Triangulation::new(&points).unwrap();
        assert_delaunay(&t);
    }

    #[test]
    fn degenerate_grids_are_delaunay(points in grid_points(30)) {
        let t = Triangulation::new(&points).unwrap();
        assert_delaunay(&t);
    }

    #[test]
    fn graph_is_connected_and_symmetric(points in distinct_points(50)) {
        let g = DelaunayGraph::new(&points).unwrap();
        let n = g.len();
        prop_assume!(n >= 2);
        // Symmetry.
        for i in 0..n as u32 {
            for &j in g.neighbors(i) {
                prop_assert!(g.neighbors(j).contains(&i));
            }
        }
        // Connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 0;
        while let Some(i) = stack.pop() {
            count += 1;
            for &j in g.neighbors(i) {
                if !seen[j as usize] {
                    seen[j as usize] = true;
                    stack.push(j);
                }
            }
        }
        prop_assert_eq!(count, n);
    }

    #[test]
    fn greedy_walk_always_finds_nearest(points in distinct_points(40), qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let g = DelaunayGraph::new(&points).unwrap();
        prop_assume!(!g.is_empty());
        let q = Point::new(qx, qy);
        let (found, _) = g.greedy_nearest(q, 0);
        let best = (0..g.len() as u32)
            .map(|i| g.point(i).distance_sq(q))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(g.point(found).distance_sq(q), best);
    }

    #[test]
    fn voronoi_cell_separation(points in distinct_points(25)) {
        let g = DelaunayGraph::new(&points).unwrap();
        prop_assume!(g.len() >= 2);
        let clip = g.default_clip();
        for i in 0..g.len() as u32 {
            let cell = g.voronoi_cell(i, &clip);
            prop_assert!(cell.contains(g.point(i)));
            let centroid = cell.centroid();
            // The cell centroid's nearest site is its owner (ties possible
            // only in degenerate symmetric cases; allow epsilon).
            let d_own = centroid.distance(g.point(i));
            for j in 0..g.len() as u32 {
                prop_assert!(centroid.distance(g.point(j)) >= d_own - 1e-7);
            }
        }
    }

    #[test]
    fn edges_match_cell_adjacency_count(points in distinct_points(30)) {
        // Handshake: sum of degrees = 2 * edge count.
        let g = DelaunayGraph::new(&points).unwrap();
        let degree_sum: usize = (0..g.len() as u32).map(|i| g.neighbors(i).len()).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }
}
