//! Property test for the union lemma the whole crate rests on:
//! for *any* partition of *any* point set,
//! `merge(skyline(P_1), …, skyline(P_k)) == skyline(P_1 ∪ … ∪ P_k)`.
//!
//! Partitions here are adversarial — uniformly random assignment, not
//! spatial — so the lemma is exercised far outside what the grid /
//! kd-split partitioners would ever produce (interleaved parts, empty
//! parts, singleton parts). Deterministic via the in-repo `ssq-rng`.

use ssq_core::{naive_full, QueryContext, QueryStats};
use ssq_geom::Point;
use ssq_rng::Xoshiro256;
use ssq_shard::merge_candidates;

fn random_points(rng: &mut Xoshiro256, n: usize) -> Vec<Point> {
    let mut pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.f64() * 100.0, rng.f64() * 100.0))
        .collect();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    pts
}

#[test]
fn merged_partition_skylines_equal_the_union_skyline() {
    let mut rng = Xoshiro256::seed_from_u64(0x5AD0);
    for case in 0..60 {
        let n = 2 + rng.range_usize(199);
        let data = random_points(&mut rng, n);
        let k = 1 + rng.range_usize(9);
        let m = 1 + rng.range_usize(6);
        let q: Vec<Point> = (0..m)
            .map(|_| Point::new(rng.f64() * 100.0, rng.f64() * 100.0))
            .collect();
        let ctx = QueryContext::new(&q);

        // Uniformly random assignment of points to k parts (some parts
        // may come out empty — the lemma must hold regardless).
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); k];
        for i in 0..data.len() {
            parts[rng.range_usize(k)].push(i as u32);
        }

        // Per-part skylines, remapped to global ids.
        let mut candidates: Vec<(u32, Point)> = Vec::new();
        for ids in parts.iter().filter(|ids| !ids.is_empty()) {
            let pts: Vec<Point> = ids.iter().map(|&i| data[i as usize]).collect();
            let local = naive_full(&pts, &ctx).skyline;
            candidates.extend(local.iter().map(|&l| (ids[l as usize], pts[l as usize])));
        }

        let mut stats = QueryStats::default();
        let merged = merge_candidates(&ctx, &candidates, &mut stats);
        let want = naive_full(&data, &ctx).skyline;
        assert_eq!(
            merged, want,
            "case {case}: n={n} k={k} |Q|={m} — merged partition skylines diverged"
        );
    }
}

#[test]
fn merge_is_idempotent_on_a_skyline() {
    // Merging an already-exact skyline with itself must change nothing:
    // duplicates tie on every component and ties never dominate — but
    // they would *duplicate* ids if the merge did not key by id, so pass
    // each id once and check set equality survives a double merge.
    let mut rng = Xoshiro256::seed_from_u64(0x5AD1);
    let data = random_points(&mut rng, 150);
    let q = vec![
        Point::new(20.0, 30.0),
        Point::new(70.0, 40.0),
        Point::new(50.0, 80.0),
    ];
    let ctx = QueryContext::new(&q);
    let want = naive_full(&data, &ctx).skyline;
    let candidates: Vec<(u32, Point)> = want.iter().map(|&i| (i, data[i as usize])).collect();
    let mut stats = QueryStats::default();
    let once = merge_candidates(&ctx, &candidates, &mut stats);
    assert_eq!(once, want);
    let twice = merge_candidates(&ctx, &candidates, &mut stats);
    assert_eq!(twice, want);
}
