//! # ssq-shard
//!
//! Sharded serving for spatial skyline queries: one
//! [`Engine`](ssq_engine::Engine) per spatial shard behind a router
//! that prunes, fans out, and merges — turning the PR-1 single-snapshot
//! engine into a horizontally partitioned service while keeping answers
//! *exactly* equal to the single-engine (and naive) oracle.
//!
//! Three ideas carry the whole crate:
//!
//! * **Union lemma** ([`merge`]) — a point dominated within its shard is
//!   dominated in the union, so the global skyline is a subset of the
//!   union of per-shard skylines; a final dominance filter over those
//!   candidates is exact.
//! * **Shard pruning bound** ([`prune`]) — the component-wise
//!   `mindist(rect, q_i)` vector lower-bounds every distance vector a
//!   shard can produce; a known point dominating that bound dominates
//!   the whole shard, which is then skipped unqueried (the
//!   shard-granular form of the paper's Lemma 5/6 visible-region
//!   pruning).
//! * **Spatial partitioning** ([`partition()`]) — grid and kd-split
//!   policies over the dataset's bounding rect, each shard carrying the
//!   tight MBR of its points so the bound bites as hard as possible.
//!
//! ```
//! use ssq_geom::Point;
//! use ssq_shard::{PartitionPolicy, ShardConfig, ShardedEngine};
//!
//! let data: Vec<Point> = (0..300)
//!     .map(|i| Point::new((i % 17) as f64, (i / 17) as f64 + 0.01 * i as f64))
//!     .collect();
//! let engine = ShardedEngine::new(
//!     &data,
//!     ShardConfig::default()
//!         .with_shards(4)
//!         .with_policy(PartitionPolicy::Grid),
//! )
//! .unwrap();
//! let response = engine
//!     .query(&[Point::new(2.0, 3.0), Point::new(8.0, 5.0), Point::new(5.0, 9.0)])
//!     .unwrap();
//! assert!(!response.skyline.is_empty());
//! assert_eq!(response.shards_queried + response.shards_pruned, engine.shard_count());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod merge;
pub mod metrics;
pub mod partition;
pub mod prune;
pub mod router;

pub use merge::merge_candidates;
pub use metrics::{ShardMetrics, ShardedMetricsSnapshot};
pub use partition::{partition, PartitionPolicy, ShardSpec};
pub use prune::{dominates_rect, rect_lower_bounds};
pub use router::{
    FleetIngestReport, ShardConfig, ShardError, ShardInfo, ShardedEngine, ShardedResponse,
};
