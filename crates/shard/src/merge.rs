//! Cross-shard skyline merge.
//!
//! Correctness rests on the union lemma: a point dominated within its
//! own shard is dominated in the union, so
//! `skyline(P_1 ∪ … ∪ P_k) ⊆ skyline(P_1) ∪ … ∪ skyline(P_k)`.
//! The merge therefore only has to run a dominance filter over the
//! per-shard skylines (the *candidates*), never the full dataset.
//!
//! The filter exploits a standard trick: dominance implies a strictly
//! smaller distance *sum*, so after sorting candidates by
//! `sum_i d(p, q_i)` every possible dominator of a candidate precedes
//! it, and one forward sweep suffices — no back-substitution pass.

use ssq_core::{query::dominates, DistanceScratch, QueryContext, QueryStats};
use ssq_geom::Point;

/// Reduces per-shard skyline candidates `(global_id, location)` to the
/// exact skyline of their union w.r.t. `ctx`, returning ascending global
/// ids. Dominance tests are counted into `stats`.
pub fn merge_candidates(
    ctx: &QueryContext,
    candidates: &[(u32, Point)],
    stats: &mut QueryStats,
) -> Vec<u32> {
    // Distance vectors to CHv(Q) once per candidate, plus the sum key.
    let mut scored: Vec<(f64, u32, Vec<f64>)> = candidates
        .iter()
        .map(|&(id, p)| {
            let v = ctx.dist_vector(p, stats);
            (v.iter().sum::<f64>(), id, v)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    'next: for (_, id, v) in scored {
        for (_, kept) in &skyline {
            stats.dominance_checks += 1;
            if dominates(kept, &v) {
                continue 'next;
            }
        }
        skyline.push((id, v));
    }
    let mut ids: Vec<u32> = skyline.into_iter().map(|(id, _)| id).collect();
    ids.sort_unstable();
    ids
}

/// [`merge_candidates`] through a scratch arena: candidate vectors live as
/// **squared**-distance rows (the dominance relation is unchanged under
/// squaring — see [`ssq_geom::kernel`]) and candidates inside `CH(Q)` skip
/// their dominance checks outright (Theorem 1), so the steady-state merge
/// allocates nothing beyond arena growth and the returned id vector.
pub fn merge_candidates_with(
    ctx: &QueryContext,
    candidates: &[(u32, Point)],
    stats: &mut QueryStats,
    scratch: &mut DistanceScratch,
) -> Vec<u32> {
    let anchors = ctx.anchors();
    scratch.begin(anchors.len());
    for &(id, p) in candidates {
        scratch.push_row(id, ctx.hull().contains(p), p, anchors);
    }
    stats.distance_computations += (candidates.len() * anchors.len()) as u64;
    let ids = scratch.resolve(stats).to_vec();
    stats.allocations += scratch.take_allocations();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_core::naive_full;

    fn cloud(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    (i % 23) as f64 + 2e-4 * i as f64,
                    (i / 23) as f64 + 7e-5 * i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn merging_all_points_reproduces_the_skyline() {
        let data = cloud(300);
        let q = vec![
            Point::new(4.0, 5.0),
            Point::new(12.0, 2.0),
            Point::new(8.0, 9.0),
        ];
        let ctx = QueryContext::new(&q);
        let candidates: Vec<(u32, Point)> = data
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        let mut stats = QueryStats::default();
        let got = merge_candidates(&ctx, &candidates, &mut stats);
        assert_eq!(got, naive_full(&data, &ctx).skyline);
        assert!(stats.dominance_checks > 0);
    }

    #[test]
    fn merge_of_partition_skylines_is_the_union_skyline() {
        let data = cloud(240);
        let q = vec![Point::new(3.0, 3.0), Point::new(15.0, 6.0)];
        let ctx = QueryContext::new(&q);
        // Split round-robin into 3 parts, take each part's skyline.
        let mut candidates = Vec::new();
        for r in 0..3usize {
            let ids: Vec<u32> = (0..data.len() as u32)
                .filter(|i| *i as usize % 3 == r)
                .collect();
            let pts: Vec<Point> = ids.iter().map(|&i| data[i as usize]).collect();
            let local = naive_full(&pts, &ctx).skyline;
            candidates.extend(local.iter().map(|&l| (ids[l as usize], pts[l as usize])));
        }
        let mut stats = QueryStats::default();
        let got = merge_candidates(&ctx, &candidates, &mut stats);
        assert_eq!(got, naive_full(&data, &ctx).skyline);
    }

    #[test]
    fn empty_candidates_merge_to_empty() {
        let q = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let mut stats = QueryStats::default();
        assert!(merge_candidates(&QueryContext::new(&q), &[], &mut stats).is_empty());
        let mut scratch = DistanceScratch::new();
        assert!(
            merge_candidates_with(&QueryContext::new(&q), &[], &mut stats, &mut scratch).is_empty()
        );
    }

    #[test]
    fn kernel_merge_matches_the_scalar_merge() {
        let data = cloud(300);
        let mut scratch = DistanceScratch::new();
        for trial in 0..6u32 {
            let q = vec![
                Point::new(2.0 + trial as f64, 5.0),
                Point::new(12.0, 2.0 + trial as f64),
                Point::new(8.0, 9.0),
            ];
            let ctx = QueryContext::new(&q);
            let candidates: Vec<(u32, Point)> = data
                .iter()
                .enumerate()
                .map(|(i, &p)| (i as u32, p))
                .collect();
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let scalar = merge_candidates(&ctx, &candidates, &mut s1);
            let kernel = merge_candidates_with(&ctx, &candidates, &mut s2, &mut scratch);
            assert_eq!(scalar, kernel, "trial {trial}");
            if trial > 0 {
                assert!(s2.allocations <= s1.allocations, "trial {trial}");
            }
        }
    }
}
