//! The sharded engine: partition, route, prune, fan out, merge.
//!
//! [`ShardedEngine::new`] partitions the dataset under a
//! [`PartitionPolicy`] and builds one full
//! [`Engine`] (indexes, worker pool, cache) per shard. A query then
//! goes through four steps:
//!
//! 1. **Bound** — compute each shard rect's lower-bound distance vector
//!    to `CHv(Q)` ([`rect_lower_bounds`]).
//! 2. **Seed** — query the *primary* shard (smallest lower-bound sum,
//!    i.e. the shard the query sits in or nearest to) synchronously;
//!    its skyline points are real, so their distance vectors become
//!    pruning ammunition.
//! 3. **Fan out** — every remaining shard whose bound is dominated by a
//!    seed vector is skipped ([`dominates_rect`]);
//!    the rest are queried concurrently through their engines' tickets,
//!    bounded by [`ShardConfig::shard_timeout`] when set.
//! 4. **Merge** — per-shard skylines, remapped to global ids, pass
//!    through the exact dominance filter
//!    ([`merge_candidates`]).
//!
//! Pruning never affects the answer (the bound is sound — see
//! [`prune`](crate::prune)); it only avoids work, which the metrics
//! make observable.

use crate::merge::merge_candidates;
use crate::metrics::{ShardMetrics, ShardedMetricsSnapshot};
use crate::partition::{partition, PartitionPolicy, ShardSpec};
use crate::prune::{dominates_rect, rect_lower_bounds};
use ssq_core::{QueryContext, QueryStats};
use ssq_engine::{Engine, EngineConfig, EngineError, QueryRequest};
use ssq_geom::{Point, Rect};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ShardedEngine::new`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Target shard count (the partitioner may return fewer on tiny
    /// datasets; must be nonzero).
    pub shards: usize,
    /// How the dataset is cut into shards.
    pub policy: PartitionPolicy,
    /// Per-shard engine configuration (workers, cache, queue).
    pub engine: EngineConfig,
    /// Upper bound on waiting for any one shard's sub-query; `None`
    /// waits indefinitely. On expiry the query fails with
    /// [`ShardError::Timeout`] instead of wedging the router.
    pub shard_timeout: Option<Duration>,
    /// Whether the dominance bound may skip shards (on by default;
    /// turning it off forces full fan-out, useful for A/B measurement).
    pub prune: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            policy: PartitionPolicy::Grid,
            engine: EngineConfig::default(),
            shard_timeout: None,
            prune: true,
        }
    }
}

impl ShardConfig {
    /// This config with exactly `shards` target shards.
    pub fn with_shards(mut self, shards: usize) -> ShardConfig {
        self.shards = shards;
        self
    }

    /// This config with partition policy `policy`.
    pub fn with_policy(mut self, policy: PartitionPolicy) -> ShardConfig {
        self.policy = policy;
        self
    }

    /// This config with per-shard engine configuration `engine`.
    pub fn with_engine(mut self, engine: EngineConfig) -> ShardConfig {
        self.engine = engine;
        self
    }

    /// This config with a bound on each shard sub-query wait.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> ShardConfig {
        self.shard_timeout = Some(timeout);
        self
    }

    /// This config with shard pruning enabled or disabled.
    pub fn with_prune(mut self, prune: bool) -> ShardConfig {
        self.prune = prune;
        self
    }
}

/// Failures surfaced by the sharded engine.
#[derive(Debug)]
pub enum ShardError {
    /// Construction or validation failed inside a shard engine.
    Engine(EngineError),
    /// The dataset was empty or the shard count zero.
    InvalidConfig(String),
    /// Shard `shard` did not answer within
    /// [`ShardConfig::shard_timeout`].
    Timeout {
        /// Index of the shard that timed out.
        shard: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Engine(e) => write!(f, "shard engine: {e}"),
            ShardError::InvalidConfig(msg) => write!(f, "shard config: {msg}"),
            ShardError::Timeout { shard } => write!(f, "shard {shard} timed out"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<EngineError> for ShardError {
    fn from(e: EngineError) -> ShardError {
        ShardError::Engine(e)
    }
}

/// Static facts about one shard, for reports.
#[derive(Clone, Debug)]
pub struct ShardInfo {
    /// Shard index.
    pub index: usize,
    /// Points held.
    pub len: usize,
    /// Tight bounding rect of the shard's points.
    pub rect: Rect,
}

/// The answer to one routed query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Global skyline point ids, ascending — exactly the single-engine
    /// answer on the union dataset.
    pub skyline: Vec<u32>,
    /// Shards whose engines actually ran the query.
    pub shards_queried: usize,
    /// Shards skipped by the dominance bound.
    pub shards_pruned: usize,
    /// End-to-end service time: bound + fan-out + merge.
    pub latency: Duration,
    /// Work counters summed over shard sub-queries plus the merge.
    pub stats: QueryStats,
}

struct Shard {
    engine: Engine,
    ids: Vec<u32>,
    rect: Rect,
}

/// One [`Engine`] per spatial shard behind a pruning router.
pub struct ShardedEngine {
    shards: Vec<Shard>,
    metrics: ShardMetrics,
    timeout: Option<Duration>,
    prune: bool,
}

impl ShardedEngine {
    /// Partitions `points` and builds the per-shard engines.
    pub fn new(points: &[Point], config: ShardConfig) -> Result<ShardedEngine, ShardError> {
        if config.shards == 0 {
            return Err(ShardError::InvalidConfig(
                "shard count must be nonzero".into(),
            ));
        }
        if points.is_empty() {
            return Err(ShardError::Engine(EngineError::EmptyDataset));
        }
        config.engine.validate()?;
        let specs = partition(points, config.shards, config.policy);
        let shards = specs
            .into_iter()
            .map(|spec: ShardSpec| {
                Ok(Shard {
                    engine: Engine::new(&spec.points, config.engine.clone())?,
                    ids: spec.ids,
                    rect: spec.rect,
                })
            })
            .collect::<Result<Vec<Shard>, EngineError>>()?;
        Ok(ShardedEngine {
            shards,
            metrics: ShardMetrics::new(),
            timeout: config.shard_timeout,
            prune: config.prune,
        })
    }

    /// Number of shards actually built (≤ the configured target).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total points across all shards.
    pub fn data_len(&self) -> usize {
        self.shards.iter().map(|s| s.ids.len()).sum()
    }

    /// Static per-shard facts, for `shard-stats` style reports.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, s)| ShardInfo {
                index,
                len: s.ids.len(),
                rect: s.rect,
            })
            .collect()
    }

    /// Routes one query: seed the primary shard, prune, fan out, merge.
    pub fn query(&self, q: &[Point]) -> Result<ShardedResponse, ShardError> {
        let start = Instant::now();
        let ctx = QueryContext::new(q);
        let anchors = ctx.anchors();
        let mut stats = QueryStats::default();

        // Lower-bound vector and its sum per shard; the primary shard is
        // the one the query can be served cheapest from.
        let bounds: Vec<Vec<f64>> = self
            .shards
            .iter()
            .map(|s| rect_lower_bounds(&s.rect, anchors))
            .collect();
        let primary = (0..self.shards.len())
            .min_by(|&a, &b| {
                let (sa, sb) = (bounds[a].iter().sum::<f64>(), bounds[b].iter().sum::<f64>());
                sa.total_cmp(&sb)
            })
            .expect("at least one shard");

        // Seed: the primary shard's skyline points are real answers whose
        // distance vectors prune distant shards.
        let seed = self.wait_shard(
            primary,
            self.shards[primary]
                .engine
                .submit(QueryRequest::new(q.to_vec())),
        )?;
        stats.absorb(&seed.stats);
        let mut candidates: Vec<(u32, Point)> = self.remap(primary, &seed.skyline);
        let seed_vectors: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&(_, p)| ctx.dist_vector(p, &mut stats))
            .collect();

        // Fan out to every other shard the seed cannot rule out.
        let mut pruned = 0usize;
        let mut pending: Vec<(usize, ssq_engine::QueryHandle)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if i == primary {
                continue;
            }
            let skip = self.prune && seed_vectors.iter().any(|v| dominates_rect(v, &bounds[i]));
            if skip {
                pruned += 1;
            } else {
                pending.push((i, shard.engine.submit(QueryRequest::new(q.to_vec()))));
            }
        }
        let queried = 1 + pending.len();
        for (i, handle) in pending {
            let response = self.wait_shard(i, handle)?;
            stats.absorb(&response.stats);
            candidates.extend(self.remap(i, &response.skyline));
        }

        // Merge to the exact global skyline.
        let skyline = merge_candidates(&ctx, &candidates, &mut stats);
        let latency = start.elapsed();
        self.metrics.record_query(
            queried as u64,
            pruned as u64,
            candidates.len() as u64,
            latency,
        );
        Ok(ShardedResponse {
            skyline,
            shards_queried: queried,
            shards_pruned: pruned,
            latency,
            stats,
        })
    }

    fn wait_shard(
        &self,
        shard: usize,
        handle: ssq_engine::QueryHandle,
    ) -> Result<ssq_engine::QueryResponse, ShardError> {
        match self.timeout {
            None => Ok(handle.wait()),
            Some(t) => handle
                .wait_timeout(t)
                .map_err(|_| ShardError::Timeout { shard }),
        }
    }

    /// Local skyline ids of `shard` mapped back to global ids + points.
    fn remap(&self, shard: usize, local: &[u32]) -> Vec<(u32, Point)> {
        let s = &self.shards[shard];
        local
            .iter()
            .map(|&l| {
                let global = s.ids[l as usize];
                (global, s.engine.points()[l as usize])
            })
            .collect()
    }

    /// Router metrics plus the folded per-shard engine metrics.
    pub fn metrics(&self) -> ShardedMetricsSnapshot {
        let engine_snaps: Vec<_> = self.shards.iter().map(|s| s.engine.metrics()).collect();
        self.metrics.snapshot(engine_snaps.iter())
    }

    /// Drains and joins every shard engine's worker pool.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.engine.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_core::naive_full;

    fn cloud(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    (i % 19) as f64 + 3e-4 * i as f64,
                    (i / 19) as f64 + 5e-5 * i as f64,
                )
            })
            .collect()
    }

    fn small_engines() -> EngineConfig {
        EngineConfig::default().with_workers(2)
    }

    #[test]
    fn sharded_answer_equals_the_oracle_for_odd_shard_counts() {
        let data = cloud(400);
        let q = vec![
            Point::new(5.0, 5.0),
            Point::new(14.0, 8.0),
            Point::new(9.0, 18.0),
        ];
        let want = naive_full(&data, &QueryContext::new(&q)).skyline;
        for policy in PartitionPolicy::ALL {
            for shards in [1, 3, 5, 6] {
                let config = ShardConfig::default()
                    .with_shards(shards)
                    .with_policy(policy)
                    .with_engine(small_engines());
                let engine = ShardedEngine::new(&data, config).unwrap();
                let got = engine.query(&q).unwrap();
                assert_eq!(
                    got.skyline, want,
                    "policy {policy}, {shards} shards diverged"
                );
                assert_eq!(got.shards_queried + got.shards_pruned, engine.shard_count());
                engine.shutdown();
            }
        }
    }

    #[test]
    fn pruning_fires_on_a_corner_query_without_changing_the_answer() {
        let data = cloud(600);
        // A tight query in one corner of the universe: far shards are
        // dominated by the primary shard's skyline.
        let q = vec![
            Point::new(0.4, 0.3),
            Point::new(1.2, 0.8),
            Point::new(0.7, 1.5),
        ];
        let config = ShardConfig::default()
            .with_shards(8)
            .with_engine(small_engines());
        let engine = ShardedEngine::new(&data, config).unwrap();
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        assert!(got.shards_pruned > 0, "corner query should prune shards");
        let m = engine.metrics();
        assert_eq!(m.queries, 1);
        assert_eq!(m.shards_pruned, got.shards_pruned as u64);
        assert!(m.prune_rate() > 0.0);
        assert_eq!(m.engines.queries(), got.shards_queried as u64);
        engine.shutdown();
    }

    #[test]
    fn disabling_prune_queries_every_shard() {
        let data = cloud(300);
        let q = vec![Point::new(0.5, 0.5), Point::new(1.5, 1.0)];
        let config = ShardConfig::default()
            .with_shards(4)
            .with_engine(small_engines())
            .with_prune(false);
        let engine = ShardedEngine::new(&data, config).unwrap();
        let got = engine.query(&q).unwrap();
        assert_eq!(got.shards_pruned, 0);
        assert_eq!(got.shards_queried, engine.shard_count());
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let data = cloud(10);
        assert!(matches!(
            ShardedEngine::new(&data, ShardConfig::default().with_shards(0)),
            Err(ShardError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedEngine::new(&[], ShardConfig::default()),
            Err(ShardError::Engine(EngineError::EmptyDataset))
        ));
        let bad_engine =
            ShardConfig::default().with_engine(EngineConfig::default().with_workers(0));
        assert!(matches!(
            ShardedEngine::new(&data, bad_engine),
            Err(ShardError::Engine(EngineError::ZeroWorkers))
        ));
    }

    #[test]
    fn generous_timeout_still_answers() {
        let data = cloud(200);
        let config = ShardConfig::default()
            .with_shards(4)
            .with_engine(small_engines())
            .with_shard_timeout(Duration::from_secs(30));
        let engine = ShardedEngine::new(&data, config).unwrap();
        let q = vec![Point::new(4.0, 4.0), Point::new(10.0, 6.0)];
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn tiny_dataset_collapses_but_answers() {
        let data = vec![Point::new(1.0, 1.0), Point::new(2.0, 3.0)];
        let engine = ShardedEngine::new(&data, ShardConfig::default().with_shards(8)).unwrap();
        assert!(engine.shard_count() <= 2);
        let q = vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)];
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }
}
