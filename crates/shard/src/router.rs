//! The sharded engine: partition, route, prune, fan out, merge.
//!
//! [`ShardedEngine::new`] partitions the dataset under a
//! [`PartitionPolicy`] and builds one full
//! [`Engine`] (indexes, worker pool, cache) per shard. A query then
//! goes through four steps:
//!
//! 1. **Bound** — compute each shard rect's lower-bound distance vector
//!    to `CHv(Q)` ([`rect_lower_bounds`]).
//! 2. **Seed** — query the *primary* shard (smallest lower-bound sum,
//!    i.e. the shard the query sits in or nearest to) synchronously;
//!    its skyline points are real, so their distance vectors become
//!    pruning ammunition.
//! 3. **Fan out** — every remaining shard whose bound is dominated by a
//!    seed vector is skipped ([`dominates_rect`]);
//!    the rest are queried concurrently through their engines' tickets,
//!    bounded by [`ShardConfig::shard_timeout`] when set.
//! 4. **Merge** — per-shard skylines, remapped to global ids, pass
//!    through the exact dominance filter, run in the router's warm
//!    scratch arena ([`merge_candidates_with`]).
//!
//! [`ShardedEngine::query_batch`] routes many queries at once: whole
//! batches are fanned out shard-wise through
//! [`Engine::submit_batch_on`], so queue hops, snapshot pins, and cache
//! probes are paid once per batch-per-shard instead of once per query.
//!
//! Pruning never affects the answer (the bound is sound — see
//! [`prune`](crate::prune)); it only avoids work, which the metrics
//! make observable.
//!
//! # Live reindex
//!
//! [`ShardedEngine::reindex`] re-partitions a new dataset, builds one
//! [`Snapshot`] per shard at the next fleet generation, installs them
//! into the per-shard engine catalogs, and publishes a new [`Fleet`
//! view](ShardedEngine::reindex) — the id remap tables and pruning rects
//! re-derived from the new data. Every routed query pins **one** fleet
//! view for its whole fan-out, so its pruning bounds, sub-queries, and
//! remap tables all describe the same generation even while per-engine
//! catalogs are being swapped underneath it; the answer is always
//! exactly the single-engine answer on one real dataset generation
//! (the one [`ShardedResponse::generation`] reports).

use crate::merge::merge_candidates_with;
use crate::metrics::{ShardMetrics, ShardedMetricsSnapshot};
use crate::partition::{partition, PartitionPolicy, ShardSpec};
use crate::prune::{dominates_rect, rect_lower_bounds};
use ssq_core::{DeltaStats, DistanceScratch, QueryContext, QueryKey, QueryStats, UpdateBatch};
use ssq_engine::sync::{RankedMutex, RANK_SHARD_FLEET, RANK_SHARD_MERGE, RANK_SHARD_REINDEX};
use ssq_engine::{BatchTicket, Engine, EngineConfig, EngineError, QueryRequest, Snapshot};
use ssq_geom::{Point, Rect};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Post-ingest size-skew trigger: rebalance when the hottest shard holds
/// more than `REBALANCE_SKEW ×` the coldest shard's points.
const REBALANCE_SKEW: usize = 2;

/// Hysteresis: skew alone never triggers a rebalance unless the hot and
/// cold shards also differ by at least this many points, so small fleets
/// don't churn over rounding noise.
const REBALANCE_MIN_GAP: usize = 64;

/// Tuning knobs for [`ShardedEngine::new`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Target shard count (the partitioner may return fewer on tiny
    /// datasets; must be nonzero).
    pub shards: usize,
    /// How the dataset is cut into shards.
    pub policy: PartitionPolicy,
    /// Per-shard engine configuration (workers, cache, queue).
    pub engine: EngineConfig,
    /// Upper bound on waiting for any one shard's sub-query; `None`
    /// waits indefinitely. On expiry the query fails with
    /// [`ShardError::Timeout`] instead of wedging the router.
    pub shard_timeout: Option<Duration>,
    /// Whether the dominance bound may skip shards (on by default;
    /// turning it off forces full fan-out, useful for A/B measurement).
    pub prune: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            policy: PartitionPolicy::Grid,
            engine: EngineConfig::default(),
            shard_timeout: None,
            prune: true,
        }
    }
}

impl ShardConfig {
    /// This config with exactly `shards` target shards.
    pub fn with_shards(mut self, shards: usize) -> ShardConfig {
        self.shards = shards;
        self
    }

    /// This config with partition policy `policy`.
    pub fn with_policy(mut self, policy: PartitionPolicy) -> ShardConfig {
        self.policy = policy;
        self
    }

    /// This config with per-shard engine configuration `engine`.
    pub fn with_engine(mut self, engine: EngineConfig) -> ShardConfig {
        self.engine = engine;
        self
    }

    /// This config with a bound on each shard sub-query wait.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> ShardConfig {
        self.shard_timeout = Some(timeout);
        self
    }

    /// This config with shard pruning enabled or disabled.
    pub fn with_prune(mut self, prune: bool) -> ShardConfig {
        self.prune = prune;
        self
    }
}

/// Failures surfaced by the sharded engine.
#[derive(Debug)]
pub enum ShardError {
    /// Construction or validation failed inside a shard engine.
    Engine(EngineError),
    /// The dataset was empty or the shard count zero.
    InvalidConfig(String),
    /// Shard `shard` did not answer within
    /// [`ShardConfig::shard_timeout`].
    Timeout {
        /// Index of the shard that timed out.
        shard: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Engine(e) => write!(f, "shard engine: {e}"),
            ShardError::InvalidConfig(msg) => write!(f, "shard config: {msg}"),
            ShardError::Timeout { shard } => write!(f, "shard {shard} timed out"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<EngineError> for ShardError {
    fn from(e: EngineError) -> ShardError {
        ShardError::Engine(e)
    }
}

/// Static facts about one shard, for reports.
#[derive(Clone, Debug)]
pub struct ShardInfo {
    /// Shard index.
    pub index: usize,
    /// Points held.
    pub len: usize,
    /// Tight bounding rect of the shard's points.
    pub rect: Rect,
}

/// The answer to one routed query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Global skyline point ids, ascending — exactly the single-engine
    /// answer on the union dataset of the generation reported below.
    pub skyline: Vec<u32>,
    /// The fleet generation this query was answered against: every
    /// shard sub-query, pruning bound, and remap table came from this
    /// one generation's view.
    pub generation: u64,
    /// Shards whose engines actually ran the query.
    pub shards_queried: usize,
    /// Shards skipped by the dominance bound.
    pub shards_pruned: usize,
    /// End-to-end service time: bound + fan-out + merge.
    pub latency: Duration,
    /// Work counters summed over shard sub-queries plus the merge.
    pub stats: QueryStats,
}

/// What one fleet delta publish ([`ShardedEngine::ingest`]) did.
#[derive(Clone, Debug)]
pub struct FleetIngestReport {
    /// The fleet generation the batch produced (unchanged for an empty
    /// batch, which publishes nothing).
    pub generation: u64,
    /// Per-shard maintenance stats summed over every touched shard;
    /// `incremental` is `true` only when **every** touched shard took
    /// the incremental path.
    pub stats: DeltaStats,
    /// Shards whose snapshots were rebuilt by the delta (untouched
    /// shards share their snapshot `Arc` into the new generation).
    pub shards_touched: usize,
    /// Whether the size-skew check fired a rebalance this publish.
    pub rebalanced: bool,
    /// Points that changed shard ownership (zero without a rebalance).
    pub rebalance_moves: usize,
    /// Wall-clock cost of the publish: routing + every touched shard's
    /// delta application + any rebalance rebuilds.
    pub build: Duration,
}

/// One shard's slice of a single fleet generation: the pinned snapshot
/// its engine answers from, the local→global id map, and the rect the
/// router prunes against. All three describe the *same* dataset, which
/// is what keeps pruning sound across swaps.
struct ShardView {
    snapshot: Arc<Snapshot>,
    ids: Vec<u32>,
    rect: Rect,
}

/// A consistent routing view over every shard at one generation. A query
/// pins one `Arc<Fleet>` for its whole fan-out.
struct Fleet {
    generation: u64,
    views: Vec<ShardView>,
}

/// One [`Engine`] per spatial shard behind a pruning router.
///
/// The engines (worker pools, caches, metrics) persist across
/// [`reindex`](ShardedEngine::reindex) calls; only their snapshot
/// catalogs and the router's fleet view are swapped.
pub struct ShardedEngine {
    engines: Vec<Engine>,
    fleet: RankedMutex<Arc<Fleet>>,
    /// Serializes reindex calls so generation numbers stay monotone.
    reindex_lock: RankedMutex<()>,
    /// The router's merge arena: cross-shard candidate filtering runs
    /// through one warm [`DistanceScratch`] instead of allocating a
    /// distance vector per candidate per query.
    merge_scratch: RankedMutex<DistanceScratch>,
    policy: PartitionPolicy,
    metrics: ShardMetrics,
    timeout: Option<Duration>,
    prune: bool,
}

impl ShardedEngine {
    /// Partitions `points` and builds the per-shard engines, publishing
    /// the result as fleet generation 0.
    pub fn new(points: &[Point], config: ShardConfig) -> Result<ShardedEngine, ShardError> {
        if config.shards == 0 {
            return Err(ShardError::InvalidConfig(
                "shard count must be nonzero".into(),
            ));
        }
        if points.is_empty() {
            return Err(ShardError::Engine(EngineError::EmptyDataset));
        }
        config.engine.validate()?;
        let specs = partition(points, config.shards, config.policy);
        let mut engines = Vec::with_capacity(specs.len());
        let mut views = Vec::with_capacity(specs.len());
        for spec in specs {
            let ShardSpec { ids, points, rect } = spec;
            let snapshot = Arc::new(
                Snapshot::build(0, &points)
                    .map_err(|e| ShardError::Engine(EngineError::Index(e)))?,
            );
            engines.push(Engine::with_snapshot(
                Arc::clone(&snapshot),
                config.engine.clone(),
            )?);
            views.push(ShardView {
                snapshot,
                ids,
                rect,
            });
        }
        Ok(ShardedEngine {
            engines,
            fleet: RankedMutex::new(
                "shard.fleet",
                RANK_SHARD_FLEET,
                Arc::new(Fleet {
                    generation: 0,
                    views,
                }),
            ),
            reindex_lock: RankedMutex::new("shard.reindex", RANK_SHARD_REINDEX, ()),
            merge_scratch: RankedMutex::new(
                "shard.merge",
                RANK_SHARD_MERGE,
                DistanceScratch::new(),
            ),
            policy: config.policy,
            metrics: ShardMetrics::new(),
            timeout: config.shard_timeout,
            prune: config.prune,
        })
    }

    /// Pins the current fleet view (lock held only for the clone).
    fn current_fleet(&self) -> Arc<Fleet> {
        Arc::clone(&self.fleet.lock())
    }

    /// Number of shards holding data in the current generation (≤ the
    /// configured target; a reindex onto a tiny dataset may leave
    /// trailing engines idle).
    pub fn shard_count(&self) -> usize {
        self.current_fleet().views.len()
    }

    /// The fleet generation currently being served.
    pub fn generation(&self) -> u64 {
        self.current_fleet().generation
    }

    /// Total points across all shards in the current generation.
    pub fn data_len(&self) -> usize {
        self.current_fleet().views.iter().map(|v| v.ids.len()).sum()
    }

    /// Static per-shard facts, for `shard-stats` style reports.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.current_fleet()
            .views
            .iter()
            .enumerate()
            .map(|(index, v)| ShardInfo {
                index,
                len: v.ids.len(),
                rect: v.rect,
            })
            .collect()
    }

    /// Re-partitions `points` as the next fleet generation, builds one
    /// snapshot per shard, installs them into the per-shard engine
    /// catalogs, and atomically publishes the new routing view. Returns
    /// the new generation number.
    ///
    /// The partition and every index build run on the calling thread,
    /// entirely off the serving path: queries that pinned the old fleet
    /// keep using it (its snapshots, rects, and id maps stay alive via
    /// their `Arc`s) and finish exactly; queries routed after the
    /// publish see only the new generation. Nothing is installed unless
    /// **every** shard's build succeeded, so the fleet can never end up
    /// half-swapped.
    pub fn reindex(&self, points: &[Point]) -> Result<u64, ShardError> {
        if points.is_empty() {
            return Err(ShardError::Engine(EngineError::EmptyDataset));
        }
        let _guard = self.reindex_lock.lock();
        let next = self.current_fleet().generation + 1;
        let start = Instant::now();
        // Never more shards than engines: each view needs a pool to run
        // its sub-queries on.
        let specs = partition(points, self.engines.len(), self.policy);
        let mut views = Vec::with_capacity(specs.len());
        for spec in specs {
            let ShardSpec { ids, points, rect } = spec;
            let snapshot = Arc::new(
                Snapshot::build(next, &points)
                    .map_err(|e| ShardError::Engine(EngineError::Index(e)))?,
            );
            views.push(ShardView {
                snapshot,
                ids,
                rect,
            });
        }
        let build = start.elapsed();
        for (engine, view) in self.engines.iter().zip(&views) {
            engine.install_snapshot(Arc::clone(&view.snapshot), build)?;
        }
        *self.fleet.lock() = Arc::new(Fleet {
            generation: next,
            views,
        });
        self.metrics.record_swap(next, build);
        Ok(next)
    }

    /// Applies a fleet-wide [`UpdateBatch`] as the next generation:
    /// deletes are routed to the shards that own them, inserts to the
    /// shard whose footprint each point is inside (or nearest to), and
    /// every touched shard's next snapshot is built *incrementally* from
    /// its current one ([`Snapshot::apply_delta`]). Untouched shards
    /// carry their snapshot `Arc` into the new generation unchanged —
    /// only their id tables are renumbered — so the publish costs
    /// O(|delta| log |shard|) plus memory copies, not a fleet rebuild.
    ///
    /// Delete ids refer to the current generation's global id space; the
    /// new generation's ids are survivors densely renumbered (in global
    /// id order) followed by the batch's inserts in fleet-normalized
    /// order — exactly the id semantics of a single
    /// [`Snapshot::apply_delta`] over the union dataset, so a query
    /// against the delta-built fleet matches a fresh build over
    /// [`UpdateBatch`]-applied points byte for byte.
    ///
    /// After the delta lands the router checks size skew: when the
    /// hottest shard holds more than `REBALANCE_SKEW` (2)× the coldest
    /// shard's points (and they differ by at least
    /// `REBALANCE_MIN_GAP`, 64), the pair's union is median-split and both
    /// shards rebuilt; a fleet that previously collapsed below its
    /// engine count re-expands by splitting the hottest shard into an
    /// idle engine instead. Either way the result is published
    /// atomically with the delta as **one** fleet generation.
    pub fn ingest(&self, batch: &UpdateBatch) -> Result<FleetIngestReport, ShardError> {
        let _guard = self.reindex_lock.lock();
        let fleet = self.current_fleet();
        let n: usize = fleet.views.iter().map(|v| v.ids.len()).sum();
        batch
            .validate(n)
            .map_err(|e| ShardError::Engine(EngineError::Index(e.to_string())))?;
        if batch.is_empty() {
            return Ok(FleetIngestReport {
                generation: fleet.generation,
                stats: DeltaStats {
                    incremental: true,
                    ..DeltaStats::default()
                },
                shards_touched: 0,
                rebalanced: false,
                rebalance_moves: 0,
                build: Duration::ZERO,
            });
        }
        let start = Instant::now();
        // Normalize over the whole fleet's footprint so the new global
        // ids are a deterministic function of (fleet, batch) — the same
        // function Snapshot::apply_delta uses on a single engine.
        let universe = Rect::bounding(fleet.views.iter().flat_map(|v| [v.rect.min, v.rect.max]));
        let mut batch = batch.clone();
        batch.normalize(&universe);
        let next = fleet.generation + 1;
        let remap_global = batch.survivor_remap(n);
        let n_surv = n - batch.deletes.len();

        // Owner table: global id -> (shard, local position).
        let shards = fleet.views.len();
        let mut owner: Vec<(u32, u32)> = vec![(u32::MAX, 0); n];
        for (s, view) in fleet.views.iter().enumerate() {
            for (l, &g) in view.ids.iter().enumerate() {
                owner[g as usize] = (s as u32, l as u32);
            }
        }
        let mut local_deletes: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for &d in &batch.deletes {
            let (s, l) = owner[d as usize];
            local_deletes[s as usize].push(l);
        }
        // Route each insert to the shard it falls inside or is nearest
        // to (ties to the lower index). Its new global id is fixed by
        // the fleet-wide normalization above, independent of the shard
        // chosen, so routing only shapes locality, never the answer.
        let mut local_inserts: Vec<Vec<(Point, u32)>> = vec![Vec::new(); shards];
        for (j, &p) in batch.inserts.iter().enumerate() {
            // `unwrap_or(0)` is unreachable in practice: the fleet was
            // validated non-empty above, so the range is never empty.
            let s = (0..shards)
                .min_by(|&a, &b| {
                    fleet.views[a]
                        .rect
                        .mindist(p)
                        .total_cmp(&fleet.views[b].rect.mindist(p))
                })
                .unwrap_or(0);
            local_inserts[s].push((p, (n_surv + j) as u32));
        }

        let mut views: Vec<ShardView> = Vec::with_capacity(shards);
        let mut stats = DeltaStats {
            incremental: true,
            ..DeltaStats::default()
        };
        let mut touched = 0usize;
        for (s, view) in fleet.views.iter().enumerate() {
            let ins = &local_inserts[s];
            // Survivors keep their local order, renumbered into the next
            // generation's dense global id space.
            let mut ids: Vec<u32> = view
                .ids
                .iter()
                .filter_map(|&g| {
                    let r = remap_global[g as usize];
                    (r != u32::MAX).then_some(r)
                })
                .collect();
            if local_deletes[s].is_empty() && ins.is_empty() {
                // Untouched: the snapshot rides into the new generation
                // by Arc, only the id table is rewritten.
                views.push(ShardView {
                    snapshot: Arc::clone(&view.snapshot),
                    ids,
                    rect: view.rect,
                });
                continue;
            }
            if ids.is_empty() && ins.is_empty() {
                // The batch emptied this shard: dropping its view *is*
                // the whole delta (every point it held was deleted), and
                // its engine idles until a later generation routes
                // points back — same contract as a reindex onto a tiny
                // dataset.
                stats.deletes += view.ids.len();
                continue;
            }
            touched += 1;
            let local = UpdateBatch {
                inserts: ins.iter().map(|&(p, _)| p).collect(),
                deletes: local_deletes[s].clone(),
            };
            // The snapshot normalizes the local batch over its own
            // universe; permute the global-id tail by that same order so
            // the id table stays parallel to the new snapshot's points.
            let order = local.insert_order(&view.snapshot.universe());
            ids.extend(order.iter().map(|&k| ins[k as usize].1));
            let (snap, shard_stats) = view
                .snapshot
                .apply_delta(next, &local)
                .map_err(|e| ShardError::Engine(EngineError::Index(e)))?;
            stats.inserts += shard_stats.inserts;
            stats.deletes += shard_stats.deletes;
            stats.incremental &= shard_stats.incremental;
            stats.dirty_cells += shard_stats.dirty_cells;
            views.push(ShardView {
                rect: Rect::bounding(snap.points().iter().copied()),
                snapshot: Arc::new(snap),
                ids,
            });
        }
        if views.is_empty() {
            // Unreachable: validate() rejects batches emptying the fleet.
            return Err(ShardError::InvalidConfig(
                "batch emptied every shard".into(),
            ));
        }

        let (rebalanced, moves) = self
            .maybe_rebalance(&mut views, next)
            .map_err(|e| ShardError::Engine(EngineError::Index(e)))?;

        let build = start.elapsed();
        // Install every snapshot built at this generation; untouched
        // engines keep serving their (still current) old snapshot.
        for (i, view) in views.iter().enumerate() {
            if view.snapshot.generation() == next {
                self.engines[i].install_snapshot(Arc::clone(&view.snapshot), build)?;
            }
        }
        *self.fleet.lock() = Arc::new(Fleet {
            generation: next,
            views,
        });
        self.metrics.record_swap(next, build);
        self.metrics.record_ingest(&stats, build, moves as u64);
        Ok(FleetIngestReport {
            generation: next,
            stats,
            shards_touched: touched,
            rebalanced,
            rebalance_moves: moves,
            build,
        })
    }

    /// The size-skew check run at the end of every
    /// [`ingest`](ShardedEngine::ingest), before the publish. Returns
    /// whether a rebalance fired and how many points changed shards.
    ///
    /// Two moves, mutually exclusive per publish:
    ///
    /// * **Split hot** — when the fleet has fewer views than engines
    ///   (it collapsed on a tiny dataset and has since grown), the
    ///   hottest shard is median-split and the new half takes an idle
    ///   engine slot.
    /// * **Merge-split hot/cold** — when the hottest shard outweighs the
    ///   coldest by more than [`REBALANCE_SKEW`]×, their union is
    ///   median-split into two balanced shards, rebuilt in place.
    fn maybe_rebalance(
        &self,
        views: &mut Vec<ShardView>,
        generation: u64,
    ) -> Result<(bool, usize), String> {
        let Some(hot) = (0..views.len()).max_by_key(|&i| views[i].ids.len()) else {
            return Ok((false, 0));
        };
        if views.len() < self.engines.len() && views[hot].ids.len() >= 2 * REBALANCE_MIN_GAP {
            let pairs = id_point_pairs([&views[hot]]);
            let [low, high] = kd_halves(pairs, generation)?;
            let moves = high.ids.len();
            views[hot] = low;
            views.push(high);
            return Ok((true, moves));
        }
        // `unwrap_or(hot)` is unreachable in practice (`hot` indexes into
        // `views`, so the range is non-empty) and degrades to the
        // `hot == cold` no-rebalance branch below if it ever fired.
        let cold = (0..views.len())
            .min_by_key(|&i| views[i].ids.len())
            .unwrap_or(hot);
        let (hot_len, cold_len) = (views[hot].ids.len(), views[cold].ids.len());
        if hot == cold
            || hot_len <= REBALANCE_SKEW * cold_len
            || hot_len < cold_len + REBALANCE_MIN_GAP
        {
            return Ok((false, 0));
        }
        let old_hot: HashSet<u32> = views[hot].ids.iter().copied().collect();
        let old_cold: HashSet<u32> = views[cold].ids.iter().copied().collect();
        let pairs = id_point_pairs([&views[hot], &views[cold]]);
        let [low, high] = kd_halves(pairs, generation)?;
        let moves = low.ids.iter().filter(|g| !old_hot.contains(g)).count()
            + high.ids.iter().filter(|g| !old_cold.contains(g)).count();
        views[hot] = low;
        views[cold] = high;
        Ok((true, moves))
    }

    /// Routes one query: seed the primary shard, prune, fan out, merge.
    ///
    /// The whole fan-out runs against one pinned fleet generation, so
    /// the answer is exact for the dataset of
    /// [`ShardedResponse::generation`] even if a
    /// [`reindex`](ShardedEngine::reindex) publishes mid-flight.
    pub fn query(&self, q: &[Point]) -> Result<ShardedResponse, ShardError> {
        let start = Instant::now();
        let fleet = self.current_fleet();
        let ctx = QueryContext::new(q);
        let anchors = ctx.anchors();
        let mut stats = QueryStats::default();

        // Lower-bound vector and its sum per shard; the primary shard is
        // the one the query can be served cheapest from.
        let bounds: Vec<Vec<f64>> = fleet
            .views
            .iter()
            .map(|v| rect_lower_bounds(&v.rect, anchors))
            .collect();
        let Some(primary) = (0..fleet.views.len()).min_by(|&a, &b| {
            let (sa, sb) = (bounds[a].iter().sum::<f64>(), bounds[b].iter().sum::<f64>());
            sa.total_cmp(&sb)
        }) else {
            // Unreachable in practice: new() and reindex() both refuse
            // empty datasets, so every published fleet has a shard.
            return Err(ShardError::InvalidConfig("fleet has no shards".into()));
        };

        // Seed: the primary shard's skyline points are real answers whose
        // distance vectors prune distant shards.
        let seed = self.wait_shard(
            primary,
            self.engines[primary].submit_on(
                QueryRequest::new(q.to_vec()),
                Arc::clone(&fleet.views[primary].snapshot),
            ),
        )?;
        stats.absorb(&seed.stats);
        let mut candidates: Vec<(u32, Point)> = remap(&fleet.views[primary], &seed.skyline);
        let seed_vectors: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&(_, p)| ctx.dist_vector(p, &mut stats))
            .collect();

        // Fan out to every other shard the seed cannot rule out.
        let mut pruned = 0usize;
        let mut pending: Vec<(usize, ssq_engine::QueryHandle)> = Vec::new();
        for (i, view) in fleet.views.iter().enumerate() {
            if i == primary {
                continue;
            }
            let skip = self.prune && seed_vectors.iter().any(|v| dominates_rect(v, &bounds[i]));
            if skip {
                pruned += 1;
            } else {
                pending.push((
                    i,
                    self.engines[i]
                        .submit_on(QueryRequest::new(q.to_vec()), Arc::clone(&view.snapshot)),
                ));
            }
        }
        let queried = 1 + pending.len();
        for (i, handle) in pending {
            let response = self.wait_shard(i, handle)?;
            stats.absorb(&response.stats);
            candidates.extend(remap(&fleet.views[i], &response.skyline));
        }

        // Merge to the exact global skyline through the warm arena.
        let skyline = {
            let mut scratch = self.merge_scratch.lock();
            merge_candidates_with(&ctx, &candidates, &mut stats, &mut scratch)
        };
        let latency = start.elapsed();
        self.metrics.record_query(
            queried as u64,
            pruned as u64,
            candidates.len() as u64,
            latency,
        );
        Ok(ShardedResponse {
            skyline,
            generation: fleet.generation,
            shards_queried: queried,
            shards_pruned: pruned,
            latency,
            stats,
        })
    }

    /// Routes a batch of queries through one pinned fleet view, fanning
    /// whole batches out shard-wise.
    ///
    /// The answer of each query is exactly what [`query`](Self::query)
    /// would return for it, but the work is amortized: each shard engine
    /// sees at most **two** batch submissions for the whole batch (one
    /// carrying every query it is the primary shard of — the seeds — and
    /// one carrying every query its bound could not rule out), so queue
    /// hops, snapshot pins, and cache probes are paid per batch-per-shard
    /// instead of per query. Pruning stays per-query and per-shard, driven
    /// by each query's own seed skyline, so it is exactly as aggressive as
    /// in the single-query path.
    pub fn query_batch(&self, queries: &[Vec<Point>]) -> Result<Vec<ShardedResponse>, ShardError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let start = Instant::now();
        let fleet = self.current_fleet();
        let shards = fleet.views.len();
        let ctxs: Vec<QueryContext> = queries.iter().map(|q| QueryContext::new(q)).collect();
        let mut stats: Vec<QueryStats> = vec![QueryStats::default(); queries.len()];

        // Per-query lower-bound vectors and primary shard.
        let mut bounds: Vec<Vec<Vec<f64>>> = Vec::with_capacity(queries.len());
        let mut primaries: Vec<usize> = Vec::with_capacity(queries.len());
        for ctx in &ctxs {
            let b: Vec<Vec<f64>> = fleet
                .views
                .iter()
                .map(|v| rect_lower_bounds(&v.rect, ctx.anchors()))
                .collect();
            let Some(primary) = (0..shards).min_by(|&i, &j| {
                let (si, sj) = (b[i].iter().sum::<f64>(), b[j].iter().sum::<f64>());
                si.total_cmp(&sj)
            }) else {
                return Err(ShardError::InvalidConfig("fleet has no shards".into()));
            };
            bounds.push(b);
            primaries.push(primary);
        }

        // Seed phase: one batch per distinct primary shard.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (qi, &p) in primaries.iter().enumerate() {
            members[p].push(qi);
        }
        let mut candidates: Vec<Vec<(u32, Point)>> = vec![Vec::new(); queries.len()];
        for (shard, responses) in self.fan_batches(&fleet, queries, &members)? {
            for (&qi, resp) in members[shard].iter().zip(responses) {
                stats[qi].absorb(&resp.stats);
                candidates[qi] = remap(&fleet.views[shard], &resp.skyline);
            }
        }

        // Prune per query, then one batch per remaining shard.
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut pruned: Vec<usize> = vec![0; queries.len()];
        for (qi, ctx) in ctxs.iter().enumerate() {
            let seed_vectors: Vec<Vec<f64>> = candidates[qi]
                .iter()
                .map(|&(_, p)| ctx.dist_vector(p, &mut stats[qi]))
                .collect();
            for shard in 0..shards {
                if shard == primaries[qi] {
                    continue;
                }
                let skip = self.prune
                    && seed_vectors
                        .iter()
                        .any(|v| dominates_rect(v, &bounds[qi][shard]));
                if skip {
                    pruned[qi] += 1;
                } else {
                    fanout[shard].push(qi);
                }
            }
        }
        let mut queried: Vec<usize> = vec![1; queries.len()];
        for (shard, responses) in self.fan_batches(&fleet, queries, &fanout)? {
            for (&qi, resp) in fanout[shard].iter().zip(responses) {
                queried[qi] += 1;
                stats[qi].absorb(&resp.stats);
                candidates[qi].extend(remap(&fleet.views[shard], &resp.skyline));
            }
        }

        // Merge every query through the same warm arena.
        let mut scratch = self.merge_scratch.lock();
        let mut out = Vec::with_capacity(queries.len());
        for (qi, ctx) in ctxs.iter().enumerate() {
            let skyline = merge_candidates_with(ctx, &candidates[qi], &mut stats[qi], &mut scratch);
            let latency = start.elapsed();
            self.metrics.record_query(
                queried[qi] as u64,
                pruned[qi] as u64,
                candidates[qi].len() as u64,
                latency,
            );
            out.push(ShardedResponse {
                skyline,
                generation: fleet.generation,
                shards_queried: queried[qi],
                shards_pruned: pruned[qi],
                latency,
                stats: stats[qi],
            });
        }
        Ok(out)
    }

    /// Submits one [`Engine::submit_batch_on`] per shard with a nonempty
    /// member list and waits for them all, returning each shard's
    /// responses in member order. Submission happens before any wait so
    /// the shards run concurrently.
    fn fan_batches(
        &self,
        fleet: &Fleet,
        queries: &[Vec<Point>],
        members: &[Vec<usize>],
    ) -> Result<Vec<(usize, Vec<ssq_engine::QueryResponse>)>, ShardError> {
        let tickets: Vec<(usize, BatchTicket)> = members
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(shard, m)| {
                let requests = m
                    .iter()
                    .map(|&qi| QueryRequest::new(queries[qi].clone()))
                    .collect();
                (
                    shard,
                    self.engines[shard]
                        .submit_batch_on(requests, Arc::clone(&fleet.views[shard].snapshot)),
                )
            })
            .collect();
        tickets
            .into_iter()
            .map(|(shard, ticket)| Ok((shard, self.wait_batch(shard, ticket)?)))
            .collect()
    }

    fn wait_shard(
        &self,
        shard: usize,
        handle: ssq_engine::QueryHandle,
    ) -> Result<ssq_engine::QueryResponse, ShardError> {
        match self.timeout {
            None => Ok(handle.wait()),
            Some(t) => handle
                .wait_timeout(t)
                .map_err(|_| ShardError::Timeout { shard }),
        }
    }

    fn wait_batch(
        &self,
        shard: usize,
        ticket: BatchTicket,
    ) -> Result<Vec<ssq_engine::QueryResponse>, ShardError> {
        match self.timeout {
            None => Ok(ticket.wait()),
            Some(t) => ticket
                .wait_timeout(t)
                .map_err(|_| ShardError::Timeout { shard }),
        }
    }

    /// Router metrics plus the folded per-shard engine metrics.
    pub fn metrics(&self) -> ShardedMetricsSnapshot {
        let engine_snaps: Vec<_> = self.engines.iter().map(Engine::metrics).collect();
        self.metrics.snapshot(engine_snaps.iter())
    }

    /// Seeds every shard engine's context cache and skyline diagram
    /// with known-hot canonical keys (see
    /// [`Engine::warm_start`](ssq_engine::Engine::warm_start)). Each
    /// shard re-canonicalizes the keys against its own data subset, so
    /// one warm file serves the whole fleet. Returns the keys seeded
    /// per shard (every shard sees the same key list). Errors if the
    /// shard engines were built without a diagram
    /// ([`EngineConfig::with_diagram`]).
    pub fn warm_start(&self, keys: &[QueryKey]) -> Result<usize, ShardError> {
        let mut seeded = 0;
        for engine in &self.engines {
            seeded = engine.warm_start(keys)?;
        }
        Ok(seeded)
    }

    /// The hottest canonical query keys across the fleet, merged by
    /// union (shards route the same queries, so the per-shard hot sets
    /// largely coincide; the union dedupes them). At most `limit` keys.
    pub fn hot_keys(&self, limit: usize) -> Vec<QueryKey> {
        let mut keys: Vec<QueryKey> = Vec::new();
        for engine in &self.engines {
            for key in engine.hot_keys(limit) {
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        keys.truncate(limit);
        keys
    }

    /// Drains and joins every shard engine's worker pool.
    pub fn shutdown(self) {
        for engine in self.engines {
            engine.shutdown();
        }
    }
}

/// The (global id, point) pairs of the given views, ascending by global
/// id — the canonical order a rebalance rebuilds shards in, so the
/// rebuilt id tables keep the ids-ascending convention of a fresh
/// partition.
fn id_point_pairs<'a>(views: impl IntoIterator<Item = &'a ShardView>) -> Vec<(u32, Point)> {
    let mut pairs: Vec<(u32, Point)> = views
        .into_iter()
        .flat_map(|v| {
            v.ids
                .iter()
                .copied()
                .zip(v.snapshot.points().iter().copied())
        })
        .collect();
    pairs.sort_unstable_by_key(|&(g, _)| g);
    pairs
}

/// Median-splits `pairs` (ascending by global id) into two balanced
/// shards along the longer axis and full-builds both snapshots at
/// `generation`. The rebalance path pays two full shard builds — the
/// price of restoring balance — while every other shard still rides the
/// cheap delta path.
fn kd_halves(pairs: Vec<(u32, Point)>, generation: u64) -> Result<[ShardView; 2], String> {
    let points: Vec<Point> = pairs.iter().map(|&(_, p)| p).collect();
    let specs = partition(&points, 2, PartitionPolicy::KdSplit);
    debug_assert_eq!(specs.len(), 2, "a rebalanced shard always has >= 2 points");
    let mut halves = Vec::with_capacity(2);
    for spec in specs {
        let ids: Vec<u32> = spec.ids.iter().map(|&i| pairs[i as usize].0).collect();
        halves.push(ShardView {
            snapshot: Arc::new(Snapshot::build(generation, &spec.points)?),
            ids,
            rect: spec.rect,
        });
    }
    halves
        .try_into()
        .map_err(|_| "kd split did not produce exactly two halves".to_string())
}

/// Local skyline ids of one shard view mapped back to global ids +
/// points. The id table and the points come from the same [`ShardView`],
/// so the mapping is exact for that view's generation.
fn remap(view: &ShardView, local: &[u32]) -> Vec<(u32, Point)> {
    local
        .iter()
        .map(|&l| (view.ids[l as usize], view.snapshot.points()[l as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_core::naive_full;

    fn cloud(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    (i % 19) as f64 + 3e-4 * i as f64,
                    (i / 19) as f64 + 5e-5 * i as f64,
                )
            })
            .collect()
    }

    fn small_engines() -> EngineConfig {
        EngineConfig::default().with_workers(2)
    }

    #[test]
    fn sharded_answer_equals_the_oracle_for_odd_shard_counts() {
        let data = cloud(400);
        let q = vec![
            Point::new(5.0, 5.0),
            Point::new(14.0, 8.0),
            Point::new(9.0, 18.0),
        ];
        let want = naive_full(&data, &QueryContext::new(&q)).skyline;
        for policy in PartitionPolicy::ALL {
            for shards in [1, 3, 5, 6] {
                let config = ShardConfig::default()
                    .with_shards(shards)
                    .with_policy(policy)
                    .with_engine(small_engines());
                let engine = ShardedEngine::new(&data, config).unwrap();
                let got = engine.query(&q).unwrap();
                assert_eq!(
                    got.skyline, want,
                    "policy {policy}, {shards} shards diverged"
                );
                assert_eq!(got.shards_queried + got.shards_pruned, engine.shard_count());
                engine.shutdown();
            }
        }
    }

    #[test]
    fn pruning_fires_on_a_corner_query_without_changing_the_answer() {
        let data = cloud(600);
        // A tight query in one corner of the universe: far shards are
        // dominated by the primary shard's skyline.
        let q = vec![
            Point::new(0.4, 0.3),
            Point::new(1.2, 0.8),
            Point::new(0.7, 1.5),
        ];
        let config = ShardConfig::default()
            .with_shards(8)
            .with_engine(small_engines());
        let engine = ShardedEngine::new(&data, config).unwrap();
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        assert!(got.shards_pruned > 0, "corner query should prune shards");
        let m = engine.metrics();
        assert_eq!(m.queries, 1);
        assert_eq!(m.shards_pruned, got.shards_pruned as u64);
        assert!(m.prune_rate() > 0.0);
        assert_eq!(m.engines.queries(), got.shards_queried as u64);
        engine.shutdown();
    }

    #[test]
    fn disabling_prune_queries_every_shard() {
        let data = cloud(300);
        let q = vec![Point::new(0.5, 0.5), Point::new(1.5, 1.0)];
        let config = ShardConfig::default()
            .with_shards(4)
            .with_engine(small_engines())
            .with_prune(false);
        let engine = ShardedEngine::new(&data, config).unwrap();
        let got = engine.query(&q).unwrap();
        assert_eq!(got.shards_pruned, 0);
        assert_eq!(got.shards_queried, engine.shard_count());
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn batched_routing_matches_individual_routing() {
        let data = cloud(500);
        let config = ShardConfig::default()
            .with_shards(5)
            .with_engine(small_engines());
        let engine = ShardedEngine::new(&data, config).unwrap();
        let queries: Vec<Vec<Point>> = vec![
            vec![Point::new(5.0, 5.0), Point::new(14.0, 8.0)],
            vec![
                Point::new(0.4, 0.3),
                Point::new(1.2, 0.8),
                Point::new(0.7, 1.5),
            ],
            vec![Point::new(9.0, 18.0)],
            // A repeat of the first query: must still be answered exactly.
            vec![Point::new(5.0, 5.0), Point::new(14.0, 8.0)],
        ];
        let batch = engine.query_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            let solo = engine.query(q).unwrap();
            assert_eq!(got.skyline, solo.skyline);
            assert_eq!(
                got.skyline,
                naive_full(&data, &QueryContext::new(q)).skyline
            );
            assert_eq!(got.shards_queried, solo.shards_queried);
            assert_eq!(got.shards_pruned, solo.shards_pruned);
            assert_eq!(got.generation, 0);
        }
        assert!(engine.query_batch(&[]).unwrap().is_empty());
        engine.shutdown();
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let data = cloud(10);
        assert!(matches!(
            ShardedEngine::new(&data, ShardConfig::default().with_shards(0)),
            Err(ShardError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedEngine::new(&[], ShardConfig::default()),
            Err(ShardError::Engine(EngineError::EmptyDataset))
        ));
        let bad_engine =
            ShardConfig::default().with_engine(EngineConfig::default().with_workers(0));
        assert!(matches!(
            ShardedEngine::new(&data, bad_engine),
            Err(ShardError::Engine(EngineError::ZeroWorkers))
        ));
    }

    #[test]
    fn generous_timeout_still_answers() {
        let data = cloud(200);
        let config = ShardConfig::default()
            .with_shards(4)
            .with_engine(small_engines())
            .with_shard_timeout(Duration::from_secs(30));
        let engine = ShardedEngine::new(&data, config).unwrap();
        let q = vec![Point::new(4.0, 4.0), Point::new(10.0, 6.0)];
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn tiny_dataset_collapses_but_answers() {
        let data = vec![Point::new(1.0, 1.0), Point::new(2.0, 3.0)];
        let engine = ShardedEngine::new(&data, ShardConfig::default().with_shards(8)).unwrap();
        assert!(engine.shard_count() <= 2);
        let q = vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)];
        let got = engine.query(&q).unwrap();
        assert_eq!(
            got.skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn reindex_swaps_every_shard_and_stays_exact() {
        let old_data = cloud(300);
        let new_data: Vec<Point> = cloud(450)
            .into_iter()
            .map(|p| Point::new(p.x + 0.25, p.y + 0.125))
            .collect();
        let q = vec![
            Point::new(5.0, 5.0),
            Point::new(14.0, 8.0),
            Point::new(9.0, 18.0),
        ];
        let config = ShardConfig::default()
            .with_shards(4)
            .with_engine(small_engines());
        let engine = ShardedEngine::new(&old_data, config).unwrap();

        let before = engine.query(&q).unwrap();
        assert_eq!(before.generation, 0);
        assert_eq!(
            before.skyline,
            naive_full(&old_data, &QueryContext::new(&q)).skyline
        );

        assert_eq!(engine.reindex(&new_data).unwrap(), 1);
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.data_len(), new_data.len());

        let after = engine.query(&q).unwrap();
        assert_eq!(after.generation, 1);
        assert_eq!(
            after.skyline,
            naive_full(&new_data, &QueryContext::new(&q)).skyline
        );

        let m = engine.metrics();
        assert_eq!(m.generation, 1);
        assert_eq!(m.swaps, 1, "one router-level reindex");
        assert!(m.last_build > Duration::ZERO);
        assert_eq!(
            m.engines.swaps,
            engine.shard_count() as u64,
            "every shard engine installed once"
        );
        assert_eq!(m.engines.generation, 1);
        engine.shutdown();
    }

    #[test]
    fn reindex_onto_a_tiny_dataset_idles_trailing_engines() {
        let engine = ShardedEngine::new(
            &cloud(400),
            ShardConfig::default()
                .with_shards(6)
                .with_engine(small_engines()),
        )
        .unwrap();
        let shards_before = engine.shard_count();
        let tiny = vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 3.0),
            Point::new(0.5, 2.5),
        ];
        engine.reindex(&tiny).unwrap();
        assert!(engine.shard_count() <= tiny.len());
        assert!(engine.shard_count() <= shards_before);
        assert_eq!(engine.data_len(), tiny.len());
        let q = vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)];
        let got = engine.query(&q).unwrap();
        assert_eq!(got.generation, 1);
        assert_eq!(
            got.skyline,
            naive_full(&tiny, &QueryContext::new(&q)).skyline
        );
        // And back up again: idle engines rejoin the fleet.
        let big = cloud(500);
        engine.reindex(&big).unwrap();
        assert_eq!(engine.generation(), 2);
        let got = engine.query(&q).unwrap();
        assert_eq!(got.generation, 2);
        assert_eq!(
            got.skyline,
            naive_full(&big, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    /// Two dense blobs in opposite corners plus a sparse bridge — the
    /// kind of skew that makes grid cells uneven.
    fn clustered(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let (bx, by) = if i % 2 == 0 { (0.0, 0.0) } else { (40.0, 30.0) };
                Point::new(
                    bx + (i % 13) as f64 * 0.31 + 1e-5 * i as f64,
                    by + ((i / 13) % 11) as f64 * 0.27 + 3e-6 * i as f64,
                )
            })
            .collect()
    }

    /// The dataset `ingest` publishes: survivors in global id order, then
    /// the batch's inserts normalized over the old dataset's footprint —
    /// the same id semantics as a single-engine `Snapshot::apply_delta`.
    fn apply_expected(data: &[Point], batch: &UpdateBatch) -> Vec<Point> {
        let mut b = batch.clone();
        b.normalize(&Rect::bounding(data.iter().copied()));
        let mut out: Vec<Point> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| b.deletes.binary_search(&(*i as u32)).is_err())
            .map(|(_, &p)| p)
            .collect();
        out.extend(b.inserts.iter().copied());
        out
    }

    #[test]
    fn delta_ingest_matches_a_full_rebuild_oracle() {
        let q = vec![
            Point::new(5.0, 5.0),
            Point::new(14.0, 8.0),
            Point::new(9.0, 18.0),
        ];
        for data in [cloud(400), clustered(400)] {
            for policy in PartitionPolicy::ALL {
                for shards in [1, 2, 4] {
                    let config = ShardConfig::default()
                        .with_shards(shards)
                        .with_policy(policy)
                        .with_engine(small_engines());
                    let engine = ShardedEngine::new(&data, config).unwrap();
                    // Two stacked deltas: deletes spread across shards,
                    // inserts spread across the universe; the second
                    // applies on top of the first's generation.
                    let mut expected = data.clone();
                    for (round, batch) in [
                        UpdateBatch {
                            inserts: (0..40)
                                .map(|i| {
                                    Point::new(
                                        2.0 + (i % 8) as f64 * 2.11,
                                        1.5 + (i / 8) as f64 * 3.07,
                                    )
                                })
                                .collect(),
                            deletes: (0..expected.len() as u32).step_by(11).collect(),
                        },
                        UpdateBatch {
                            inserts: (0..25)
                                .map(|i| {
                                    Point::new(
                                        11.0 + (i % 5) as f64 * 1.7,
                                        6.0 + (i / 5) as f64 * 1.3,
                                    )
                                })
                                .collect(),
                            deletes: vec![0, 3, 5, 8, 13, 100, 200, 300],
                        },
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        let report = engine.ingest(&batch).unwrap();
                        assert_eq!(report.generation, round as u64 + 1);
                        expected = apply_expected(&expected, &batch);
                        assert_eq!(engine.data_len(), expected.len());

                        let got = engine.query(&q).unwrap();
                        assert_eq!(got.generation, round as u64 + 1);
                        let want = naive_full(&expected, &QueryContext::new(&q)).skyline;
                        assert_eq!(
                            got.skyline, want,
                            "{policy}/{shards} shards, round {round}: delta fleet diverged from naive oracle"
                        );
                        // Byte-identical to a fresh fleet built from scratch
                        // over the same logical dataset.
                        let fresh = ShardedEngine::new(
                            &expected,
                            ShardConfig::default()
                                .with_shards(shards)
                                .with_policy(policy)
                                .with_engine(small_engines()),
                        )
                        .unwrap();
                        assert_eq!(
                            got.skyline,
                            fresh.query(&q).unwrap().skyline,
                            "{policy}/{shards} shards, round {round}: delta fleet diverged from full rebuild"
                        );
                        fresh.shutdown();
                    }
                    let m = engine.metrics();
                    assert_eq!(m.ingest.batches, 2);
                    assert_eq!(m.swaps, 2);
                    assert_eq!(m.generation, 2);
                    engine.shutdown();
                }
            }
        }
    }

    #[test]
    fn untouched_shards_share_their_snapshot_arc_across_generations() {
        let data = cloud(400);
        let engine = ShardedEngine::new(
            &data,
            ShardConfig::default()
                .with_shards(4)
                .with_policy(PartitionPolicy::KdSplit)
                .with_engine(small_engines()),
        )
        .unwrap();
        let before = engine.current_fleet();
        // Delete one point owned by shard 0 — every other shard must ride
        // into the new generation by Arc, untouched.
        let victim = before.views[0].ids[0];
        let batch = UpdateBatch {
            inserts: vec![],
            deletes: vec![victim],
        };
        let report = engine.ingest(&batch).unwrap();
        assert_eq!(report.shards_touched, 1);
        assert!(!report.rebalanced);
        let after = engine.current_fleet();
        assert_eq!(after.views.len(), before.views.len());
        assert!(!Arc::ptr_eq(
            &before.views[0].snapshot,
            &after.views[0].snapshot
        ));
        for s in 1..before.views.len() {
            assert!(
                Arc::ptr_eq(&before.views[s].snapshot, &after.views[s].snapshot),
                "shard {s} was rebuilt despite an empty local delta"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn skewed_inserts_trigger_a_rebalance_and_stay_exact() {
        let data = cloud(300);
        let engine = ShardedEngine::new(
            &data,
            ShardConfig::default()
                .with_shards(2)
                .with_policy(PartitionPolicy::KdSplit)
                .with_engine(small_engines()),
        )
        .unwrap();
        // Pile ~320 inserts into one corner: one shard ends up holding
        // more than 2x the other, past the hysteresis gap.
        let batch = UpdateBatch {
            inserts: (0..320)
                .map(|i| {
                    Point::new(
                        0.013 + (i % 18) as f64 * 0.09,
                        0.017 + (i / 18) as f64 * 0.11 + 1e-4 * i as f64,
                    )
                })
                .collect(),
            deletes: vec![],
        };
        let report = engine.ingest(&batch).unwrap();
        assert!(report.rebalanced, "corner pile-up must trigger a rebalance");
        assert!(report.rebalance_moves > 0);
        let infos = engine.shard_infos();
        let (lo, hi) = infos.iter().fold((usize::MAX, 0), |(lo, hi), i| {
            (lo.min(i.len), hi.max(i.len))
        });
        assert!(
            hi <= REBALANCE_SKEW * lo,
            "rebalance left the fleet skewed ({lo}..{hi})"
        );
        let expected = apply_expected(&data, &batch);
        let q = vec![
            Point::new(0.5, 0.5),
            Point::new(4.0, 2.0),
            Point::new(1.5, 6.0),
        ];
        assert_eq!(
            engine.query(&q).unwrap().skyline,
            naive_full(&expected, &QueryContext::new(&q)).skyline,
            "post-rebalance fleet diverged from the oracle"
        );
        assert_eq!(
            engine.metrics().ingest.rebalance_moves,
            report.rebalance_moves as u64
        );
        engine.shutdown();
    }

    #[test]
    fn a_grown_fleet_splits_back_onto_idle_engines() {
        let engine = ShardedEngine::new(
            &cloud(300),
            ShardConfig::default()
                .with_shards(2)
                .with_engine(small_engines()),
        )
        .unwrap();
        // Collapse to one view (one point), leaving an engine idle.
        engine.reindex(&[Point::new(5.0, 5.0)]).unwrap();
        assert_eq!(engine.shard_count(), 1);
        // Grow past 2x the rebalance gap: the hot shard splits onto the
        // idle engine in the same publish.
        let batch = UpdateBatch {
            inserts: cloud(200),
            deletes: vec![],
        };
        let report = engine.ingest(&batch).unwrap();
        assert!(report.rebalanced);
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(engine.data_len(), 201);
        let expected = apply_expected(&[Point::new(5.0, 5.0)], &batch);
        let q = vec![Point::new(4.0, 4.0), Point::new(10.0, 6.0)];
        assert_eq!(
            engine.query(&q).unwrap().skyline,
            naive_full(&expected, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn emptying_one_shard_drops_its_view_but_answers_stay_exact() {
        let data = cloud(200);
        let engine = ShardedEngine::new(
            &data,
            ShardConfig::default()
                .with_shards(2)
                .with_policy(PartitionPolicy::KdSplit)
                .with_engine(small_engines()),
        )
        .unwrap();
        let fleet = engine.current_fleet();
        assert_eq!(fleet.views.len(), 2);
        let batch = UpdateBatch {
            inserts: vec![],
            deletes: fleet.views[1].ids.clone(),
        };
        let report = engine.ingest(&batch).unwrap();
        assert_eq!(report.stats.deletes, fleet.views[1].ids.len());
        assert_eq!(engine.shard_count(), 1);
        let expected = apply_expected(&data, &batch);
        assert_eq!(engine.data_len(), expected.len());
        let q = vec![Point::new(3.0, 3.0), Point::new(8.0, 5.0)];
        assert_eq!(
            engine.query(&q).unwrap().skyline,
            naive_full(&expected, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }

    #[test]
    fn invalid_or_empty_batches_leave_the_fleet_untouched() {
        let data = cloud(150);
        let engine = ShardedEngine::new(
            &data,
            ShardConfig::default()
                .with_shards(3)
                .with_engine(small_engines()),
        )
        .unwrap();
        // Out-of-range delete: typed error, nothing published.
        let bad = UpdateBatch {
            inserts: vec![],
            deletes: vec![data.len() as u32],
        };
        assert!(matches!(
            engine.ingest(&bad),
            Err(ShardError::Engine(EngineError::Index(_)))
        ));
        // Emptying the whole fleet is rejected up front.
        let drain = UpdateBatch {
            inserts: vec![],
            deletes: (0..data.len() as u32).collect(),
        };
        assert!(matches!(
            engine.ingest(&drain),
            Err(ShardError::Engine(EngineError::Index(_)))
        ));
        // An empty batch publishes nothing and reports the current gen.
        let report = engine.ingest(&UpdateBatch::new()).unwrap();
        assert_eq!(report.generation, 0);
        assert_eq!(report.shards_touched, 0);
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.data_len(), data.len());
        assert_eq!(
            engine.metrics().ingest.batches,
            0,
            "rejected and empty batches must not count as publishes"
        );
        engine.shutdown();
    }

    #[test]
    fn failed_reindex_leaves_the_fleet_untouched() {
        let data = cloud(200);
        let engine = ShardedEngine::new(
            &data,
            ShardConfig::default()
                .with_shards(3)
                .with_engine(small_engines()),
        )
        .unwrap();
        assert!(matches!(
            engine.reindex(&[]),
            Err(ShardError::Engine(EngineError::EmptyDataset))
        ));
        let dup = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert!(matches!(
            engine.reindex(&dup),
            Err(ShardError::Engine(EngineError::Index(_)))
        ));
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.data_len(), data.len());
        assert_eq!(engine.metrics().swaps, 0);
        let q = vec![Point::new(4.0, 4.0), Point::new(10.0, 6.0)];
        assert_eq!(
            engine.query(&q).unwrap().skyline,
            naive_full(&data, &QueryContext::new(&q)).skyline
        );
        engine.shutdown();
    }
}
