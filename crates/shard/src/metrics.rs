//! Router-side observability: per-query shard fan-out, pruning
//! effectiveness, merge workload, and end-to-end latency — plus the
//! aggregated fleet view over every shard engine's own metrics.

use ssq_engine::{LatencyHistogram, LatencySnapshot, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared counters for one [`ShardedEngine`](crate::ShardedEngine).
#[derive(Default)]
pub struct ShardMetrics {
    queries: AtomicU64,
    shards_queried: AtomicU64,
    shards_pruned: AtomicU64,
    merge_candidates: AtomicU64,
    /// Fleet generation currently routed to.
    generation: AtomicU64,
    /// Fleet-wide reindexes published (one per
    /// [`reindex`](crate::ShardedEngine::reindex), regardless of shard
    /// count — the per-engine swap counters in the folded engine view
    /// count each shard's install separately).
    swaps: AtomicU64,
    /// Wall-clock nanoseconds the most recent reindex took: partition
    /// plus every shard's index build.
    last_build_nanos: AtomicU64,
    latency: LatencyHistogram,
}

impl ShardMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Records one routed query: how many shards ran, how many the
    /// pruning bound skipped, how many candidates the merge saw, and the
    /// end-to-end latency (routing + slowest shard + merge).
    pub fn record_query(&self, queried: u64, pruned: u64, candidates: u64, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.shards_queried.fetch_add(queried, Ordering::Relaxed);
        self.shards_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.merge_candidates
            .fetch_add(candidates, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records one published fleet reindex: the new generation and how
    /// long the partition + per-shard builds took.
    pub fn record_swap(&self, generation: u64, build: Duration) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.last_build_nanos.store(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy, with the per-shard engine snapshots folded
    /// into one fleet-wide [`MetricsSnapshot`].
    pub fn snapshot<'a>(
        &self,
        engines: impl IntoIterator<Item = &'a MetricsSnapshot>,
    ) -> ShardedMetricsSnapshot {
        let mut fleet = MetricsSnapshot::default();
        for snap in engines {
            fleet.absorb(snap);
        }
        ShardedMetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            shards_queried: self.shards_queried.load(Ordering::Relaxed),
            shards_pruned: self.shards_pruned.load(Ordering::Relaxed),
            merge_candidates: self.merge_candidates.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            last_build: Duration::from_nanos(self.last_build_nanos.load(Ordering::Relaxed)),
            latency: self.latency.snapshot(),
            engines: fleet,
        }
    }
}

/// A point-in-time copy of a sharded engine's metrics.
#[derive(Clone)]
pub struct ShardedMetricsSnapshot {
    /// Queries routed.
    pub queries: u64,
    /// Shard sub-queries actually executed, summed over queries.
    pub shards_queried: u64,
    /// Shards skipped by the dominance bound, summed over queries.
    pub shards_pruned: u64,
    /// Candidates fed to the cross-shard merge, summed over queries.
    pub merge_candidates: u64,
    /// Fleet generation being routed to when the snapshot was taken.
    pub generation: u64,
    /// Fleet reindexes published (one per router-level
    /// [`reindex`](crate::ShardedEngine::reindex) call).
    pub swaps: u64,
    /// Wall-clock duration of the most recent reindex (partition plus
    /// every shard's index build); zero until the first reindex.
    pub last_build: Duration,
    /// End-to-end latency histogram of routed queries.
    pub latency: LatencySnapshot,
    /// Every shard engine's counters folded into one fleet view
    /// (including per-engine swap counts and queries per generation).
    pub engines: MetricsSnapshot,
}

impl ShardedMetricsSnapshot {
    /// Mean shards executed per query, or 0.0 before any query.
    pub fn mean_fanout(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.shards_queried as f64 / self.queries as f64
        }
    }

    /// Fraction of shard visits avoided by pruning, or 0.0.
    pub fn prune_rate(&self) -> f64 {
        let total = self.shards_queried + self.shards_pruned;
        if total == 0 {
            0.0
        } else {
            self.shards_pruned as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_and_prune_rates() {
        let m = ShardMetrics::new();
        m.record_query(4, 0, 10, Duration::from_micros(5));
        m.record_query(1, 3, 3, Duration::from_micros(2));
        let no_engines: [&MetricsSnapshot; 0] = [];
        let s = m.snapshot(no_engines);
        assert_eq!(s.queries, 2);
        assert_eq!(s.shards_queried, 5);
        assert_eq!(s.shards_pruned, 3);
        assert_eq!(s.merge_candidates, 13);
        assert!((s.mean_fanout() - 2.5).abs() < 1e-12);
        assert!((s.prune_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.engines.queries(), 0);
        assert_eq!(s.generation, 0);
        assert_eq!(s.swaps, 0);
        assert_eq!(s.last_build, Duration::ZERO);
    }

    #[test]
    fn swap_accounting() {
        let m = ShardMetrics::new();
        m.record_swap(1, Duration::from_millis(9));
        m.record_swap(2, Duration::from_millis(4));
        let no_engines: [&MetricsSnapshot; 0] = [];
        let s = m.snapshot(no_engines);
        assert_eq!(s.generation, 2);
        assert_eq!(s.swaps, 2);
        assert_eq!(s.last_build, Duration::from_millis(4));
    }
}
