//! Router-side observability: per-query shard fan-out, pruning
//! effectiveness, merge workload, and end-to-end latency — plus the
//! aggregated fleet view over every shard engine's own metrics.

use ssq_core::DeltaStats;
use ssq_engine::{IngestCounters, LatencyHistogram, LatencySnapshot, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared counters for one [`ShardedEngine`](crate::ShardedEngine).
#[derive(Default)]
pub struct ShardMetrics {
    queries: AtomicU64,
    shards_queried: AtomicU64,
    shards_pruned: AtomicU64,
    merge_candidates: AtomicU64,
    /// Fleet generation currently routed to.
    generation: AtomicU64,
    /// Fleet-wide reindexes published (one per
    /// [`reindex`](crate::ShardedEngine::reindex), regardless of shard
    /// count — the per-engine swap counters in the folded engine view
    /// count each shard's install separately).
    swaps: AtomicU64,
    /// Wall-clock nanoseconds the most recent reindex took: partition
    /// plus every shard's index build.
    last_build_nanos: AtomicU64,
    // Fleet-level delta ingest (see ShardedEngine::ingest). These count
    // *batches* routed through the router, not per-shard applications:
    // a batch touching three shards is one incremental batch here.
    ingest_batches: AtomicU64,
    ingest_inserts: AtomicU64,
    ingest_deletes: AtomicU64,
    ingest_incremental: AtomicU64,
    ingest_rebuilds: AtomicU64,
    ingest_dirty_cells: AtomicU64,
    ingest_last_ops: AtomicU64,
    ingest_last_build_nanos: AtomicU64,
    /// Points that changed shard ownership across all rebalances.
    rebalance_moves: AtomicU64,
    latency: LatencyHistogram,
}

impl ShardMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Records one routed query: how many shards ran, how many the
    /// pruning bound skipped, how many candidates the merge saw, and the
    /// end-to-end latency (routing + slowest shard + merge).
    pub fn record_query(&self, queried: u64, pruned: u64, candidates: u64, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.shards_queried.fetch_add(queried, Ordering::Relaxed);
        self.shards_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.merge_candidates
            .fetch_add(candidates, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records one published fleet reindex: the new generation and how
    /// long the partition + per-shard builds took.
    pub fn record_swap(&self, generation: u64, build: Duration) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.last_build_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Records one fleet delta publish: the aggregated per-shard
    /// maintenance stats, the wall-clock cost of the publish (routing +
    /// every touched shard's delta build + any rebalance rebuilds), and
    /// how many points a rebalance moved between shards (zero when none
    /// fired).
    pub fn record_ingest(&self, stats: &DeltaStats, build: Duration, moves: u64) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_inserts
            .fetch_add(stats.inserts as u64, Ordering::Relaxed);
        self.ingest_deletes
            .fetch_add(stats.deletes as u64, Ordering::Relaxed);
        if stats.incremental {
            self.ingest_incremental.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ingest_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        self.ingest_dirty_cells
            .fetch_add(stats.dirty_cells as u64, Ordering::Relaxed);
        self.ingest_last_ops
            .store((stats.inserts + stats.deletes) as u64, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.ingest_last_build_nanos.store(nanos, Ordering::Relaxed);
        self.rebalance_moves.fetch_add(moves, Ordering::Relaxed);
    }

    /// A point-in-time copy, with the per-shard engine snapshots folded
    /// into one fleet-wide [`MetricsSnapshot`].
    pub fn snapshot<'a>(
        &self,
        engines: impl IntoIterator<Item = &'a MetricsSnapshot>,
    ) -> ShardedMetricsSnapshot {
        let mut fleet = MetricsSnapshot::default();
        for snap in engines {
            fleet.absorb(snap);
        }
        ShardedMetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            shards_queried: self.shards_queried.load(Ordering::Relaxed),
            shards_pruned: self.shards_pruned.load(Ordering::Relaxed),
            merge_candidates: self.merge_candidates.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            last_build: Duration::from_nanos(self.last_build_nanos.load(Ordering::Relaxed)),
            ingest: IngestCounters {
                batches: self.ingest_batches.load(Ordering::Relaxed),
                inserts: self.ingest_inserts.load(Ordering::Relaxed),
                deletes: self.ingest_deletes.load(Ordering::Relaxed),
                incremental: self.ingest_incremental.load(Ordering::Relaxed),
                rebuilds: self.ingest_rebuilds.load(Ordering::Relaxed),
                dirty_cells: self.ingest_dirty_cells.load(Ordering::Relaxed),
                shed: 0,
                last_batch_ops: self.ingest_last_ops.load(Ordering::Relaxed),
                last_build: Duration::from_nanos(
                    self.ingest_last_build_nanos.load(Ordering::Relaxed),
                ),
                rebalance_moves: self.rebalance_moves.load(Ordering::Relaxed),
            },
            latency: self.latency.snapshot(),
            engines: fleet,
        }
    }
}

/// A point-in-time copy of a sharded engine's metrics.
#[derive(Clone)]
pub struct ShardedMetricsSnapshot {
    /// Queries routed.
    pub queries: u64,
    /// Shard sub-queries actually executed, summed over queries.
    pub shards_queried: u64,
    /// Shards skipped by the dominance bound, summed over queries.
    pub shards_pruned: u64,
    /// Candidates fed to the cross-shard merge, summed over queries.
    pub merge_candidates: u64,
    /// Fleet generation being routed to when the snapshot was taken.
    pub generation: u64,
    /// Fleet reindexes published (one per router-level
    /// [`reindex`](crate::ShardedEngine::reindex) call).
    pub swaps: u64,
    /// Wall-clock duration of the most recent reindex (partition plus
    /// every shard's index build); zero until the first reindex.
    pub last_build: Duration,
    /// Fleet-level delta ingest counters
    /// ([`ingest`](crate::ShardedEngine::ingest)): batches routed,
    /// operations applied, incremental-vs-rebuild outcomes, last publish
    /// cost, and points moved by shard rebalancing. Distinct from
    /// `engines.ingest`, which counts batches applied *directly* to a
    /// shard engine's own catalog (the router builds and installs shard
    /// snapshots itself, so those stay zero under router-driven ingest).
    pub ingest: IngestCounters,
    /// End-to-end latency histogram of routed queries.
    pub latency: LatencySnapshot,
    /// Every shard engine's counters folded into one fleet view
    /// (including per-engine swap counts and queries per generation).
    pub engines: MetricsSnapshot,
}

impl ShardedMetricsSnapshot {
    /// Mean shards executed per query, or 0.0 before any query.
    pub fn mean_fanout(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.shards_queried as f64 / self.queries as f64
        }
    }

    /// Fraction of shard visits avoided by pruning, or 0.0.
    pub fn prune_rate(&self) -> f64 {
        let total = self.shards_queried + self.shards_pruned;
        if total == 0 {
            0.0
        } else {
            self.shards_pruned as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_and_prune_rates() {
        let m = ShardMetrics::new();
        m.record_query(4, 0, 10, Duration::from_micros(5));
        m.record_query(1, 3, 3, Duration::from_micros(2));
        let no_engines: [&MetricsSnapshot; 0] = [];
        let s = m.snapshot(no_engines);
        assert_eq!(s.queries, 2);
        assert_eq!(s.shards_queried, 5);
        assert_eq!(s.shards_pruned, 3);
        assert_eq!(s.merge_candidates, 13);
        assert!((s.mean_fanout() - 2.5).abs() < 1e-12);
        assert!((s.prune_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.engines.queries(), 0);
        assert_eq!(s.generation, 0);
        assert_eq!(s.swaps, 0);
        assert_eq!(s.last_build, Duration::ZERO);
    }

    #[test]
    fn ingest_accounting() {
        let m = ShardMetrics::new();
        m.record_ingest(
            &DeltaStats {
                inserts: 10,
                deletes: 4,
                incremental: true,
                dirty_cells: 37,
            },
            Duration::from_micros(800),
            0,
        );
        m.record_ingest(
            &DeltaStats {
                inserts: 2,
                deletes: 0,
                incremental: false,
                dirty_cells: 0,
            },
            Duration::from_micros(300),
            5,
        );
        let no_engines: [&MetricsSnapshot; 0] = [];
        let s = m.snapshot(no_engines);
        assert_eq!(s.ingest.batches, 2);
        assert_eq!(s.ingest.inserts, 12);
        assert_eq!(s.ingest.deletes, 4);
        assert_eq!(s.ingest.incremental, 1);
        assert_eq!(s.ingest.rebuilds, 1);
        assert_eq!(s.ingest.dirty_cells, 37);
        assert_eq!(s.ingest.shed, 0);
        assert_eq!(s.ingest.last_batch_ops, 2);
        assert_eq!(s.ingest.last_build, Duration::from_micros(300));
        assert_eq!(s.ingest.rebalance_moves, 5);
        // The folded engine view stays untouched by router-level ingest.
        assert_eq!(s.engines.ingest.batches, 0);
    }

    #[test]
    fn swap_accounting() {
        let m = ShardMetrics::new();
        m.record_swap(1, Duration::from_millis(9));
        m.record_swap(2, Duration::from_millis(4));
        let no_engines: [&MetricsSnapshot; 0] = [];
        let s = m.snapshot(no_engines);
        assert_eq!(s.generation, 2);
        assert_eq!(s.swaps, 2);
        assert_eq!(s.last_build, Duration::from_millis(4));
    }
}
