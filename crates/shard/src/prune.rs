//! The geometric shard-pruning bound.
//!
//! For a shard whose points all lie inside rect `R`, and a query whose
//! anchors are the convex-hull vertices `CHv(Q)` (by Theorem 2 of the
//! paper only those matter), the vector
//! `lb = (mindist(R, q_1), …, mindist(R, q_m))` is a component-wise
//! lower bound on the distance vector of *every* point in the shard.
//! If some already-known point `p` has `d(p, q_i) <= lb_i` for all `i`
//! and `d(p, q_j) < lb_j` for some `j`, then `p` dominates every point
//! the shard could possibly contain — strictly closer to `q_j` than any
//! shard point can be, and no farther from the rest — so the shard
//! cannot contribute to the global skyline and is skipped without being
//! queried. This is the shard-granular form of the visible-region
//! pruning of Lemmas 5 and 6: strictness is checked against the *bound*
//! rather than `p`'s own vector because a shard point may attain `lb`
//! exactly (e.g. on the rect boundary), and ties never dominate.

use ssq_geom::{Point, Rect};

/// The component-wise best-possible (smallest) distance vector from any
/// point inside `rect` to each anchor of `CHv(Q)`.
pub fn rect_lower_bounds(rect: &Rect, anchors: &[Point]) -> Vec<f64> {
    anchors.iter().map(|&q| rect.mindist(q)).collect()
}

/// `true` when a point with distance vector `v` dominates every point a
/// shard with lower-bound vector `lb` could hold: `v <= lb` everywhere
/// and `v < lb` somewhere.
pub fn dominates_rect(v: &[f64], lb: &[f64]) -> bool {
    debug_assert_eq!(v.len(), lb.len());
    let mut strict = false;
    for (&a, &b) in v.iter().zip(lb) {
        if a > b {
            return false;
        }
        if a < b {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bounds_are_zero_inside_and_positive_outside() {
        let rect = Rect::from_corners(Point::new(2.0, 2.0), Point::new(4.0, 4.0));
        let anchors = [
            Point::new(3.0, 3.0),
            Point::new(0.0, 3.0),
            Point::new(7.0, 4.0),
        ];
        let lb = rect_lower_bounds(&rect, &anchors);
        assert_eq!(lb, vec![0.0, 2.0, 3.0]);
    }

    #[test]
    fn domination_needs_strictness_against_the_bound() {
        // Equal on every component: no shard point can be *dominated*
        // by a tie, so the shard must not be pruned.
        assert!(!dominates_rect(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(dominates_rect(&[1.0, 1.5], &[1.0, 2.0]));
        assert!(!dominates_rect(&[1.0, 2.5], &[1.5, 2.0]));
    }

    #[test]
    fn bound_is_sound_for_every_point_in_the_rect() {
        // Any point inside the rect has a distance vector >= lb
        // component-wise, so a vector dominating lb dominates them all.
        let rect = Rect::from_corners(Point::new(5.0, 5.0), Point::new(6.0, 7.0));
        let anchors = [Point::new(0.0, 0.0), Point::new(9.0, 1.0)];
        let lb = rect_lower_bounds(&rect, &anchors);
        for i in 0..=10 {
            for j in 0..=10 {
                let p = Point::new(5.0 + i as f64 / 10.0, 5.0 + 2.0 * j as f64 / 10.0);
                for (k, &q) in anchors.iter().enumerate() {
                    assert!(p.distance(q) >= lb[k] - 1e-12);
                }
            }
        }
    }
}
