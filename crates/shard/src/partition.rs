//! Spatial partitioning of the dataset into shards.
//!
//! Two policies over the point set's bounding rect:
//!
//! * **Grid** — the universe is cut into an `rows × cols` lattice whose
//!   factor pair is closest to square (more cells along the longer
//!   axis); points land in cells by coordinates, empty cells are
//!   dropped. Cheap, and shard rects tile the space, which makes the
//!   router's lower-bound pruning effective for queries near a corner.
//! * **Kd-split** — recursive median splits along the longer axis,
//!   dividing the target shard count proportionally, so every shard
//!   holds nearly the same number of points regardless of skew.
//!   Balanced load, at the cost of skinnier rects under heavy skew.
//!
//! Either way a [`ShardSpec`] carries the *tight* MBR of the points it
//! actually holds (not the cell boundary) — the tighter the rect, the
//! stronger the router's pruning bound.

use ssq_geom::{Point, Rect};

/// How the dataset is cut into shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Near-square lattice over the bounding rect; empty cells dropped.
    Grid,
    /// Recursive median splits along the longer axis (balanced counts).
    KdSplit,
}

impl PartitionPolicy {
    /// All policies, for sweeps and tests.
    pub const ALL: [PartitionPolicy; 2] = [PartitionPolicy::Grid, PartitionPolicy::KdSplit];

    /// Short stable name (`grid` / `kd`).
    pub fn name(self) -> &'static str {
        match self {
            PartitionPolicy::Grid => "grid",
            PartitionPolicy::KdSplit => "kd",
        }
    }
}

impl std::fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PartitionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<PartitionPolicy, String> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Ok(PartitionPolicy::Grid),
            "kd" | "kdsplit" | "kd-split" => Ok(PartitionPolicy::KdSplit),
            other => Err(format!("unknown partition policy `{other}` (grid | kd)")),
        }
    }
}

/// One shard's slice of the dataset.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Global ids (indexes into the original point slice) of the points
    /// assigned here, ascending.
    pub ids: Vec<u32>,
    /// The points themselves, parallel to `ids`.
    pub points: Vec<Point>,
    /// Tight bounding rect of `points` — the geometric footprint the
    /// router prunes against.
    pub rect: Rect,
}

impl ShardSpec {
    fn from_ids(mut ids: Vec<u32>, data: &[Point]) -> ShardSpec {
        ids.sort_unstable();
        let points: Vec<Point> = ids.iter().map(|&i| data[i as usize]).collect();
        ShardSpec {
            rect: Rect::bounding(points.iter().copied()),
            ids,
            points,
        }
    }

    /// Number of points in this shard.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the shard holds no points (never produced by
    /// [`partition`], which drops empties).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Splits `data` into at most `shards` non-empty [`ShardSpec`]s under
/// `policy`. Fewer shards come back only when there are fewer points
/// than requested shards (every returned shard is non-empty). Panics if
/// `shards == 0` or `data` is empty — the router validates both first.
pub fn partition(data: &[Point], shards: usize, policy: PartitionPolicy) -> Vec<ShardSpec> {
    assert!(shards > 0, "shard count must be nonzero");
    assert!(!data.is_empty(), "cannot partition an empty dataset");
    let k = shards.min(data.len());
    if k == 1 {
        return vec![ShardSpec::from_ids((0..data.len() as u32).collect(), data)];
    }
    match policy {
        PartitionPolicy::Grid => grid_partition(data, k),
        PartitionPolicy::KdSplit => kd_partition(data, k),
    }
}

/// The factor pair `(rows, cols)` of `k` minimizing `|rows - cols|`,
/// oriented so the longer rect axis gets the larger count.
fn lattice_shape(k: usize, rect: &Rect) -> (usize, usize) {
    let mut best: (usize, usize) = (1, k);
    for a in 1..=k {
        if k.is_multiple_of(a) {
            let b = k / a;
            if a.abs_diff(b) < best.0.abs_diff(best.1) {
                best = (a, b);
            }
        }
    }
    let (small, large) = (best.0.min(best.1), best.0.max(best.1));
    if rect.height() > rect.width() {
        (large, small) // more rows along the taller axis
    } else {
        (small, large)
    }
}

fn grid_partition(data: &[Point], k: usize) -> Vec<ShardSpec> {
    let universe = Rect::bounding(data.iter().copied());
    let (rows, cols) = lattice_shape(k, &universe);
    let w = universe.width().max(f64::MIN_POSITIVE);
    let h = universe.height().max(f64::MIN_POSITIVE);
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); rows * cols];
    for (i, p) in data.iter().enumerate() {
        let cx = (((p.x - universe.min.x) / w * cols as f64) as usize).min(cols - 1);
        let cy = (((p.y - universe.min.y) / h * rows as f64) as usize).min(rows - 1);
        cells[cy * cols + cx].push(i as u32);
    }
    cells
        .into_iter()
        .filter(|ids| !ids.is_empty())
        .map(|ids| ShardSpec::from_ids(ids, data))
        .collect()
}

fn kd_partition(data: &[Point], k: usize) -> Vec<ShardSpec> {
    let mut out = Vec::with_capacity(k);
    let ids: Vec<u32> = (0..data.len() as u32).collect();
    kd_split(ids, k, data, &mut out);
    out
}

/// Recursively splits `ids` into `k` chunks: the longer axis of the
/// chunk's MBR is cut at the proportional rank so the two halves are
/// asked for `⌊k/2⌋` and `⌈k/2⌉` shards with point counts to match.
fn kd_split(mut ids: Vec<u32>, k: usize, data: &[Point], out: &mut Vec<ShardSpec>) {
    if k <= 1 || ids.len() <= 1 {
        out.push(ShardSpec::from_ids(ids, data));
        return;
    }
    let rect = Rect::bounding(ids.iter().map(|&i| data[i as usize]));
    let by_x = rect.width() >= rect.height();
    let k_lo = k / 2;
    // Rank proportional to the shard budget of the low side; clamp so
    // both sides stay non-empty.
    let cut = (ids.len() * k_lo / k).clamp(1, ids.len() - 1);
    ids.select_nth_unstable_by(cut, |&a, &b| {
        let (pa, pb) = (data[a as usize], data[b as usize]);
        if by_x {
            pa.x.total_cmp(&pb.x).then(pa.y.total_cmp(&pb.y))
        } else {
            pa.y.total_cmp(&pb.y).then(pa.x.total_cmp(&pb.x))
        }
    });
    let hi = ids.split_off(cut);
    kd_split(ids, k_lo, data, out);
    kd_split(hi, k - k_lo, data, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Point> {
        // Deterministic, duplicate-free, irregular.
        (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(seed | 1) % 997) as f64 / 99.7;
                let y = ((i as u64).wrapping_mul(0x9E3779B9) % 991) as f64 / 99.1;
                Point::new(x + 1e-6 * i as f64, y)
            })
            .collect()
    }

    fn assert_exact_cover(specs: &[ShardSpec], n: usize) {
        let mut all: Vec<u32> = specs.iter().flat_map(|s| s.ids.iter().copied()).collect();
        all.sort_unstable();
        let want: Vec<u32> = (0..n as u32).collect();
        assert_eq!(all, want, "partition must cover every point exactly once");
        for s in specs {
            assert!(!s.is_empty());
            assert_eq!(s.ids.len(), s.points.len());
            for p in &s.points {
                assert!(s.rect.contains(*p), "tight rect excludes its own point");
            }
        }
    }

    #[test]
    fn both_policies_cover_exactly() {
        let data = cloud(500, 0xA1);
        for policy in PartitionPolicy::ALL {
            for k in [1, 2, 3, 4, 7, 8, 16] {
                let specs = partition(&data, k, policy);
                assert!(specs.len() <= k);
                assert!(!specs.is_empty());
                assert_exact_cover(&specs, data.len());
            }
        }
    }

    #[test]
    fn kd_split_is_balanced_and_exact() {
        let data = cloud(512, 0xB2);
        for k in [2, 3, 4, 5, 8] {
            let specs = partition(&data, k, PartitionPolicy::KdSplit);
            assert_eq!(specs.len(), k, "kd must hit the target when n >= k");
            let (lo, hi) = specs.iter().fold((usize::MAX, 0), |(lo, hi), s| {
                (lo.min(s.len()), hi.max(s.len()))
            });
            assert!(
                hi <= 2 * lo + 1,
                "k={k}: shard sizes too skewed ({lo}..{hi})"
            );
        }
    }

    #[test]
    fn more_shards_than_points_collapses() {
        let data = cloud(3, 0xC3);
        for policy in PartitionPolicy::ALL {
            let specs = partition(&data, 8, policy);
            assert!(specs.len() <= 3);
            assert_exact_cover(&specs, 3);
        }
    }

    #[test]
    fn single_point_dataset() {
        let data = vec![Point::new(1.0, 2.0)];
        for policy in PartitionPolicy::ALL {
            let specs = partition(&data, 4, policy);
            assert_eq!(specs.len(), 1);
            assert_eq!(specs[0].ids, vec![0]);
        }
    }

    #[test]
    fn grid_orients_along_the_longer_axis() {
        let wide = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 1.0));
        assert_eq!(lattice_shape(8, &wide), (2, 4));
        let tall = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 10.0));
        assert_eq!(lattice_shape(8, &tall), (4, 2));
        assert_eq!(lattice_shape(7, &wide), (1, 7));
    }

    #[test]
    fn policy_round_trips_through_strings() {
        for policy in PartitionPolicy::ALL {
            assert_eq!(policy.name().parse::<PartitionPolicy>().unwrap(), policy);
        }
        assert!("voronoi".parse::<PartitionPolicy>().is_err());
    }
}
