//! Metric-generic spatial skylines.
//!
//! The paper's problem definition (§2.2) only requires a distance metric
//! `D(·,·)` obeying the triangle inequality; the geometric algorithms then
//! specialize to Euclidean distance (bisectors, circles, Voronoi
//! diagrams). This module keeps the *general* definition available: an
//! exact skyline for any [`Metric`], used both as a library feature (L1
//! road-grid distances are a natural fit for the motivating examples) and
//! as the oracle for metric-sensitivity tests.
//!
//! Note that the convex-hull reduction (Theorem 2) is **Euclidean-only**
//! (its proof uses perpendicular bisector half-planes), so the generic
//! scan uses the full query set.

use ssq_geom::{Metric, Point};

use crate::query::dominates;
use crate::scratch::DistanceScratch;
use crate::stats::{QueryStats, SkylineResult};

/// Exact spatial skyline of `points` w.r.t. `query` under an arbitrary
/// metric, via the sorted scan (`O(|P| · |S| · |Q|)` plus a sort).
///
/// Correctness of the single pass: under any metric, dominance implies a
/// strictly smaller distance sum, so a dominator always precedes its
/// dominatees in ascending-sum order.
pub fn naive_metric<M: Metric>(points: &[Point], query: &[Point], metric: M) -> SkylineResult {
    assert!(!query.is_empty(), "need at least one query point");
    let mut stats = QueryStats::default();

    let vectors: Vec<Vec<f64>> = points
        .iter()
        .map(|&p| {
            stats.distance_computations += query.len() as u64;
            stats.allocations += 1;
            query.iter().map(|&q| metric.distance(p, q)).collect()
        })
        .collect();
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    let sums: Vec<f64> = vectors.iter().map(|v| v.iter().sum()).collect();
    order.sort_by(|&a, &b| sums[a as usize].total_cmp(&sums[b as usize]));

    let mut skyline: Vec<u32> = Vec::new();
    'next: for &i in &order {
        stats.points_examined += 1;
        for &s in &skyline {
            stats.dominance_checks += 1;
            if dominates(&vectors[s as usize], &vectors[i as usize]) {
                continue 'next;
            }
        }
        skyline.push(i);
    }
    skyline.sort_unstable();
    SkylineResult { skyline, stats }
}

/// The kernel-path metric scan: identical output to [`naive_metric`], but
/// every distance vector is a row of the scratch arena. Rows hold **true**
/// metric distances (the squared shortcut is Euclidean-only); the win here
/// is the allocation-free steady state, not skipped square roots.
pub fn naive_metric_with<M: Metric>(
    points: &[Point],
    query: &[Point],
    metric: M,
    scratch: &mut DistanceScratch,
) -> SkylineResult {
    assert!(!query.is_empty(), "need at least one query point");
    let mut stats = QueryStats::default();
    scratch.begin(query.len());
    for (i, &p) in points.iter().enumerate() {
        scratch.push_row_with(i as u32, false, query, |q| metric.distance(p, q));
    }
    stats.distance_computations += (points.len() * query.len()) as u64;
    stats.points_examined += points.len() as u64;
    let skyline = scratch.resolve(&mut stats).to_vec();
    stats.allocations += scratch.take_allocations();
    SkylineResult { skyline, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_geom::{Chebyshev, Euclidean, Manhattan};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn euclidean_matches_the_standard_oracle() {
        let points = pseudorandom(80, 1);
        let q = pseudorandom(4, 2);
        let ctx = crate::query::QueryContext::new(&q);
        let standard = crate::naive::naive_full(&points, &ctx);
        let generic = naive_metric(&points, &q, Euclidean);
        assert_eq!(standard.skyline, generic.skyline);
    }

    #[test]
    fn lemma1_holds_for_all_metrics() {
        // The nearest neighbour of each query point is a skyline point
        // under ANY metric — Lemma 1's proof never uses geometry.
        let points = pseudorandom(60, 3);
        let q = pseudorandom(3, 4);
        fn check<M: Metric>(points: &[Point], q: &[Point], m: M) {
            let sky = naive_metric(points, q, m);
            for &qi in q {
                let nn = (0..points.len() as u32)
                    .min_by(|&a, &b| {
                        m.distance(points[a as usize], qi)
                            .total_cmp(&m.distance(points[b as usize], qi))
                    })
                    .unwrap();
                assert!(sky.contains(nn), "NN under metric must be skyline");
            }
        }
        check(&points, &q, Euclidean);
        check(&points, &q, Manhattan);
        check(&points, &q, Chebyshev);
    }

    #[test]
    fn kernel_variant_matches_for_every_metric() {
        let mut scratch = DistanceScratch::new();
        for seed in 0..8u64 {
            let points = pseudorandom(70, 10 + seed);
            let q = pseudorandom(1 + (seed as usize % 4), 40 + seed);
            fn check<M: Metric + Copy>(
                points: &[Point],
                q: &[Point],
                m: M,
                scratch: &mut DistanceScratch,
            ) {
                let scalar = naive_metric(points, q, m);
                let kernel = naive_metric_with(points, q, m, scratch);
                assert_eq!(scalar.skyline, kernel.skyline);
            }
            check(&points, &q, Euclidean, &mut scratch);
            check(&points, &q, Manhattan, &mut scratch);
            check(&points, &q, Chebyshev, &mut scratch);
        }
    }

    #[test]
    fn metrics_can_disagree_on_the_skyline() {
        // The skyline genuinely depends on the metric: find an instance
        // where L1 and L2 differ (they exist in abundance).
        let mut found = false;
        for seed in 0..50u64 {
            let points = pseudorandom(40, 100 + seed);
            let q = pseudorandom(3, 200 + seed);
            let l2 = naive_metric(&points, &q, Euclidean);
            let l1 = naive_metric(&points, &q, Manhattan);
            if l2.skyline != l1.skyline {
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one L1/L2 disagreement");
    }

    #[test]
    fn skyline_members_pairwise_incomparable_under_metric() {
        let points = pseudorandom(50, 7);
        let q = pseudorandom(4, 8);
        let m = Manhattan;
        let sky = naive_metric(&points, &q, m);
        for &a in &sky.skyline {
            for &b in &sky.skyline {
                if a == b {
                    continue;
                }
                let va: Vec<f64> = q
                    .iter()
                    .map(|&x| m.distance(points[a as usize], x))
                    .collect();
                let vb: Vec<f64> = q
                    .iter()
                    .map(|&x| m.distance(points[b as usize], x))
                    .collect();
                assert!(!dominates(&va, &vb));
            }
        }
    }
}
