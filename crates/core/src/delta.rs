//! Update batches: the unit of incremental index maintenance.
//!
//! The paper builds its indexes once per dataset (§4, §7); a serving
//! system cannot. An [`UpdateBatch`] is the delta applied to one
//! generation to produce the next: points to insert and point ids to
//! delete. Batches are validated against the generation they apply to
//! ([`UpdateBatch::validate`]) and then *normalized*
//! ([`UpdateBatch::normalize`]) — deletes sorted and deduplicated,
//! inserts Hilbert-ordered — so that
//!
//! * incremental structure maintenance walks short locate paths (each
//!   operation lands next to the previous one on the Hilbert curve), and
//! * the resulting point order is a deterministic function of the old
//!   generation and the batch, which is what lets a delta-built snapshot
//!   be compared bit-for-bit against a full rebuild over the same points.
//!
//! ## Id semantics
//!
//! Applying a batch to a generation with points `P` (ids `0..n`) yields
//! `P' = survivors ++ inserts`: surviving points keep their relative
//! order and are renumbered densely (`id' = id - |{deleted < id}|`),
//! then normalized inserts follow. Delete ids always refer to the *old*
//! generation.

use ssq_delaunay::hilbert;
use ssq_geom::{Point, Rect};

/// A batch of point insertions and deletions, applied atomically to one
/// snapshot generation to produce the next.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    /// Points to add. After [`UpdateBatch::normalize`] these are in
    /// Hilbert order, and their new ids are `n_survivors + position`.
    pub inserts: Vec<Point>,
    /// Ids (in the generation the batch applies to) of points to remove.
    pub deletes: Vec<u32>,
}

/// Why an [`UpdateBatch`] cannot be applied to a generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A delete id is `>=` the generation's point count.
    DeleteOutOfRange(u32),
    /// An inserted point has a non-finite coordinate.
    NonFiniteInsert(usize),
    /// The batch would delete every point and insert none; an index over
    /// zero points has no generation to publish.
    WouldEmpty,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::DeleteOutOfRange(id) => write!(f, "delete id {id} out of range"),
            BatchError::NonFiniteInsert(i) => write!(f, "insert #{i} has a non-finite coordinate"),
            BatchError::WouldEmpty => write!(f, "batch would leave the index empty"),
        }
    }
}

impl std::error::Error for BatchError {}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// `true` when the batch contains no operations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of operations.
    pub fn op_count(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Checks the batch against a generation of `n` points. Duplicate
    /// delete ids are allowed (normalization collapses them).
    pub fn validate(&self, n: usize) -> Result<(), BatchError> {
        for &d in &self.deletes {
            if d as usize >= n {
                return Err(BatchError::DeleteOutOfRange(d));
            }
        }
        for (i, p) in self.inserts.iter().enumerate() {
            if !p.is_finite() {
                return Err(BatchError::NonFiniteInsert(i));
            }
        }
        let distinct: std::collections::HashSet<u32> = self.deletes.iter().copied().collect();
        if distinct.len() >= n && self.inserts.is_empty() {
            return Err(BatchError::WouldEmpty);
        }
        Ok(())
    }

    /// Normalizes in place: deletes sorted ascending and deduplicated,
    /// inserts Hilbert-ordered over `bbox` (ties broken by original
    /// position, so normalization is deterministic).
    pub fn normalize(&mut self, bbox: &Rect) {
        self.deletes.sort_unstable();
        self.deletes.dedup();
        let order = self.insert_order(bbox);
        self.inserts = order.iter().map(|&j| self.inserts[j as usize]).collect();
    }

    /// The permutation [`normalize`](UpdateBatch::normalize) applies to
    /// the inserts over `bbox`: `order[k]` is the pre-normalization
    /// position of the point that ends up at position `k`. Exposed so a
    /// routing layer that tags inserts with external ids can permute the
    /// tags exactly as a downstream index's internal normalization will
    /// permute the points.
    pub fn insert_order(&self, bbox: &Rect) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.inserts.len() as u32).collect();
        order.sort_by_key(|&j| (hilbert::hilbert_index(self.inserts[j as usize], bbox), j));
        order
    }

    /// `true` when `normalize` has (or trivially would have) run: deletes
    /// strictly ascending. Insert order cannot be checked without the
    /// bbox, so this is a necessary-but-partial witness used in debug
    /// assertions.
    pub fn is_normalized(&self) -> bool {
        self.deletes.windows(2).all(|w| w[0] < w[1])
    }

    /// The monotone survivor renumbering for this (normalized) batch over
    /// `n` old points: `remap[old] = new` or `u32::MAX` for deleted ids.
    pub fn survivor_remap(&self, n: usize) -> Vec<u32> {
        debug_assert!(self.is_normalized());
        let mut remap = Vec::with_capacity(n);
        let mut di = 0usize;
        let mut next = 0u32;
        for old in 0..n as u32 {
            if di < self.deletes.len() && self.deletes[di] == old {
                remap.push(u32::MAX);
                di += 1;
            } else {
                remap.push(next);
                next += 1;
            }
        }
        remap
    }
}

/// What applying a batch to a [`crate::VoronoiIndex`] actually did —
/// surfaced through the engine's metrics so publish cost is observable
/// per generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Points inserted.
    pub inserts: usize,
    /// Points deleted.
    pub deletes: usize,
    /// `true` when the incremental path ran; `false` when the index fell
    /// back to a full rebuild (oversized batch, degenerate triangulation,
    /// or an operation the local repair could not express).
    pub incremental: bool,
    /// Voronoi cells recomputed (incremental path only).
    pub dirty_cells: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn validate_rejects_bad_batches() {
        let b = UpdateBatch {
            inserts: vec![],
            deletes: vec![5],
        };
        assert_eq!(b.validate(5), Err(BatchError::DeleteOutOfRange(5)));
        let b = UpdateBatch {
            inserts: vec![Point::new(f64::NAN, 0.0)],
            deletes: vec![],
        };
        assert_eq!(b.validate(5), Err(BatchError::NonFiniteInsert(0)));
        let b = UpdateBatch {
            inserts: vec![],
            deletes: vec![0, 1, 2, 1, 0],
        };
        assert_eq!(b.validate(3), Err(BatchError::WouldEmpty));
        assert!(b.validate(4).is_ok());
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut b = UpdateBatch {
            inserts: vec![
                Point::new(90.0, 90.0),
                Point::new(1.0, 1.0),
                Point::new(1.0, 1.0),
            ],
            deletes: vec![7, 3, 7, 1],
        };
        b.normalize(&bbox());
        assert_eq!(b.deletes, vec![1, 3, 7]);
        assert!(b.is_normalized());
        // Hilbert order puts the (1,1) duplicates (stable) before (90,90).
        assert_eq!(b.inserts[0], Point::new(1.0, 1.0));
        assert_eq!(b.inserts[1], Point::new(1.0, 1.0));
        assert_eq!(b.inserts[2], Point::new(90.0, 90.0));
        // Idempotent.
        let again = {
            let mut c = b.clone();
            c.normalize(&bbox());
            c
        };
        assert_eq!(again.deletes, b.deletes);
        assert_eq!(again.inserts, b.inserts);
    }

    #[test]
    fn survivor_remap_is_monotone() {
        let mut b = UpdateBatch {
            inserts: vec![],
            deletes: vec![0, 3],
        };
        b.normalize(&bbox());
        let remap = b.survivor_remap(5);
        assert_eq!(remap, vec![u32::MAX, 0, 1, u32::MAX, 2]);
    }
}
