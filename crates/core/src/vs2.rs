//! VS² — the Voronoi-based Spatial Skyline algorithm (paper §4.2, Fig. 7).
//!
//! VS² never touches an R-tree: it walks the Delaunay graph of the data
//! points, starting from `NN(q₁)` (a guaranteed skyline point by Lemma 1),
//! visiting points in ascending `mindist(p, CHv(Q))` order with the
//! two-phase Visited/Extracted heap discipline of Fig. 7, and pruning with
//! the rectangle `B` (the running intersection of the skyline points'
//! `MBR(SR(p, Q))` boxes): a point is only enqueued if it lies in `B` or
//! its Voronoi cell intersects `B`.
//!
//! # Expansion policies
//!
//! Fig. 7 line 16 only expands a point's neighbours when the skyline is
//! still empty or the point already has a skyline Voronoi neighbour.
//! Follow-up work (Son et al., SSTD 2009) showed this gate can miss
//! skyline points on adversarial inputs. [`VsExpansion`] therefore selects
//! between:
//!
//! * [`VsExpansion::Paper`] — the verbatim Fig. 7 gate, for reproducing
//!   the paper's cost numbers;
//! * [`VsExpansion::Safe`] (default) — expansion gated only by `B`.
//!   Completeness argument: every true skyline point stays inside `B` at
//!   all times, `B` is convex (hence connected), and the cells meeting a
//!   connected region form a connected subgraph of the Delaunay graph, so
//!   the traversal reaches every skyline point from `NN(q₁)`.
//!
//! Under either policy a **final key-ordered resolution pass** runs over
//! the collected set (see `query::resolve_candidates`), which makes the
//! output exact even when the graph traversal discovers a dominator
//! *after* one of its dominatees was popped (possible because a
//! low-`mindist` point can hide behind higher-`mindist` cells on the
//! graph). Neither policy ever produces a point outside the true skyline
//! after this pass; `Paper` may miss points, `Safe` provably does not.

use ssq_geom::circle::search_region_mbr;
use ssq_geom::kernel;

use crate::heap::MinHeap;
use crate::index::VoronoiIndex;
use crate::query::{dominated_by_any, resolve_candidates, Candidate, QueryContext};
use crate::scratch::DistanceScratch;
use crate::stats::{QueryStats, SkylineResult};

/// Neighbour-expansion policy for VS² — see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VsExpansion {
    /// Verbatim Fig. 7 line 16 (may miss skyline points on adversarial
    /// inputs; reproduces the paper's traversal exactly).
    Paper,
    /// Expansion gated only by the pruning rectangle `B` (provably exact).
    #[default]
    Safe,
}

/// Runs VS² with the default (provably exact) expansion policy.
pub fn vs2(index: &VoronoiIndex, ctx: &QueryContext) -> SkylineResult {
    vs2_with(index, ctx, VsExpansion::Safe, None)
}

/// The kernel-path VS²: identical output to [`vs2`] (Safe expansion), but
/// the traversal reuses the scratch arena's heap and flag buffers, keys
/// the heap by the **squared**-distance sum (no `sqrt` anywhere on the
/// traversal — sound because any monotone-under-dominance key yields the
/// same resolved skyline, see [`ssq_geom::kernel`]), and stores candidate
/// vectors as squared-distance rows. Steady-state queries allocate only
/// for the returned id vector.
pub fn vs2_kernel(
    index: &VoronoiIndex,
    ctx: &QueryContext,
    scratch: &mut DistanceScratch,
) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.reset_page_accesses();
    if index.is_empty() {
        return SkylineResult::default();
    }
    let n = index.len();
    let anchors = ctx.anchors();
    scratch.begin(anchors.len());
    let (mut visited, mut extracted) = scratch.take_flags(n);
    let mut heap = scratch.take_heap();

    let start = index.nearest(ctx.query()[0], 0);
    let mut b = search_region_mbr(index.point(start), anchors);
    heap.push(kernel::dist_sq_sum(index.point(start), anchors), start);
    stats.distance_computations += anchors.len() as u64;
    visited[start as usize] = true;

    while let Some((_, &p)) = heap.peek() {
        if extracted[p as usize] {
            // Second phase: pop, collect the survivor as an arena row and
            // tighten B (Safe policy — see `vs2_with` for the comments).
            heap.pop();
            let pt = index.point(p);
            if !b.contains(pt) {
                continue;
            }
            stats.points_examined += 1;
            scratch.push_row(p, ctx.hull().contains(pt), pt, anchors);
            stats.distance_computations += anchors.len() as u64;
            b = b.intersection(&search_region_mbr(pt, anchors));
        } else {
            // First phase: extract, enqueue the Voronoi neighbours.
            extracted[p as usize] = true;
            stats.entries_visited += 1;
            for &nb in index.neighbors(p) {
                if visited[nb as usize] {
                    continue;
                }
                let nbp = index.point(nb);
                if b.contains(nbp) || index.cell_intersects_rect(nb, &b) {
                    visited[nb as usize] = true;
                    heap.push(kernel::dist_sq_sum(nbp, anchors), nb);
                    stats.distance_computations += anchors.len() as u64;
                }
            }
        }
    }

    scratch.restore_flags(visited, extracted);
    scratch.restore_heap(heap);
    let skyline = scratch.resolve(&mut stats).to_vec();
    stats.node_accesses = index.page_accesses();
    stats.allocations += scratch.take_allocations();
    SkylineResult { skyline, stats }
}

/// Runs VS² with an explicit expansion policy and an optional walk hint
/// (a point index near `q₁`, e.g. carried over from a previous query).
pub fn vs2_with(
    index: &VoronoiIndex,
    ctx: &QueryContext,
    expansion: VsExpansion,
    start_hint: Option<u32>,
) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.reset_page_accesses();
    if index.is_empty() {
        return SkylineResult::default();
    }
    let n = index.len();
    let anchors = ctx.anchors();

    // Fig. 7 lines 03-05: start at NN(q1), initialize B from its search
    // region.
    let start = index.nearest(ctx.query()[0], start_hint.unwrap_or(0));
    let mut b = search_region_mbr(index.point(start), anchors);

    let mut visited = vec![false; n];
    let mut extracted = vec![false; n];
    let mut in_skyline = vec![false; n];
    // Paper mode resolves dominance in-loop (the gate on line 16 needs to
    // know skyline membership during the traversal); Safe mode defers all
    // dominance work to one exact key-ordered pass at the end and instead
    // tightens B with EVERY surviving popped point — sound because every
    // true skyline point lies inside MBR(SR(x, Q)) of *any* data point x
    // (it beats x on at least one anchor, so it sits in one of x's
    // circles).
    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut heap: MinHeap<u32> = MinHeap::new();
    heap.push(ctx.mindist(index.point(start)), start);
    stats.distance_computations += anchors.len() as u64;
    visited[start as usize] = true;

    while let Some((key, &p)) = heap.peek() {
        if extracted[p as usize] {
            // Second phase: pop and resolve (Fig. 7 lines 09-13).
            heap.pop();
            let pt = index.point(p);
            // B may have shrunk since p was enqueued; a point outside B is
            // outside some point's search region, i.e. strictly farther
            // than that point from every anchor — dominated, no check
            // needed (the same O(d) discard B²S² applies, Fig. 5 line 07).
            if !b.contains(pt) {
                continue;
            }
            stats.points_examined += 1;
            let v = ctx.dist_vector(pt, &mut stats);
            let certain = ctx.hull().contains(pt);
            match expansion {
                VsExpansion::Safe => {
                    b = b.intersection(&search_region_mbr(pt, anchors));
                    candidates.push(Candidate {
                        id: p,
                        key,
                        vector: v,
                        certain,
                    });
                }
                VsExpansion::Paper => {
                    if certain || !dominated_by_any(&v, &skyline, &mut stats) {
                        in_skyline[p as usize] = true;
                        skyline.push((p, v.clone()));
                        candidates.push(Candidate {
                            id: p,
                            key,
                            vector: v,
                            certain,
                        });
                        b = b.intersection(&search_region_mbr(pt, anchors));
                    }
                }
            }
        } else {
            // First phase: extract, i.e. enqueue the Voronoi neighbours
            // (Fig. 7 lines 15-21).
            extracted[p as usize] = true;
            stats.entries_visited += 1;
            let expand = match expansion {
                VsExpansion::Safe => true,
                VsExpansion::Paper => {
                    skyline.is_empty()
                        || index.neighbors(p).iter().any(|&nb| in_skyline[nb as usize])
                }
            };
            if expand {
                for &nb in index.neighbors(p) {
                    if visited[nb as usize] {
                        continue;
                    }
                    let nbp = index.point(nb);
                    // Line 19: inside B, or Voronoi cell intersecting B.
                    if b.contains(nbp) || index.cell_intersects_rect(nb, &b) {
                        visited[nb as usize] = true;
                        heap.push(ctx.mindist(nbp), nb);
                        stats.distance_computations += anchors.len() as u64;
                    }
                }
            }
        }
    }

    // Final exactness pass (see module docs). Both modes resolve their
    // collected set with one pass in ascending key order — spatial
    // dominance implies a strictly smaller key, so dominators always come
    // first and a single filtered sweep is exact.
    drop(skyline);
    let skyline = resolve_candidates(candidates, &mut stats);
    stats.node_accesses = index.page_accesses();
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_full;
    use ssq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn safe_mode_matches_naive() {
        for trial in 0..12 {
            let points = pseudorandom(150, trial + 1);
            let q = pseudorandom(2 + (trial as usize % 6), 3000 + trial);
            let ctx = QueryContext::new(&q);
            let idx = VoronoiIndex::new(&points).unwrap();
            let got = vs2(&idx, &ctx);
            let want = naive_full(&points, &ctx);
            assert_eq!(got.skyline, want.skyline, "trial {trial}");
        }
    }

    #[test]
    fn paper_mode_is_subset_of_naive() {
        for trial in 0..12 {
            let points = pseudorandom(150, 100 + trial);
            let q = pseudorandom(3 + (trial as usize % 5), 4000 + trial);
            let ctx = QueryContext::new(&q);
            let idx = VoronoiIndex::new(&points).unwrap();
            let got = vs2_with(&idx, &ctx, VsExpansion::Paper, None);
            let want = naive_full(&points, &ctx);
            for id in &got.skyline {
                assert!(
                    want.contains(*id),
                    "paper mode produced a non-skyline point {id} in trial {trial}"
                );
            }
        }
    }

    #[test]
    fn points_inside_hull_are_all_reported() {
        // Theorem 1 end-to-end.
        let mut points = pseudorandom(100, 50);
        points.push(p(0.5, 0.5)); // certainly inside the hull below
        let q = [p(0.1, 0.1), p(0.9, 0.1), p(0.9, 0.9), p(0.1, 0.9)];
        let ctx = QueryContext::new(&q);
        let idx = VoronoiIndex::new(&points).unwrap();
        let r = vs2(&idx, &ctx);
        for (i, pt) in points.iter().enumerate() {
            if ctx.hull().contains(*pt) {
                assert!(r.contains(i as u32), "interior point {i} missing");
            }
        }
    }

    #[test]
    fn start_hint_does_not_change_result() {
        let points = pseudorandom(200, 8);
        let q = pseudorandom(4, 5000);
        let ctx = QueryContext::new(&q);
        let idx = VoronoiIndex::new(&points).unwrap();
        let a = vs2_with(&idx, &ctx, VsExpansion::Safe, None);
        let b = vs2_with(&idx, &ctx, VsExpansion::Safe, Some(137));
        assert_eq!(a.skyline, b.skyline);
    }

    #[test]
    fn visits_fewer_points_than_dataset() {
        // The whole point of VS²: locality. With a small query box in a
        // large dataset, only a small neighbourhood is visited.
        let points = pseudorandom(3000, 17);
        let q: Vec<Point> = pseudorandom(5, 6000)
            .into_iter()
            .map(|v| p(0.48 + v.x * 0.04, 0.48 + v.y * 0.04))
            .collect();
        let ctx = QueryContext::new(&q);
        let idx = VoronoiIndex::new(&points).unwrap();
        let r = vs2(&idx, &ctx);
        assert!(!r.skyline.is_empty());
        assert!(
            (r.stats.entries_visited as usize) < points.len() / 3,
            "visited {} of {}",
            r.stats.entries_visited,
            points.len()
        );
    }

    #[test]
    fn tiny_datasets() {
        let ctx = QueryContext::new(&[p(0.5, 0.5), p(0.7, 0.7)]);
        let idx = VoronoiIndex::new(&[p(0.1, 0.2)]).unwrap();
        assert_eq!(vs2(&idx, &ctx).skyline, vec![0]);
        let idx2 = VoronoiIndex::new(&[]).unwrap();
        assert!(vs2(&idx2, &ctx).skyline.is_empty());
        // Collinear dataset (degenerate Delaunay -> path graph).
        let idx3 =
            VoronoiIndex::new(&[p(0.0, 0.0), p(0.5, 0.0), p(1.0, 0.0), p(0.25, 0.0)]).unwrap();
        let want = naive_full(idx3.points(), &ctx);
        assert_eq!(vs2(&idx3, &ctx).skyline, want.skyline);
    }
}
