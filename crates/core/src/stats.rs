//! Query cost accounting.
//!
//! The paper's evaluation (§7, Fig. 12) reports three costs per query:
//! CPU time, the number of *dominance checks*, and the number of accessed
//! index nodes (I/O). [`QueryStats`] carries the latter two plus auxiliary
//! counters; wall-clock time is measured by the bench harness, not here.

/// Cost counters for one skyline query (or one continuous update).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Pairwise dominance checks: one per (candidate, skyline-point)
    /// comparison — the metric of Fig. 12b/e.
    pub dominance_checks: u64,
    /// Point-to-point distance evaluations (each anchor distance counts
    /// one).
    pub distance_computations: u64,
    /// Index nodes read: R-tree nodes for BBS/B²S², adjacency-file pages
    /// for VS²/VCS² — the metric of Fig. 12c/f.
    pub node_accesses: u64,
    /// Data points whose dominance was actually examined.
    pub points_examined: u64,
    /// Entries (points or R-tree rectangles / graph vertices) visited by
    /// the traversal.
    pub entries_visited: u64,
    /// Tracked heap allocations on the query path: the scalar algorithms
    /// count one per materialized distance vector, the kernel algorithms
    /// count only scratch-arena growth events (0 once warm) — the
    /// observable form of the zero-alloc claim.
    pub allocations: u64,
}

impl QueryStats {
    /// Adds another stats record into this one (for averaging batches).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.dominance_checks += other.dominance_checks;
        self.distance_computations += other.distance_computations;
        self.node_accesses += other.node_accesses;
        self.points_examined += other.points_examined;
        self.entries_visited += other.entries_visited;
        self.allocations += other.allocations;
    }
}

/// A computed skyline plus the cost of computing it.
#[derive(Clone, Debug, Default)]
pub struct SkylineResult {
    /// Indices (into the data set) of the spatial skyline points, sorted
    /// ascending.
    pub skyline: Vec<u32>,
    /// Cost counters.
    pub stats: QueryStats,
}

impl SkylineResult {
    /// `true` when `idx` is one of the skyline points.
    pub fn contains(&self, idx: u32) -> bool {
        self.skyline.binary_search(&idx).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = QueryStats {
            dominance_checks: 1,
            distance_computations: 2,
            node_accesses: 3,
            points_examined: 4,
            entries_visited: 5,
            allocations: 6,
        };
        let b = QueryStats {
            dominance_checks: 10,
            distance_computations: 20,
            node_accesses: 30,
            points_examined: 40,
            entries_visited: 50,
            allocations: 60,
        };
        a.absorb(&b);
        assert_eq!(a.dominance_checks, 11);
        assert_eq!(a.distance_computations, 22);
        assert_eq!(a.node_accesses, 33);
        assert_eq!(a.points_examined, 44);
        assert_eq!(a.entries_visited, 55);
        assert_eq!(a.allocations, 66);
    }

    #[test]
    fn result_contains_uses_sorted_order() {
        let r = SkylineResult {
            skyline: vec![2, 5, 9],
            stats: QueryStats::default(),
        };
        assert!(r.contains(5));
        assert!(!r.contains(4));
    }
}
