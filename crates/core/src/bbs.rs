//! BBS — the competitor baseline (Papadias et al.'s branch-and-bound
//! skyline, §8 of the paper, applied to SSQ as a dynamic skyline query).
//!
//! The paper compares B²S² and VS² against "the BBS approach", i.e. the
//! general dynamic-skyline algorithm run over the derived distance
//! attributes. Being general, BBS does not know the geometry of SSQ, so it
//!
//! * computes distances to **all** query points (it has no Theorem 2 to
//!   restrict to the hull vertices),
//! * has no Theorem-1 free pass for entries inside `CH(Q)`, and
//! * prunes only by per-skyline-point dominance tests (no `B` rectangle).
//!
//! Keeping these differences — and nothing else — isolates exactly the
//! savings the paper credits to its geometric foundation.

use ssq_geom::Rect;
use ssq_rtree::{Entry, NodeId};

use crate::heap::MinHeap;
use crate::index::RTreeIndex;
use crate::query::{dominated_by_any, QueryContext};
use crate::stats::{QueryStats, SkylineResult};

enum Work {
    Node(NodeId),
    Point(u32, Rect),
}

/// Runs the BBS baseline over the R-tree index.
pub fn bbs(index: &RTreeIndex, ctx: &QueryContext) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.tree().reset_node_accesses();

    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    let mut heap: MinHeap<Work> = MinHeap::new();
    if let Some(root) = index.tree().root() {
        heap.push(0.0, Work::Node(root));
    }

    while let Some((_, work)) = heap.pop() {
        stats.entries_visited += 1;
        match work {
            Work::Point(i, mbr) => {
                // Re-check against the (possibly grown) skyline.
                if rect_dominated(&mbr, &skyline, ctx, &mut stats) {
                    continue;
                }
                stats.points_examined += 1;
                let v = ctx.dist_vector_full(index.point(i), &mut stats);
                if !dominated_by_any(&v, &skyline, &mut stats) {
                    skyline.push((i, v));
                }
            }
            Work::Node(id) => {
                for e in index.tree().entries(id) {
                    let mbr = e.mbr();
                    if rect_dominated(&mbr, &skyline, ctx, &mut stats) {
                        continue;
                    }
                    let key = mbr.mindist_sum(ctx.query());
                    stats.distance_computations += ctx.query().len() as u64;
                    match e {
                        Entry::Node { child, .. } => heap.push(key, Work::Node(child)),
                        Entry::Item { item, .. } => heap.push(key, Work::Point(item, mbr)),
                    }
                }
            }
        }
    }

    stats.node_accesses = index.tree().node_accesses();
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

/// Conservative dominance test for a rectangle against the current skyline
/// over the **full** query set: `e` is dominated by `s` when it misses
/// every circle `C(q, D(s, q))`, i.e. `mindist(e, q) > D(s, q)` for all
/// `q ∈ Q`.
fn rect_dominated(
    mbr: &Rect,
    skyline: &[(u32, Vec<f64>)],
    ctx: &QueryContext,
    stats: &mut QueryStats,
) -> bool {
    for (_, sv) in skyline {
        stats.dominance_checks += 1;
        stats.distance_computations += ctx.query().len() as u64;
        let dominated = ctx
            .query()
            .iter()
            .zip(sv)
            .all(|(&q, &d)| mbr.mindist(q) > d);
        if dominated {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_full;
    use ssq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn matches_naive_on_random_instances() {
        for trial in 0..10 {
            let points = pseudorandom(120, trial + 1);
            let q = pseudorandom(3 + (trial as usize % 4), 1000 + trial);
            let ctx = QueryContext::new(&q);
            let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(4));
            let got = bbs(&idx, &ctx);
            let want = naive_full(&points, &ctx);
            assert_eq!(got.skyline, want.skyline, "trial {trial}");
        }
    }

    #[test]
    fn counts_node_accesses() {
        let points = pseudorandom(300, 5);
        let q = pseudorandom(4, 77);
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(8));
        let r = bbs(&idx, &ctx);
        assert!(r.stats.node_accesses >= 1);
        assert!(r.stats.dominance_checks > 0);
        assert!(!r.skyline.is_empty());
    }

    #[test]
    fn empty_dataset_gives_empty_skyline() {
        let ctx = QueryContext::new(&[p(0.5, 0.5)]);
        let idx = RTreeIndex::new(&[]);
        assert!(bbs(&idx, &ctx).skyline.is_empty());
    }
}
