//! Canonicalized query keys.
//!
//! Theorem 2 of the paper: the spatial skyline depends **only on the
//! vertices of `CH(Q)`** — interior query points are irrelevant. A
//! [`QueryKey`] is therefore the canonicalized hull of a query set:
//!
//! 1. compute the convex hull of the query points,
//! 2. quantize each vertex coordinate to a grid (engine default `1e-9`),
//! 3. sort the quantized vertices lexicographically and deduplicate.
//!
//! Two query sets that differ only by permutation, duplicate points,
//! interior points, or sub-quantum coordinate noise share a key. The
//! engine's context cache and the skyline diagram both partition query
//! space by this key, which is exactly what makes a diagram cell sound:
//! every query inside one key cell has the same `CHv(Q)` and hence (for a
//! fixed dataset snapshot) the same skyline.
//!
//! The key lives in `ssq-core` (rather than the engine that popularized
//! it) so that `ssq-diagram` can index materialized cells by it without a
//! dependency cycle.

use ssq_geom::{monotone_chain_into, HullScratch, Point};
use std::borrow::Borrow;

/// A canonicalized, quantized query-set key. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(Vec<(i64, i64)>);

/// Reusable buffers for [`QueryKey::canonical_cells_into`].
///
/// A warm scratch makes repeated canonicalization allocation-free; the
/// buffers are cleared, not shrunk, between calls.
#[derive(Debug, Default)]
pub struct KeyScratch {
    hull: HullScratch,
    cells: Vec<(i64, i64)>,
}

impl KeyScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> KeyScratch {
        KeyScratch::default()
    }
}

fn quantize(v: Point, quantum: f64) -> (i64, i64) {
    let x = (v.x / quantum).round();
    let y = (v.y / quantum).round();
    assert!(
        x.abs() < i64::MAX as f64 && y.abs() < i64::MAX as f64,
        "query coordinate overflows the cache-key grid"
    );
    (x as i64, y as i64)
}

impl QueryKey {
    /// Canonicalizes `q` with the given coordinate quantum.
    ///
    /// Panics if a quantized coordinate overflows `i64` — at the engine's
    /// default quantum that needs coordinates beyond ±9×10⁹, far outside
    /// any dataset universe in this repo.
    pub fn canonical(q: &[Point], quantum: f64) -> QueryKey {
        assert!(quantum > 0.0, "quantum must be positive");
        let hull = ssq_geom::convex_hull(q);
        let mut cells: Vec<(i64, i64)> = hull
            .vertices()
            .iter()
            .map(|&v| quantize(v, quantum))
            .collect();
        cells.sort_unstable();
        cells.dedup();
        QueryKey(cells)
    }

    /// [`QueryKey::canonical`] into caller-provided scratch, returning the
    /// canonical cell list as a borrow of `scratch`.
    ///
    /// Produces exactly the cells of [`QueryKey::canonical`] (both run the
    /// same monotone-chain hull), but a warm scratch makes the call
    /// allocation-free — this is what the skyline-diagram probe runs per
    /// query before deciding hit or miss.
    pub fn canonical_cells_into<'s>(
        q: &[Point],
        quantum: f64,
        scratch: &'s mut KeyScratch,
    ) -> &'s [(i64, i64)] {
        assert!(quantum > 0.0, "quantum must be positive");
        let hull = monotone_chain_into(q, &mut scratch.hull);
        scratch.cells.clear();
        for &v in hull {
            scratch.cells.push(quantize(v, quantum));
        }
        scratch.cells.sort_unstable();
        scratch.cells.dedup();
        &scratch.cells
    }

    /// Rebuilds a key from raw canonical cells (the warm-start load path).
    ///
    /// The cells are re-sorted and deduplicated so the invariant holds for
    /// any input order.
    pub fn from_cells(mut cells: Vec<(i64, i64)>) -> QueryKey {
        cells.sort_unstable();
        cells.dedup();
        QueryKey(cells)
    }

    /// The canonical quantized hull vertices, sorted lexicographically.
    pub fn cells(&self) -> &[(i64, i64)] {
        &self.0
    }

    /// Representative query points for this key: each cell scaled back by
    /// `quantum`. Canonicalizing the result with the same quantum yields
    /// this key again, which is what lets warm start rebuild contexts and
    /// diagram cells from persisted keys alone.
    pub fn representative_points(&self, quantum: f64) -> Vec<Point> {
        self.0
            .iter()
            .map(|&(x, y)| Point::new(x as f64 * quantum, y as f64 * quantum))
            .collect()
    }

    /// Number of quantized hull vertices in the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty key (empty query set).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Borrow<[(i64, i64)]> for QueryKey {
    fn borrow(&self) -> &[(i64, i64)] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(pts: &[(f64, f64)]) -> Vec<Point> {
        pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    const QUANTUM: f64 = 1e-9;

    #[test]
    fn scratch_canonicalization_matches_owned() {
        let mut scratch = KeyScratch::new();
        let sets: Vec<Vec<Point>> = vec![
            q(&[(0.25, 0.75)]),
            q(&[(0.0, 0.0), (1.0, 0.0)]),
            q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]),
            // Duplicates, interior points and collinear runs.
            q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 0.0), (0.0, 0.0), (2.0, 0.0)]),
            q(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0), (2.0, 2.0)]),
        ];
        for s in &sets {
            let owned = QueryKey::canonical(s, QUANTUM);
            let borrowed = QueryKey::canonical_cells_into(s, QUANTUM, &mut scratch);
            assert_eq!(owned.cells(), borrowed, "query {s:?}");
        }
    }

    #[test]
    fn representative_points_round_trip() {
        let sets: Vec<Vec<Point>> = vec![
            q(&[(0.25, 0.75)]),
            q(&[(0.1, 0.2), (0.9, 0.4), (0.5, 0.8)]),
            q(&[(-3.5, 2.0), (1.0, -1.0), (0.0, 0.0), (0.2, 0.1)]),
        ];
        for s in &sets {
            let key = QueryKey::canonical(s, QUANTUM);
            let reps = key.representative_points(QUANTUM);
            let back = QueryKey::canonical(&reps, QUANTUM);
            assert_eq!(key, back, "query {s:?}");
        }
    }

    #[test]
    fn from_cells_restores_invariant() {
        let key = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]), QUANTUM);
        let mut cells = key.cells().to_vec();
        cells.reverse();
        cells.push(cells[0]); // duplicate
        assert_eq!(QueryKey::from_cells(cells), key);
    }

    #[test]
    fn borrowed_slice_lookup_works() {
        use std::collections::HashMap;
        let key = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 1.0)]), QUANTUM);
        let mut map: HashMap<QueryKey, u32> = HashMap::new();
        map.insert(key.clone(), 7);
        let cells: &[(i64, i64)] = key.cells();
        assert_eq!(map.get(cells), Some(&7));
    }
}
