//! Aggregate (group) nearest neighbours — the related query the paper
//! contrasts SSQ against.
//!
//! "Notice that the algorithms for Group or Aggregate Nearest Neighbor
//! queries are related but not applicable to SSQ as they only find the
//! optimal (best) object based on a fixed reference function" (§1). This
//! module provides exactly that query — the single best meeting point
//! under a fixed aggregate — implemented on top of the ranked skyline
//! machinery, which also makes the paper's observation executable: the
//! aggregate optimum is always **one** member of the spatial skyline,
//! while SSQ returns *every* preference-optimal candidate at once.
//!
//! The optimum under any strictly monotone aggregate cannot be spatially
//! dominated (a dominator would score strictly better), so it is the
//! first point the ranked branch-and-bound emits.

use crate::index::RTreeIndex;
use crate::query::QueryContext;
use crate::ranked::{b2s2_ranked, MaxDistance, Preference, WeightedSum};
use crate::stats::QueryStats;

/// The aggregate function of a group nearest-neighbour query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Minimize the total travel distance of the group (`SUM`).
    Sum,
    /// Minimize the worst member's travel distance (`MAX`).
    Max,
}

/// Finds the aggregate nearest neighbour of the query group: the data
/// point minimizing the aggregate of distances to all query points.
/// Returns `None` for an empty dataset.
pub fn aggregate_nearest_neighbor(
    index: &RTreeIndex,
    ctx: &QueryContext,
    aggregate: Aggregate,
) -> Option<(u32, QueryStats)> {
    let result = match aggregate {
        Aggregate::Sum => b2s2_ranked(index, ctx, 1, &WeightedSum::uniform()),
        Aggregate::Max => b2s2_ranked(index, ctx, 1, &MaxDistance),
    };
    result.skyline.first().map(|&i| (i, result.stats))
}

/// Evaluates the aggregate for a data point (over the hull anchors, which
/// by Theorem 2 is equivalent for monotone aggregates over distances...
/// for `SUM`/`MAX` over the *full* query set use
/// [`aggregate_score_full`]).
pub fn aggregate_score(ctx: &QueryContext, p: ssq_geom::Point, aggregate: Aggregate) -> f64 {
    let dists: Vec<f64> = ctx.anchors().iter().map(|&q| q.distance(p)).collect();
    match aggregate {
        Aggregate::Sum => WeightedSum::uniform().score(&dists),
        Aggregate::Max => MaxDistance.score(&dists),
    }
}

/// The aggregate over the **full** query set — the canonical GNN
/// objective. Note `SUM` over the full set differs from the anchor sum
/// when interior query points exist, so the GNN under full-`SUM` may be a
/// different point than under anchor-`SUM` (both are skyline points).
pub fn aggregate_score_full(ctx: &QueryContext, p: ssq_geom::Point, aggregate: Aggregate) -> f64 {
    let dists: Vec<f64> = ctx.query().iter().map(|&q| q.distance(p)).collect();
    match aggregate {
        Aggregate::Sum => dists.iter().sum(),
        Aggregate::Max => dists.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_full;
    use ssq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn sum_ann_matches_brute_force() {
        for seed in [1u64, 2, 3] {
            let points = pseudorandom(150, seed);
            let q = pseudorandom(4, 100 + seed);
            let ctx = QueryContext::new(&q);
            let idx = RTreeIndex::new(&points);
            let (got, _) = aggregate_nearest_neighbor(&idx, &ctx, Aggregate::Sum).unwrap();
            let brute = (0..points.len() as u32)
                .min_by(|&a, &b| {
                    aggregate_score(&ctx, points[a as usize], Aggregate::Sum)
                        .total_cmp(&aggregate_score(&ctx, points[b as usize], Aggregate::Sum))
                })
                .unwrap();
            assert_eq!(
                aggregate_score(&ctx, points[got as usize], Aggregate::Sum),
                aggregate_score(&ctx, points[brute as usize], Aggregate::Sum),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ann_is_always_a_skyline_point() {
        // The paper's observation, executable: the group-optimal point is
        // one member of the spatial skyline.
        let points = pseudorandom(120, 9);
        let q = pseudorandom(5, 77);
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::new(&points);
        let skyline = naive_full(&points, &ctx);
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let (ann, _) = aggregate_nearest_neighbor(&idx, &ctx, agg).unwrap();
            assert!(skyline.contains(ann), "{agg:?} optimum must be in S(Q)");
        }
    }

    #[test]
    fn empty_dataset_returns_none() {
        let ctx = QueryContext::new(&[p(0.5, 0.5)]);
        let idx = RTreeIndex::new(&[]);
        assert!(aggregate_nearest_neighbor(&idx, &ctx, Aggregate::Sum).is_none());
    }

    #[test]
    fn single_query_point_reduces_to_nn() {
        let points = pseudorandom(80, 4);
        let q = [p(0.31, 0.47)];
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::new(&points);
        let (ann, _) = aggregate_nearest_neighbor(&idx, &ctx, Aggregate::Sum).unwrap();
        let nn = (0..points.len() as u32)
            .min_by(|&a, &b| {
                points[a as usize]
                    .distance_sq(q[0])
                    .total_cmp(&points[b as usize].distance_sq(q[0]))
            })
            .unwrap();
        assert_eq!(ann, nn);
    }
}
