//! Brute-force spatial skyline baselines (the paper's §2.2 strawman and
//! the test oracle for every other algorithm).

use ssq_geom::Point;

use crate::query::{dominates, QueryContext};
use crate::scratch::DistanceScratch;
use crate::stats::{QueryStats, SkylineResult};

/// The literal `O(|P|² · |Q|)` brute force of §2.2: every point is checked
/// against every other point over the **full** query set. Exact but slow —
/// the oracle for small instances.
pub fn naive_full(points: &[Point], ctx: &QueryContext) -> SkylineResult {
    let mut stats = QueryStats::default();
    let vectors: Vec<Vec<f64>> = points
        .iter()
        .map(|&p| ctx.dist_vector_full(p, &mut stats))
        .collect();
    let mut skyline = Vec::new();
    for i in 0..points.len() {
        stats.points_examined += 1;
        let mut dominated = false;
        for j in 0..points.len() {
            if i == j {
                continue;
            }
            stats.dominance_checks += 1;
            if dominates(&vectors[j], &vectors[i]) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push(i as u32);
        }
    }
    SkylineResult { skyline, stats }
}

/// A sort-based exact scan (the strongest index-free baseline): points are
/// processed in ascending `Σ D(p, q)` order over the hull vertices, so a
/// dominator always precedes its dominatees and each point only needs a
/// check against the skyline found so far — `O(|P| · |S| · |CHv(Q)|)` plus
/// the sort.
pub fn naive_sorted(points: &[Point], ctx: &QueryContext) -> SkylineResult {
    let mut stats = QueryStats::default();
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    let keys: Vec<f64> = points.iter().map(|&p| ctx.mindist(p)).collect();
    stats.distance_computations += (points.len() * ctx.anchors().len()) as u64;
    order.sort_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));

    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    'next: for &i in &order {
        stats.points_examined += 1;
        let v = ctx.dist_vector(points[i as usize], &mut stats);
        for (_, s) in &skyline {
            stats.dominance_checks += 1;
            if dominates(s, &v) {
                continue 'next;
            }
        }
        skyline.push((i, v));
    }
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

/// The kernel-path sorted scan: identical output to
/// [`naive_sorted`], but every distance vector lives as a squared-distance
/// row of the scratch arena (sound — see [`ssq_geom::kernel`]) and the
/// steady-state query performs no heap allocation beyond arena growth.
pub fn naive_sorted_kernel(
    points: &[Point],
    ctx: &QueryContext,
    scratch: &mut DistanceScratch,
) -> SkylineResult {
    let mut stats = QueryStats::default();
    let n = naive_sorted_into(points, ctx, scratch, &mut stats);
    let mut skyline = Vec::with_capacity(n);
    skyline.extend_from_slice(scratch.result());
    SkylineResult { skyline, stats }
}

/// The allocation-free core of [`naive_sorted_kernel`]: batch-fills the
/// arena's distance tiles through the dispatched SIMD kernel (four
/// points × all anchors per sweep), resolves the skyline ids into the
/// arena's result buffer (read them back via
/// [`DistanceScratch::result`]), and returns how many there are. After
/// one warm-up call on a given workload shape, subsequent calls perform
/// zero heap allocations.
// ssq-analyze: deny-alloc
pub fn naive_sorted_into(
    points: &[Point],
    ctx: &QueryContext,
    scratch: &mut DistanceScratch,
    stats: &mut QueryStats,
) -> usize {
    let anchors = ctx.anchors();
    scratch.begin(anchors.len());
    scratch.fill_rows(points, anchors);
    stats.distance_computations += (points.len() * anchors.len()) as u64;
    stats.points_examined += points.len() as u64;
    let n = scratch.resolve(stats).len();
    stats.allocations += scratch.take_allocations();
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn figure2_style_example() {
        // One query pair; the point nearest both dominates points farther
        // from both.
        let points = vec![p(1.0, 0.0), p(5.0, 0.0), p(2.1, 0.0)];
        let ctx = QueryContext::new(&[p(0.0, 0.0), p(2.0, 0.0)]);
        let r = naive_full(&points, &ctx);
        // Distances (q0, q1): point0 = (1, 1), point1 = (5, 3),
        // point2 = (2.1, 0.1). Point 2 dominates point 1; points 0 and 2
        // are incomparable (each wins on one query point).
        assert_eq!(r.skyline, vec![0, 2]);
    }

    #[test]
    fn nn_of_each_query_point_is_in_skyline() {
        // Lemma 1 as a sanity test on the oracle itself.
        let points = vec![
            p(0.1, 0.1),
            p(0.9, 0.9),
            p(0.5, 0.2),
            p(0.3, 0.8),
            p(0.7, 0.4),
        ];
        let q = [p(0.0, 0.0), p(1.0, 1.0)];
        let ctx = QueryContext::new(&q);
        let r = naive_full(&points, &ctx);
        for &qi in &q {
            let nn = (0..points.len() as u32)
                .min_by(|&a, &b| {
                    points[a as usize]
                        .distance_sq(qi)
                        .total_cmp(&points[b as usize].distance_sq(qi))
                })
                .unwrap();
            assert!(r.contains(nn), "NN({qi:?}) = {nn} must be in the skyline");
        }
    }

    #[test]
    fn sorted_scan_matches_full_scan() {
        let mut seed = 77u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..25 {
            let n = 5 + trial * 4;
            let points: Vec<Point> = (0..n).map(|_| p(next(), next())).collect();
            let q: Vec<Point> = (0..2 + trial % 5).map(|_| p(next(), next())).collect();
            let ctx = QueryContext::new(&q);
            let full = naive_full(&points, &ctx);
            let sorted = naive_sorted(&points, &ctx);
            assert_eq!(full.skyline, sorted.skyline, "trial {trial}");
        }
    }

    #[test]
    fn kernel_scan_matches_the_scalar_scan() {
        let mut seed = 99u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut scratch = DistanceScratch::new();
        for trial in 0..25 {
            let n = 5 + trial * 4;
            let points: Vec<Point> = (0..n).map(|_| p(next(), next())).collect();
            let q: Vec<Point> = (0..2 + trial % 5).map(|_| p(next(), next())).collect();
            let ctx = QueryContext::new(&q);
            let scalar = naive_sorted(&points, &ctx);
            let kernel = naive_sorted_kernel(&points, &ctx, &mut scratch);
            assert_eq!(scalar.skyline, kernel.skyline, "trial {trial}");
            // Skip trial 0: the cold arena's one-time growth events can
            // outnumber the scalar Vecs on a tiny input. Once warm, the
            // kernel path stops allocating entirely.
            if trial > 0 {
                assert!(
                    kernel.stats.allocations <= scalar.stats.allocations,
                    "trial {trial}: kernel allocated more than scalar"
                );
            }
        }
    }

    #[test]
    fn single_query_point_gives_nearest_only() {
        let points = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)];
        let ctx = QueryContext::new(&[p(0.9, 0.0)]);
        assert_eq!(naive_full(&points, &ctx).skyline, vec![1]);
        assert_eq!(naive_sorted(&points, &ctx).skyline, vec![1]);
    }

    #[test]
    fn duplicate_distance_points_both_survive() {
        // Two points equidistant from every query point are incomparable.
        let points = vec![p(0.0, 1.0), p(0.0, -1.0), p(5.0, 5.0)];
        let ctx = QueryContext::new(&[p(0.0, 0.0), p(1.0, 0.0)]);
        let r = naive_full(&points, &ctx);
        assert!(r.contains(0));
        assert!(r.contains(1));
        assert!(!r.contains(2));
    }

    #[test]
    fn empty_dataset() {
        let ctx = QueryContext::new(&[p(0.0, 0.0)]);
        assert!(naive_full(&[], &ctx).skyline.is_empty());
        assert!(naive_sorted(&[], &ctx).skyline.is_empty());
    }
}
