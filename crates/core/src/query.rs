//! The query context: `Q`, its convex hull, and spatial dominance.
//!
//! Everything the paper's algorithms share lives here. A
//! [`QueryContext`] is built once per query: it computes `CH(Q)` and its
//! vertex set `CHv(Q)` (the *anchors*), because by Theorem 2 the spatial
//! skyline only depends on the hull vertices — every distance computation
//! and dominance check downstream runs against the anchors instead of the
//! full query set.

use ssq_geom::{convex_hull, ConvexPolygon, Point};

use crate::stats::QueryStats;

/// A prepared spatial skyline query: the query points, their convex hull
/// and the hull vertices (anchors).
#[derive(Clone, Debug)]
pub struct QueryContext {
    query: Vec<Point>,
    hull: ConvexPolygon,
    anchors: Vec<Point>,
}

impl QueryContext {
    /// Prepares a query over `q` (at least one point; duplicates are
    /// tolerated and collapse in the hull).
    pub fn new(q: &[Point]) -> QueryContext {
        assert!(
            !q.is_empty(),
            "a spatial skyline query needs at least one query point"
        );
        let hull = convex_hull(q);
        let anchors = hull.vertices().to_vec();
        QueryContext {
            query: q.to_vec(),
            hull,
            anchors,
        }
    }

    /// The full query set `Q` as given.
    pub fn query(&self) -> &[Point] {
        &self.query
    }

    /// The convex hull `CH(Q)`.
    pub fn hull(&self) -> &ConvexPolygon {
        &self.hull
    }

    /// The hull vertices `CHv(Q)` — the only query points that matter
    /// (Theorem 2).
    pub fn anchors(&self) -> &[Point] {
        &self.anchors
    }

    /// The distances from `p` to every anchor, counting them in `stats`.
    ///
    /// These vectors are the paper's "derived spatial attributes" (§2.2),
    /// restricted to `CHv(Q)`.
    pub fn dist_vector(&self, p: Point, stats: &mut QueryStats) -> Vec<f64> {
        stats.distance_computations += self.anchors.len() as u64;
        stats.allocations += 1;
        self.anchors.iter().map(|&q| q.distance(p)).collect()
    }

    /// The distances from `p` to every point of the **full** query set,
    /// counting them in `stats`. Used by the BBS baseline, which does not
    /// know Theorem 2.
    pub fn dist_vector_full(&self, p: Point, stats: &mut QueryStats) -> Vec<f64> {
        stats.distance_computations += self.query.len() as u64;
        stats.allocations += 1;
        self.query.iter().map(|&q| q.distance(p)).collect()
    }

    /// The monotone ordering key `mindist(p, CHv(Q)) = Σ D(p, q)` used by
    /// B²S² and VS² (paper Figs. 5 and 7).
    pub fn mindist(&self, p: Point) -> f64 {
        self.anchors.iter().map(|&q| q.distance(p)).sum()
    }

    /// Like [`QueryContext::mindist`] but over the full query set (BBS).
    pub fn mindist_full(&self, p: Point) -> f64 {
        self.query.iter().map(|&q| q.distance(p)).sum()
    }
}

/// `true` when distance vector `a` spatially dominates `b`: weakly closer
/// on every component and strictly closer on at least one (§2.2).
///
/// Delegates to the shared early-exit kernel
/// [`ssq_geom::kernel::dominates`] (also valid over squared distances).
/// The caller accounts the dominance check; this function is pure.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    ssq_geom::kernel::dominates(a, b)
}

/// `true` when `candidate` is dominated by any of the `skyline` vectors;
/// counts one dominance check per comparison performed.
pub fn dominated_by_any(
    candidate: &[f64],
    skyline: &[(u32, Vec<f64>)],
    stats: &mut QueryStats,
) -> bool {
    for (_, vec) in skyline {
        stats.dominance_checks += 1;
        if dominates(vec, candidate) {
            return true;
        }
    }
    false
}

/// A skyline candidate as collected by a graph traversal: point index,
/// monotone ordering key (`mindist`), distance vector, and whether the
/// point is inside `CH(Q)` (a *certain* skyline point by Theorem 1).
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Index into the data set.
    pub id: u32,
    /// `mindist(p, CHv(Q))`.
    pub key: f64,
    /// Distances to the anchors.
    pub vector: Vec<f64>,
    /// Inside `CH(Q)` (Theorem 1: cannot be dominated).
    pub certain: bool,
}

/// Resolves a candidate set into the exact skyline with a single pass in
/// ascending `mindist` order.
///
/// Exactness: spatial dominance implies a *strictly* smaller `mindist`
/// (the sum of anchor distances), so in key order every dominator precedes
/// its dominatees; a candidate dominated by nothing kept so far is a true
/// skyline point. Certain (hull-interior) candidates skip their checks
/// entirely. The input must contain every true skyline point (the
/// traversals guarantee this); extra dominated candidates are filtered
/// out here.
pub fn resolve_candidates(
    mut candidates: Vec<Candidate>,
    stats: &mut QueryStats,
) -> Vec<(u32, Vec<f64>)> {
    candidates.sort_by(|a, b| a.key.total_cmp(&b.key));
    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    'next: for c in candidates {
        if !c.certain {
            for (_, sv) in &skyline {
                stats.dominance_checks += 1;
                if dominates(sv, &c.vector) {
                    continue 'next;
                }
            }
        }
        skyline.push((c.id, c.vector));
    }
    skyline
}

/// Removes from `skyline` every member dominated by another member (the
/// final mutual filter the Paper-mode VS² traversal runs to stay exact
/// under any discovery order). Returns the surviving `(index,
/// dist-vector)` pairs.
pub fn mutual_filter(
    mut skyline: Vec<(u32, Vec<f64>)>,
    stats: &mut QueryStats,
) -> Vec<(u32, Vec<f64>)> {
    let mut keep = vec![true; skyline.len()];
    for i in 0..skyline.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..skyline.len() {
            if i == j || !keep[j] {
                continue;
            }
            stats.dominance_checks += 1;
            if dominates(&skyline[i].1, &skyline[j].1) {
                keep[j] = false;
            }
        }
    }
    let mut idx = 0;
    skyline.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn anchors_are_hull_vertices_only() {
        // A square of query points plus one interior point: the interior
        // point must not appear among the anchors (Theorem 2).
        let q = [
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
        ];
        let ctx = QueryContext::new(&q);
        assert_eq!(ctx.anchors().len(), 4);
        assert!(!ctx.anchors().contains(&p(2.0, 2.0)));
        assert_eq!(ctx.query().len(), 5);
    }

    #[test]
    fn single_query_point() {
        let ctx = QueryContext::new(&[p(1.0, 1.0)]);
        assert_eq!(ctx.anchors(), &[p(1.0, 1.0)]);
        assert_eq!(ctx.mindist(p(4.0, 5.0)), 5.0);
    }

    #[test]
    fn dist_vector_counts_computations() {
        let ctx = QueryContext::new(&[p(0.0, 0.0), p(3.0, 0.0)]);
        let mut stats = QueryStats::default();
        let v = ctx.dist_vector(p(0.0, 4.0), &mut stats);
        assert_eq!(v, vec![4.0, 5.0]);
        assert_eq!(stats.distance_computations, 2);
        assert_eq!(stats.allocations, 1, "one Vec per scalar dist_vector");
    }

    #[test]
    fn dominates_needs_strictness() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
    }

    #[test]
    fn dominated_by_any_counts_checks() {
        let skyline = vec![(0u32, vec![5.0, 5.0]), (1u32, vec![1.0, 1.0])];
        let mut stats = QueryStats::default();
        assert!(dominated_by_any(&[2.0, 2.0], &skyline, &mut stats));
        assert_eq!(stats.dominance_checks, 2); // first fails, second hits
        let mut stats2 = QueryStats::default();
        assert!(!dominated_by_any(&[0.5, 0.5], &skyline, &mut stats2));
        assert_eq!(stats2.dominance_checks, 2);
    }

    #[test]
    fn mutual_filter_removes_dominated_members() {
        let mut stats = QueryStats::default();
        let filtered = mutual_filter(
            vec![
                (0u32, vec![1.0, 1.0]),
                (1u32, vec![2.0, 2.0]), // dominated by 0
                (2u32, vec![0.5, 3.0]),
            ],
            &mut stats,
        );
        let ids: Vec<u32> = filtered.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn mindist_is_monotone_under_dominance() {
        // If a dominates b then mindist(a) < mindist(b) — the property
        // both B²S² and VS² rely on for their processing order.
        let ctx = QueryContext::new(&[p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)]);
        let a = p(2.0, 1.0);
        let b = p(2.0, 8.0); // farther from all three
        let mut stats = QueryStats::default();
        let va = ctx.dist_vector(a, &mut stats);
        let vb = ctx.dist_vector(b, &mut stats);
        assert!(dominates(&va, &vb));
        assert!(ctx.mindist(a) < ctx.mindist(b));
    }
}
