//! # ssq-core
//!
//! Spatial Skyline Queries — a from-scratch reproduction of Sharifzadeh &
//! Shahabi, *The Spatial Skyline Queries*, VLDB 2006.
//!
//! Given data points `P` and query points `Q`, the **spatial skyline**
//! `S(Q)` is the set of points of `P` not *spatially dominated* by any
//! other point — where `p` dominates `p'` iff `p` is at least as close to
//! every query point and strictly closer to one (§2.2). This crate
//! implements every algorithm in the paper:
//!
//! | paper | here | index |
//! |---|---|---|
//! | naive §2.2 | [`naive::naive_full`], [`naive::naive_sorted`] | none |
//! | BBS (competitor, §7) | [`bbs::bbs`] | [`RTreeIndex`] |
//! | B²S² (§4.1, Fig. 5) | [`b2s2::b2s2`] | [`RTreeIndex`] |
//! | VS² (§4.2, Fig. 7) | [`vs2::vs2`] | [`VoronoiIndex`] |
//! | VCS² (§5) | [`vcs2::ContinuousSkyline`] | [`VoronoiIndex`] |
//! | mixed `S(A, Q)` (§6) | [`mixed`] | both |
//!
//! All algorithms return identical skylines (asserted by the test suite
//! against the naive oracle); they differ in cost — the geometric
//! machinery of §3 (convex-hull anchors, Theorem-1 free passes, the
//! pruning rectangle `B`, Voronoi-cell tests) is exactly what the fast
//! ones exploit.
//!
//! # Quick example
//!
//! ```
//! use ssq_core::{b2s2::b2s2, index::RTreeIndex, query::QueryContext};
//! use ssq_geom::Point;
//!
//! // Restaurants (data points) and team-member offices (query points).
//! let restaurants = vec![
//!     Point::new(0.2, 0.3),
//!     Point::new(0.5, 0.5),
//!     Point::new(0.9, 0.9),
//! ];
//! let offices = vec![Point::new(0.3, 0.3), Point::new(0.6, 0.4)];
//!
//! let index = RTreeIndex::new(&restaurants);
//! let ctx = QueryContext::new(&offices);
//! let result = b2s2(&index, &ctx);
//! assert!(result.contains(0) && result.contains(1));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod ann;
pub mod b2s2;
pub mod bbs;
pub mod continuous_mixed;
pub mod delta;
pub mod heap;
pub mod index;
pub mod key;
pub mod metric_naive;
pub mod mixed;
pub mod naive;
pub mod query;
pub mod ranked;
pub mod scratch;
pub mod stats;
pub mod vcs2;
pub mod vs2;

pub use ann::{aggregate_nearest_neighbor, Aggregate};
pub use b2s2::{b2s2, b2s2_kernel};
pub use bbs::bbs;
pub use continuous_mixed::ContinuousMixedSkyline;
pub use delta::{BatchError, DeltaStats, UpdateBatch};
pub use index::{RTreeIndex, VoronoiIndex};
pub use key::{KeyScratch, QueryKey};
pub use metric_naive::{naive_metric, naive_metric_with};
pub use naive::{naive_full, naive_sorted, naive_sorted_into, naive_sorted_kernel};
pub use query::QueryContext;
pub use ranked::{b2s2_ranked, b2s2_ranked_with, MaxDistance, Preference, WeightedSum};
pub use scratch::DistanceScratch;
pub use stats::{QueryStats, SkylineResult};
pub use vcs2::{ContinuousSkyline, OutcomeCounts, UpdateOutcome};
pub use vs2::{vs2, vs2_kernel, vs2_with, VsExpansion};
