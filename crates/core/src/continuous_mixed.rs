//! Continuous **mixed** skylines: maintaining `S(A, Q)` while the query
//! points move.
//!
//! §6 of the paper closes with "our B²S², VS², and VCS² algorithms answer
//! SSQs when mixed with non-spatial attributes". For the continuous case
//! the Pattern-I shortcut carries over directly: if neither the old nor
//! the new location of the moved object is a hull vertex, `CH(Q)` — and
//! with it the entire spatial side of the combined dominance — is
//! untouched, so `S(A, Q)` is unchanged and the update is free. Any other
//! update recomputes with the mixed VS² (whose Lemma-7 bound depends only
//! on `S(A)` and the hull vertices, both of which we keep cached).

use ssq_geom::Point;

use crate::index::VoronoiIndex;
use crate::mixed::{mixed_vs2, MixedContext};
use crate::query::QueryContext;
use crate::stats::QueryStats;
use crate::vcs2::{OutcomeCounts, UpdateOutcome};

/// A maintained mixed skyline `S(A, Q)` over a moving query set.
pub struct ContinuousMixedSkyline<'a> {
    index: &'a VoronoiIndex,
    attrs: &'a [Vec<f64>],
    query: Vec<Point>,
    ctx: QueryContext,
    skyline: Vec<u32>,
    counts: OutcomeCounts,
}

impl<'a> ContinuousMixedSkyline<'a> {
    /// Initializes the mixed skyline for query set `q`.
    pub fn new(
        index: &'a VoronoiIndex,
        attrs: &'a [Vec<f64>],
        q: &[Point],
    ) -> ContinuousMixedSkyline<'a> {
        let ctx = QueryContext::new(q);
        let skyline = {
            let mctx = MixedContext::new(index.points(), attrs, &ctx);
            mixed_vs2(index, &mctx).skyline
        };
        ContinuousMixedSkyline {
            index,
            attrs,
            query: q.to_vec(),
            ctx,
            skyline,
            counts: OutcomeCounts::default(),
        }
    }

    /// The current mixed skyline, sorted ascending.
    pub fn skyline(&self) -> &[u32] {
        &self.skyline
    }

    /// The current query set.
    pub fn query(&self) -> &[Point] {
        &self.query
    }

    /// Outcome counters since construction.
    pub fn counts(&self) -> OutcomeCounts {
        self.counts
    }

    /// Applies one location update.
    pub fn update(&mut self, obj: usize, new_loc: Point) -> (UpdateOutcome, QueryStats) {
        assert!(obj < self.query.len(), "query object index out of range");
        let old_loc = self.query[obj];
        if old_loc == new_loc {
            self.counts.unchanged += 1;
            return (UpdateOutcome::Unchanged, QueryStats::default());
        }
        let old_ctx = std::mem::replace(&mut self.ctx, {
            self.query[obj] = new_loc;
            QueryContext::new(&self.query)
        });

        // Pattern I: interior-to-interior move leaves CH(Q), and with it
        // the spatial half of the combined dominance, untouched.
        if old_ctx.hull().vertex_index(old_loc).is_none()
            && self.ctx.hull().vertex_index(new_loc).is_none()
        {
            debug_assert_eq!(old_ctx.anchors(), self.ctx.anchors());
            self.counts.unchanged += 1;
            return (UpdateOutcome::Unchanged, QueryStats::default());
        }

        let mctx = MixedContext::new(self.index.points(), self.attrs, &self.ctx);
        let result = mixed_vs2(self.index, &mctx);
        self.skyline = result.skyline;
        self.counts.recomputed += 1;
        (UpdateOutcome::Recomputed, result.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::mixed_naive;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn stream_stays_exact() {
        let points = pseudorandom(80, 11);
        let attrs: Vec<Vec<f64>> = pseudorandom(80, 12)
            .into_iter()
            .map(|v| vec![v.x, v.y])
            .collect();
        let idx = VoronoiIndex::new(&points).unwrap();
        let mut q: Vec<Point> = pseudorandom(5, 13)
            .into_iter()
            .map(|v| p(0.4 + v.x * 0.2, 0.4 + v.y * 0.2))
            .collect();
        let mut cont = ContinuousMixedSkyline::new(&idx, &attrs, &q);
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..40 {
            let obj = step % q.len();
            let np = p(
                (q[obj].x + (next() - 0.5) * 0.06).clamp(0.0, 1.0),
                (q[obj].y + (next() - 0.5) * 0.06).clamp(0.0, 1.0),
            );
            q[obj] = np;
            cont.update(obj, np);
            let ctx = QueryContext::new(&q);
            let mctx = MixedContext::new(&points, &attrs, &ctx);
            let want = mixed_naive(&points, &mctx);
            assert_eq!(cont.skyline(), &want.skyline[..], "step {step}");
        }
    }

    #[test]
    fn interior_moves_are_free() {
        let points = pseudorandom(50, 21);
        let attrs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let idx = VoronoiIndex::new(&points).unwrap();
        let q = vec![
            p(0.1, 0.1),
            p(0.9, 0.1),
            p(0.9, 0.9),
            p(0.1, 0.9),
            p(0.5, 0.5),
        ];
        let mut cont = ContinuousMixedSkyline::new(&idx, &attrs, &q);
        let before = cont.skyline().to_vec();
        let (outcome, stats) = cont.update(4, p(0.52, 0.48));
        assert_eq!(outcome, UpdateOutcome::Unchanged);
        assert_eq!(stats.points_examined, 0);
        assert_eq!(cont.skyline(), &before[..]);
        assert_eq!(cont.counts().unchanged, 1);
    }
}
