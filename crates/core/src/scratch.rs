//! The per-worker distance-scratch arena.
//!
//! Every kernel-path algorithm ([`naive_sorted_kernel`](crate::naive::naive_sorted_kernel),
//! [`vs2_kernel`](crate::vs2::vs2_kernel), [`b2s2_kernel`](crate::b2s2::b2s2_kernel),
//! the shard merge) stores its candidate distance vectors as rows of one
//! flat arena instead of a `Vec<f64>` per candidate. The arena is
//! **grown monotonically and never freed per query**: a serving worker
//! owns one [`DistanceScratch`] for its whole lifetime, `begin` resets
//! lengths but keeps every allocation, and after the first (warm-up)
//! query on a given workload shape the steady-state query path performs
//! no heap allocation at all.
//!
//! Storage is **tiled** for the data-parallel kernels in
//! [`ssq_geom::simd`]: rows are grouped into tiles of
//! [`LANES`] consecutive rows, each tile holding
//! one 32-byte-aligned [`Lane4`] per anchor (anchor-major within the
//! tile). Row `r`'s distance to anchor `j` lives at
//! `tiles[(r / LANES) * width + j].0[r % LANES]`; a tile's trailing
//! lanes are padded with `+inf`, which no finite row can be dominated
//! by ([`Lane4::PAD`]). Every dominance sweep below — the resolve
//! elimination loop, the staged-row test, the B²S² rectangle screen —
//! runs over whole tiles through the runtime-dispatched SIMD kernels
//! (scalar / tiled / SSE2 / AVX2) and consumes 4-wide survivor
//! bitmasks.
//!
//! Rows hold **squared** Euclidean distances by default (see
//! [`ssq_geom::kernel`] for why this preserves the dominance relation
//! exactly); [`DistanceScratch::push_row_with`] lets metric-generic
//! callers fill rows with arbitrary distances instead.
//!
//! Arena *growth events* (a buffer needing more capacity) are counted and
//! drained into [`QueryStats::allocations`] by the kernel algorithms, so
//! the zero-alloc claim is observable: after warm-up the counter stays 0,
//! while the scalar path counts one allocation per materialized distance
//! vector.

use ssq_geom::simd::{self, live_lane_mask, Lane4, LANES};
use ssq_geom::{Point, Rect};

use crate::heap::MinHeap;
use crate::stats::QueryStats;

/// A reusable arena of lane-tiled distance rows plus the auxiliary
/// buffers (sort permutation, result ids, traversal flags, a min-heap)
/// the kernel algorithms need. See the module docs.
#[derive(Debug, Default)]
pub struct DistanceScratch {
    /// Anchor-major AoSoA tiles: tile `t` spans
    /// `tiles[t * width..(t + 1) * width]`, one [`Lane4`] per anchor
    /// covering rows `t * LANES..(t + 1) * LANES`. Unused trailing
    /// lanes are `+inf` pads.
    tiles: Vec<Lane4>,
    /// Row width (= anchor count) set by [`DistanceScratch::begin`].
    width: usize,
    /// Per-row monotone ordering key (the row sum).
    keys: Vec<f64>,
    /// Per-row point id.
    ids: Vec<u32>,
    /// Per-row Theorem-1 certainty flag (inside `CH(Q)`).
    certain: Vec<bool>,
    /// Sort permutation over row indices.
    order: Vec<u32>,
    /// Resolved skyline ids (the arena's output buffer).
    result: Vec<u32>,
    /// Per-tile dominated-lane bitmasks for the resolve sweep.
    dead: Vec<u8>,
    /// Reusable traversal flags (VS² visited set).
    visited: Vec<bool>,
    /// Reusable traversal flags (VS² extracted set).
    extracted: Vec<bool>,
    /// Reusable traversal heap (VS²).
    heap: MinHeap<u32>,
    /// Spare row for transient vectors (extracted rows, rect bounds).
    spare: Vec<f64>,
    /// Buffer-growth events since the last [`DistanceScratch::take_allocations`].
    grown: u64,
}

impl DistanceScratch {
    /// An empty arena; buffers are allocated lazily on first use.
    pub fn new() -> DistanceScratch {
        DistanceScratch::default()
    }

    /// An arena pre-sized for up to `rows` candidate rows of `width`
    /// anchor distances each: every buffer is allocated up front, so
    /// even the *first* query on a matching workload shape runs
    /// growth-free. Lazily-grown arenas pay their entire allocation bill
    /// inside the first query's timed hot path — for the naive kernel,
    /// which fills one row per data point, that warm-up dominates the
    /// first response; pre-sizing at worker spawn moves the cost to
    /// construction, where nobody is waiting on a query.
    ///
    /// Passing `rows == 0` (or `width == 0`) degrades gracefully to the
    /// lazy [`DistanceScratch::new`] behavior.
    pub fn with_capacity(rows: usize, width: usize) -> DistanceScratch {
        let mut s = DistanceScratch::default();
        let tiles = rows.div_ceil(LANES);
        s.tiles.reserve(tiles * width);
        s.keys.reserve(rows);
        s.ids.reserve(rows);
        s.certain.reserve(rows);
        s.order.reserve(rows);
        s.result.reserve(rows);
        s.dead.reserve(tiles);
        s.visited.reserve(rows);
        s.extracted.reserve(rows);
        s.spare.reserve(width);
        s
    }

    /// Starts a new query over `width` anchors: every row, key, and
    /// result is discarded, every allocation is kept.
    pub fn begin(&mut self, width: usize) {
        assert!(width > 0, "a query has at least one anchor");
        self.width = width;
        self.tiles.clear();
        self.keys.clear();
        self.ids.clear();
        self.certain.clear();
        self.order.clear();
        self.result.clear();
    }

    /// The row width set by the last [`DistanceScratch::begin`].
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows currently in the arena.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The distance of row `r` to anchor `j` (rows are lane-tiled, so
    /// a row is not contiguous — see the module docs for the layout).
    #[inline]
    pub fn lane(&self, r: usize, j: usize) -> f64 {
        self.tiles[(r / LANES) * self.width + j].0[r % LANES]
    }

    /// The point id of row `r`.
    #[inline]
    pub fn id(&self, r: usize) -> u32 {
        self.ids[r]
    }

    /// The ordering key (row sum) of row `r`.
    #[inline]
    pub fn key(&self, r: usize) -> f64 {
        self.keys[r]
    }

    /// Grows `vec` to hold at least `need` elements, counting one growth
    /// event when an allocation actually happens. Reserving here (rather
    /// than merely comparing `need` against the capacity) keeps the
    /// counter honest for buffers whose *worst-case* need exceeds what a
    /// query ends up pushing: the buffer jumps to the worst case once,
    /// and every later query on the same shape is genuinely growth-free.
    fn ensure<T>(vec: &mut Vec<T>, need: usize, grown: &mut u64) {
        if need > vec.capacity() {
            vec.reserve(need - vec.len());
            *grown += 1;
        }
    }

    /// Copies row `r` out of its tile into `out` (one entry per anchor).
    #[inline]
    fn extract_row(tiles: &[Lane4], width: usize, r: usize, out: &mut [f64]) {
        let (t, l) = (r / LANES, r % LANES);
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = tiles[t * width + j].0[l];
        }
    }

    /// Appends a row of **squared** Euclidean anchor distances for point
    /// `id` at location `p`, returning the new row's index. The row key
    /// is the squared-distance sum (monotone under dominance).
    // ssq-analyze: deny-alloc
    pub fn push_row(&mut self, id: u32, certain: bool, p: Point, anchors: &[Point]) -> usize {
        self.push_row_with(id, certain, anchors, |q| p.distance_sq(q))
    }

    /// Like [`DistanceScratch::push_row`] but fills the row with
    /// `dist(anchor)` for each anchor — the metric-generic entry point
    /// (rows must all use the same distance convention within one query).
    // ssq-analyze: deny-alloc
    pub fn push_row_with<F: FnMut(Point) -> f64>(
        &mut self,
        id: u32,
        certain: bool,
        anchors: &[Point],
        mut dist: F,
    ) -> usize {
        debug_assert_eq!(anchors.len(), self.width, "row width mismatch");
        let r = self.keys.len();
        let (t, l) = (r / LANES, r % LANES);
        let w = self.width;
        if l == 0 {
            // First row of a fresh tile: extend with pad lanes.
            Self::ensure(&mut self.tiles, (t + 1) * w, &mut self.grown);
            self.tiles.resize((t + 1) * w, Lane4::PAD);
        }
        Self::ensure(&mut self.keys, r + 1, &mut self.grown);
        Self::ensure(&mut self.ids, r + 1, &mut self.grown);
        Self::ensure(&mut self.certain, r + 1, &mut self.grown);
        let mut sum = 0.0;
        for (j, &q) in anchors.iter().enumerate() {
            let d = dist(q);
            sum += d;
            self.tiles[t * w + j].0[l] = d;
        }
        self.keys.push(sum);
        self.ids.push(id);
        self.certain.push(certain);
        r
    }

    /// Batch-fills rows `0..points.len()` with **squared** Euclidean
    /// anchor distances through the dispatched SIMD tile kernel — one
    /// whole tile (four points × all anchors) per sweep instead of the
    /// point-at-a-time [`DistanceScratch::push_row`] loop. Row `i` gets
    /// id `i` and `certain = false` (the naive scan's convention). Keys
    /// are bit-identical to the `push_row` path: every kernel computes
    /// `dx·dx + dy·dy` and accumulates sums in anchor order.
    // ssq-analyze: deny-alloc
    pub fn fill_rows(&mut self, points: &[Point], anchors: &[Point]) {
        debug_assert_eq!(anchors.len(), self.width, "row width mismatch");
        debug_assert!(self.keys.is_empty(), "fill_rows expects a fresh arena");
        let d = simd::dispatch();
        let n = points.len();
        let w = self.width;
        let tiles = n.div_ceil(LANES);
        Self::ensure(&mut self.tiles, tiles * w, &mut self.grown);
        self.tiles.resize(tiles * w, Lane4::PAD);
        Self::ensure(&mut self.keys, n, &mut self.grown);
        Self::ensure(&mut self.ids, n, &mut self.grown);
        Self::ensure(&mut self.certain, n, &mut self.grown);
        let mut pts = [Point::default(); LANES];
        let mut keys = [0.0f64; LANES];
        for t in 0..tiles {
            let base = t * LANES;
            let m = (n - base).min(LANES);
            pts[..m].copy_from_slice(&points[base..base + m]);
            pts[m..].fill(points[base + m - 1]);
            d.fill_tile(
                &pts,
                anchors,
                &mut self.tiles[t * w..(t + 1) * w],
                &mut keys,
            );
            if m < LANES {
                // Repad the duplicate tail lanes so they stay neutral.
                for j in 0..w {
                    for l in m..LANES {
                        self.tiles[t * w + j].0[l] = f64::INFINITY;
                    }
                }
            }
            for (l, &key) in keys.iter().enumerate().take(m) {
                self.keys.push(key);
                self.ids.push((base + l) as u32);
                self.certain.push(false);
            }
        }
    }

    /// Removes the most recently pushed row (used by incremental
    /// traversals that stage a candidate row, test it, and reject it).
    // ssq-analyze: deny-alloc
    pub fn pop_row(&mut self) {
        debug_assert!(!self.keys.is_empty(), "pop from an empty arena");
        let r = self.keys.len() - 1;
        self.keys.pop();
        self.ids.pop();
        self.certain.pop();
        let (t, l) = (r / LANES, r % LANES);
        let w = self.width;
        if l == 0 {
            self.tiles.truncate(t * w);
        } else {
            // Re-pad the vacated lane so later tile sweeps stay sound.
            for j in 0..w {
                self.tiles[t * w + j].0[l] = f64::INFINITY;
            }
        }
    }

    /// `true` when the **last** row is dominated by any earlier row,
    /// sweeping whole tiles through the dispatched `dominators_of`
    /// bitmask kernel. Counting matches the scalar row-at-a-time scan
    /// exactly: one dominance check per earlier row up to and including
    /// the first dominator (the mask's lowest set bit), one per earlier
    /// row when there is none.
    // ssq-analyze: deny-alloc
    pub fn last_dominated(&mut self, stats: &mut QueryStats) -> bool {
        let last = self.keys.len() - 1;
        if last == 0 {
            return false;
        }
        let d = simd::dispatch();
        let w = self.width;
        Self::ensure(&mut self.spare, w, &mut self.grown);
        let mut spare = std::mem::take(&mut self.spare);
        spare.clear();
        spare.resize(w, 0.0);
        Self::extract_row(&self.tiles, w, last, &mut spare);
        let mut found = false;
        // Tiles covering rows 0..last. The tile holding `last` itself is
        // safe to sweep whole: the row never dominates itself (no strict
        // anchor) and lanes past it are +inf pads, so no stray bits.
        for t in 0..=(last - 1) / LANES {
            let live = (last - t * LANES).min(LANES) as u64;
            let mask = d.dominators_of(&spare, &self.tiles[t * w..(t + 1) * w]);
            debug_assert_eq!(mask & !live_lane_mask(last - t * LANES), 0);
            if mask != 0 {
                stats.dominance_checks += u64::from(mask.trailing_zeros()) + 1;
                found = true;
                break;
            }
            stats.dominance_checks += live;
        }
        self.spare = spare;
        found
    }

    /// `true` when rectangle `mbr` is dominated by any row: dominated by
    /// row `s` iff `mindist(mbr, q)² > s[q]` for every anchor `q` — the
    /// B²S² pruning screen (§4.1) over **squared**-distance rows
    /// (squaring both sides of the scalar comparison; both are
    /// nonnegative, so the predicate is unchanged). The per-anchor
    /// `mindist²` bounds are computed once into the spare row, then every
    /// tile is screened with one `all_lt` bitmask sweep. Counting
    /// replicates the scalar row-at-a-time scan: one dominance check and
    /// `|CHv(Q)|` distance computations per row up to and including the
    /// first dominating row.
    // ssq-analyze: deny-alloc
    pub fn rect_dominated_sq(
        &mut self,
        mbr: &Rect,
        anchors: &[Point],
        stats: &mut QueryStats,
    ) -> bool {
        let n = self.keys.len();
        if n == 0 {
            return false;
        }
        let d = simd::dispatch();
        let w = self.width;
        let k = anchors.len() as u64;
        Self::ensure(&mut self.spare, w, &mut self.grown);
        let mut spare = std::mem::take(&mut self.spare);
        spare.clear();
        for &q in anchors {
            let m = mbr.mindist(q);
            spare.push(m * m);
        }
        let mut found = false;
        for t in 0..n.div_ceil(LANES) {
            let live = (n - t * LANES).min(LANES) as u64;
            let mask = d.all_lt(&spare, &self.tiles[t * w..(t + 1) * w]);
            debug_assert_eq!(mask & !live_lane_mask(n - t * LANES), 0);
            if mask != 0 {
                let first = u64::from(mask.trailing_zeros()) + 1;
                stats.dominance_checks += first;
                stats.distance_computations += first * k;
                found = true;
                break;
            }
            stats.dominance_checks += live;
            stats.distance_computations += live * k;
        }
        self.spare = spare;
        found
    }

    /// Resolves the pushed rows into the exact skyline as a two-phase
    /// bitmask sweep:
    ///
    /// 1. **Pre-filter** — the `(key, id)`-minimum row is found in one
    ///    linear pass (it is always skyline: dominance implies a
    ///    strictly smaller key, so nothing can dominate the key
    ///    minimum) and swept over every tile with the dispatched
    ///    `dominated_by_ref` bitmask kernel, OR-ing survivor masks into
    ///    per-tile dead masks. On typical workloads this one sweep
    ///    eliminates the vast majority of rows, so the sort that
    ///    follows is over dozens of survivors instead of every row —
    ///    the full-row sort used to dominate the naive kernel's query
    ///    time.
    /// 2. **Sweep-out** — surviving rows (plus all certain rows, which
    ///    bypass dominance entirely per Theorem 1) are sorted by
    ///    `(key, id)` and processed in ascending key order; dominators
    ///    always precede dominatees, each accepted row is swept over
    ///    the tiles that still have live lanes, and later rows whose
    ///    lane went dead are skipped without any per-row test.
    ///
    /// Returns the surviving ids sorted ascending; the slice lives in
    /// the arena's result buffer — copy it out before the next
    /// [`DistanceScratch::begin`].
    // ssq-analyze: deny-alloc
    pub fn resolve(&mut self, stats: &mut QueryStats) -> &[u32] {
        let n = self.keys.len();
        self.result.clear();
        if n == 0 {
            return &self.result;
        }
        let d = simd::dispatch();
        let w = self.width;
        let keys = &self.keys;
        let ids = &self.ids;
        let mut min_r = 0usize;
        for r in 1..n {
            if keys[r]
                .total_cmp(&keys[min_r])
                .then(ids[r].cmp(&ids[min_r]))
                .is_lt()
            {
                min_r = r;
            }
        }
        let tiles = n.div_ceil(LANES);
        Self::ensure(&mut self.dead, tiles, &mut self.grown);
        self.dead.clear();
        self.dead.resize(tiles, 0);
        Self::ensure(&mut self.spare, w, &mut self.grown);
        let mut spare = std::mem::take(&mut self.spare);
        spare.clear();
        spare.resize(w, 0.0);
        // Phase 1: sweep the key-minimum row. Its own lane never goes
        // dead (a row has no strict anchor against itself), and bits set
        // on +inf pad lanes are never read back.
        Self::extract_row(&self.tiles, w, min_r, &mut spare);
        for (t, dead) in self.dead.iter_mut().enumerate() {
            let live = live_lane_mask(n - t * LANES);
            stats.dominance_checks += u64::from(live.count_ones());
            *dead |= d.dominated_by_ref(&spare, &self.tiles[t * w..(t + 1) * w]);
        }
        // Phase 2: sort the survivors and sweep outward. Rows the
        // minimum dominated would have been skipped as dead anyway;
        // certain rows stay in even when dominated.
        Self::ensure(&mut self.order, n, &mut self.grown);
        self.order.clear();
        for r in 0..n {
            if (self.dead[r / LANES] >> (r % LANES)) & 1 == 0 || self.certain[r] {
                self.order.push(r as u32);
            }
        }
        self.order.sort_unstable_by(|&a, &b| {
            keys[a as usize]
                .total_cmp(&keys[b as usize])
                .then(ids[a as usize].cmp(&ids[b as usize]))
        });
        Self::ensure(&mut self.result, n, &mut self.grown);
        // The result buffer holds KEPT ROW INDICES during the sweep and
        // is rewritten to point ids afterwards — no extra buffer needed.
        for oi in 0..self.order.len() {
            let r = self.order[oi] as usize;
            let (t, l) = (r / LANES, r % LANES);
            if !self.certain[r] && (self.dead[t] >> l) & 1 == 1 {
                continue;
            }
            self.result.push(r as u32);
            if r == min_r {
                // Already swept in phase 1.
                continue;
            }
            Self::extract_row(&self.tiles, w, r, &mut spare);
            for (t2, dead) in self.dead.iter_mut().enumerate() {
                let live = live_lane_mask(n - t2 * LANES) & !*dead;
                if live == 0 {
                    continue;
                }
                stats.dominance_checks += u64::from(live.count_ones());
                *dead |= d.dominated_by_ref(&spare, &self.tiles[t2 * w..(t2 + 1) * w]);
            }
        }
        self.spare = spare;
        for slot in &mut self.result {
            *slot = self.ids[*slot as usize];
        }
        self.result.sort_unstable();
        &self.result
    }

    /// The arena's result buffer — the ids produced by the last
    /// [`DistanceScratch::resolve`] or [`DistanceScratch::ids_sorted`]
    /// call (empty after [`DistanceScratch::begin`]).
    pub fn result(&self) -> &[u32] {
        &self.result
    }

    /// The ids currently in the arena, sorted ascending, via the result
    /// buffer — for traversals whose rows are already the exact skyline.
    // ssq-analyze: deny-alloc
    pub fn ids_sorted(&mut self) -> &[u32] {
        let need = self.ids.len();
        Self::ensure(&mut self.result, need, &mut self.grown);
        self.result.clear();
        self.result.extend_from_slice(&self.ids);
        self.result.sort_unstable();
        &self.result
    }

    /// Takes the two reusable traversal-flag buffers, cleared and resized
    /// to `n` `false` entries. Return them with
    /// [`DistanceScratch::restore_flags`] so their capacity survives to
    /// the next query. (Moved out rather than borrowed so the caller can
    /// keep using the arena while holding them.)
    pub fn take_flags(&mut self, n: usize) -> (Vec<bool>, Vec<bool>) {
        Self::ensure(&mut self.visited, n, &mut self.grown);
        Self::ensure(&mut self.extracted, n, &mut self.grown);
        let mut visited = std::mem::take(&mut self.visited);
        let mut extracted = std::mem::take(&mut self.extracted);
        visited.clear();
        visited.resize(n, false);
        extracted.clear();
        extracted.resize(n, false);
        (visited, extracted)
    }

    /// Returns the flag buffers taken by [`DistanceScratch::take_flags`].
    pub fn restore_flags(&mut self, visited: Vec<bool>, extracted: Vec<bool>) {
        self.visited = visited;
        self.extracted = extracted;
    }

    /// Takes the reusable traversal heap, cleared. Return it with
    /// [`DistanceScratch::restore_heap`].
    pub fn take_heap(&mut self) -> MinHeap<u32> {
        let mut heap = std::mem::take(&mut self.heap);
        heap.clear();
        heap
    }

    /// Returns the heap taken by [`DistanceScratch::take_heap`].
    pub fn restore_heap(&mut self, heap: MinHeap<u32>) {
        self.heap = heap;
    }

    /// Fills the spare row with `mbr.mindist(q)` per anchor (the
    /// admissible per-anchor lower bound used by the ranked search) and
    /// returns it.
    // ssq-analyze: deny-alloc
    pub fn fill_spare_mindist(&mut self, mbr: &Rect, anchors: &[Point]) -> &[f64] {
        Self::ensure(&mut self.spare, anchors.len(), &mut self.grown);
        self.spare.clear();
        self.spare.extend(anchors.iter().map(|&q| mbr.mindist(q)));
        &self.spare
    }

    /// Buffer-growth events since the last call, resetting the counter.
    /// Kernel algorithms drain this into [`QueryStats::allocations`] at
    /// the end of each query: 0 means the query ran allocation-free.
    pub fn take_allocations(&mut self) -> u64 {
        std::mem::take(&mut self.grown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_geom::kernel;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn row_of(s: &DistanceScratch, r: usize) -> Vec<f64> {
        (0..s.width()).map(|j| s.lane(r, j)).collect()
    }

    #[test]
    fn rows_hold_squared_distances_and_keys_their_sums() {
        let anchors = [p(0.0, 0.0), p(3.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        let r = s.push_row(7, false, p(0.0, 4.0), &anchors);
        assert_eq!(row_of(&s, r), &[16.0, 25.0]);
        assert_eq!(s.key(r), 41.0);
        assert_eq!(s.id(r), 7);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fill_rows_matches_push_row_bit_for_bit() {
        let anchors = [p(0.0, 0.0), p(3.0, 1.0), p(-2.0, 5.0)];
        let points: Vec<Point> = (0..13)
            .map(|i| p(i as f64 * 0.37 - 2.0, (i * i) as f64 * 0.11))
            .collect();
        let mut pushed = DistanceScratch::new();
        pushed.begin(anchors.len());
        for (i, &pt) in points.iter().enumerate() {
            pushed.push_row(i as u32, false, pt, &anchors);
        }
        // Every tile-remainder size, so the padded tail path is covered.
        for n in 0..points.len() {
            let mut filled = DistanceScratch::new();
            filled.begin(anchors.len());
            filled.fill_rows(&points[..n], &anchors);
            assert_eq!(filled.len(), n);
            for r in 0..n {
                assert_eq!(filled.id(r), pushed.id(r));
                assert_eq!(filled.key(r).to_bits(), pushed.key(r).to_bits(), "row {r}");
                for j in 0..anchors.len() {
                    assert_eq!(
                        filled.lane(r, j).to_bits(),
                        pushed.lane(r, j).to_bits(),
                        "row {r} anchor {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn resolve_matches_a_naive_dominance_filter() {
        let anchors = [p(0.0, 0.0), p(1.0, 0.0)];
        let pts = [p(0.2, 0.1), p(0.5, 0.5), p(0.9, 0.05), p(0.5, 0.9)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        for (i, &pt) in pts.iter().enumerate() {
            s.push_row(i as u32, false, pt, &anchors);
        }
        let mut stats = QueryStats::default();
        let got: Vec<u32> = s.resolve(&mut stats).to_vec();
        // Oracle over true distances.
        let vecs: Vec<Vec<f64>> = pts
            .iter()
            .map(|&pt| anchors.iter().map(|&q| pt.distance(q)).collect())
            .collect();
        let want: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| {
                !vecs
                    .iter()
                    .enumerate()
                    .any(|(j, v)| j != i as usize && kernel::dominates(v, &vecs[i as usize]))
            })
            .collect();
        assert_eq!(got, want);
        assert!(stats.dominance_checks > 0);
    }

    #[test]
    fn certain_rows_always_survive() {
        let anchors = [p(0.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(1);
        s.push_row(0, false, p(0.1, 0.0), &anchors);
        // Dominated, but marked certain — must survive anyway.
        s.push_row(1, true, p(0.9, 0.0), &anchors);
        let mut stats = QueryStats::default();
        assert_eq!(s.resolve(&mut stats), &[0, 1]);
    }

    #[test]
    fn rect_screen_matches_the_scalar_predicate_and_counters() {
        let anchors = [p(0.0, 0.0), p(10.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        // Rows for 6 skyline points, so the screen spans a partial tile.
        let pts = [
            p(1.0, 0.0),
            p(9.0, 0.0),
            p(5.0, 0.5),
            p(4.0, 1.0),
            p(6.0, 1.0),
            p(5.0, -0.5),
        ];
        for (i, &pt) in pts.iter().enumerate() {
            s.push_row(i as u32, false, pt, &anchors);
        }
        let scalar = |mbr: &Rect, s: &DistanceScratch, stats: &mut QueryStats| -> bool {
            for r in 0..s.len() {
                stats.dominance_checks += 1;
                stats.distance_computations += anchors.len() as u64;
                let dominated = anchors.iter().enumerate().all(|(j, &q)| {
                    let m = mbr.mindist(q);
                    m * m > s.lane(r, j)
                });
                if dominated {
                    return true;
                }
            }
            false
        };
        for (lo, hi) in [
            (p(4.0, 20.0), p(6.0, 22.0)), // far from both anchors: dominated
            (p(0.0, 0.0), p(1.0, 1.0)),   // hugs anchor 0: survives
            (p(4.5, 0.0), p(5.5, 1.0)),   // overlaps the middle cluster
            (p(40.0, 0.0), p(50.0, 1.0)), // far right: dominated
        ] {
            let mbr = Rect::from_corners(lo, hi);
            let mut want_stats = QueryStats::default();
            let want = scalar(&mbr, &s, &mut want_stats);
            let mut got_stats = QueryStats::default();
            let got = s.rect_dominated_sq(&mbr, &anchors, &mut got_stats);
            assert_eq!(got, want, "{mbr:?}");
            assert_eq!(
                got_stats.dominance_checks, want_stats.dominance_checks,
                "{mbr:?}"
            );
            assert_eq!(
                got_stats.distance_computations, want_stats.distance_computations,
                "{mbr:?}"
            );
        }
    }

    #[test]
    fn growth_is_counted_once_then_reuse_is_free() {
        let anchors = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0)];
        let mut s = DistanceScratch::new();
        let run = |s: &mut DistanceScratch| {
            s.begin(3);
            for i in 0..64u32 {
                s.push_row(i, false, p(i as f64 * 0.01, 0.5), &anchors);
            }
            let mut stats = QueryStats::default();
            s.resolve(&mut stats);
            let (v, e) = s.take_flags(64);
            s.restore_flags(v, e);
            let h = s.take_heap();
            s.restore_heap(h);
            s.take_allocations()
        };
        let warmup = run(&mut s);
        assert!(warmup > 0, "first query must grow the arena");
        for trial in 0..5 {
            assert_eq!(run(&mut s), 0, "steady-state trial {trial} allocated");
        }
    }

    #[test]
    fn a_presized_arena_makes_even_the_first_query_growth_free() {
        let anchors = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0)];
        let mut s = DistanceScratch::with_capacity(64, anchors.len());
        s.begin(anchors.len());
        for i in 0..64u32 {
            s.push_row(i, false, p(i as f64 * 0.01, 0.5), &anchors);
        }
        let mut stats = QueryStats::default();
        s.resolve(&mut stats);
        let (v, e) = s.take_flags(64);
        s.restore_flags(v, e);
        s.fill_spare_mindist(&Rect::from_corners(p(0.0, 0.0), p(1.0, 1.0)), &anchors);
        assert_eq!(
            s.take_allocations(),
            0,
            "pre-sized arena must not grow on its first query"
        );
    }

    #[test]
    fn pop_row_and_last_dominated_support_incremental_use() {
        let anchors = [p(0.0, 0.0), p(1.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        s.push_row(0, false, p(0.1, 0.0), &anchors);
        let mut stats = QueryStats::default();
        s.push_row(1, false, p(0.2, 1.0), &anchors); // farther from both
        assert!(s.last_dominated(&mut stats));
        s.pop_row();
        assert_eq!(s.len(), 1);
        s.push_row(2, false, p(0.9, 0.0), &anchors); // closer to anchor 1
        assert!(!s.last_dominated(&mut stats));
        assert_eq!(s.ids_sorted(), &[0, 2]);
    }

    #[test]
    fn last_dominated_counts_like_the_scalar_scan_across_tile_shapes() {
        let anchors = [p(0.0, 0.0), p(7.0, 0.0)];
        // 7 rows (one full tile + a partial): the staged row is
        // dominated first by row 4 (one lane into the second tile), so
        // the scalar scan counts 5 checks.
        let mut s = DistanceScratch::new();
        s.begin(2);
        for i in 0..8u32 {
            // A diagonal staircase: mutually incomparable.
            let x = 0.5 + i as f64 * 0.75;
            s.push_row(i, false, p(x, 0.0), &anchors);
        }
        // Pop rows so only rows 0..=5 can dominate; row 5 sits mid-tile.
        s.pop_row();
        s.pop_row();
        s.push_row(8, false, p(0.5 + 5.0 * 0.75, 3.0), &anchors); // row 5 + offset
        let mut stats = QueryStats::default();
        assert!(s.last_dominated(&mut stats));
        assert_eq!(stats.dominance_checks, 5);
        // Not dominated: counts one check per earlier row.
        s.pop_row();
        s.push_row(9, false, p(-0.1, 0.0), &anchors); // nearest to anchor 0
        let mut stats = QueryStats::default();
        assert!(!s.last_dominated(&mut stats));
        assert_eq!(stats.dominance_checks, 6);
    }
}
