//! The per-worker distance-scratch arena.
//!
//! Every kernel-path algorithm ([`naive_sorted_kernel`](crate::naive::naive_sorted_kernel),
//! [`vs2_kernel`](crate::vs2::vs2_kernel), [`b2s2_kernel`](crate::b2s2::b2s2_kernel),
//! the shard merge) stores its candidate distance vectors as rows of one
//! flat structure-of-arrays buffer instead of a `Vec<f64>` per candidate.
//! The arena is **grown monotonically and never freed per query**: a
//! serving worker owns one [`DistanceScratch`] for its whole lifetime,
//! `begin` resets lengths but keeps every allocation, and after the first
//! (warm-up) query on a given workload shape the steady-state query path
//! performs no heap allocation at all.
//!
//! Rows hold **squared** Euclidean distances by default (see
//! [`ssq_geom::kernel`] for why this preserves the dominance relation
//! exactly); [`DistanceScratch::push_row_with`] lets metric-generic
//! callers fill rows with arbitrary distances instead.
//!
//! Arena *growth events* (a buffer needing more capacity) are counted and
//! drained into [`QueryStats::allocations`] by the kernel algorithms, so
//! the zero-alloc claim is observable: after warm-up the counter stays 0,
//! while the scalar path counts one allocation per materialized distance
//! vector.

use ssq_geom::{kernel, Point, Rect};

use crate::heap::MinHeap;
use crate::stats::QueryStats;

/// A reusable structure-of-arrays arena of distance rows plus the
/// auxiliary buffers (sort permutation, result ids, traversal flags, a
/// min-heap) the kernel algorithms need. See the module docs.
#[derive(Debug, Default)]
pub struct DistanceScratch {
    /// Row-major `rows × width` distance entries.
    dists: Vec<f64>,
    /// Row width (= anchor count) set by [`DistanceScratch::begin`].
    width: usize,
    /// Per-row monotone ordering key (the row sum).
    keys: Vec<f64>,
    /// Per-row point id.
    ids: Vec<u32>,
    /// Per-row Theorem-1 certainty flag (inside `CH(Q)`).
    certain: Vec<bool>,
    /// Sort permutation over row indices.
    order: Vec<u32>,
    /// Resolved skyline ids (the arena's output buffer).
    result: Vec<u32>,
    /// Reusable traversal flags (VS² visited set).
    visited: Vec<bool>,
    /// Reusable traversal flags (VS² extracted set).
    extracted: Vec<bool>,
    /// Reusable traversal heap (VS²).
    heap: MinHeap<u32>,
    /// Spare row for transient vectors (rect lower bounds, etc.).
    spare: Vec<f64>,
    /// Buffer-growth events since the last [`DistanceScratch::take_allocations`].
    grown: u64,
}

impl DistanceScratch {
    /// An empty arena; buffers are allocated lazily on first use.
    pub fn new() -> DistanceScratch {
        DistanceScratch::default()
    }

    /// An arena pre-sized for up to `rows` candidate rows of `width`
    /// anchor distances each: every buffer is allocated up front, so
    /// even the *first* query on a matching workload shape runs
    /// growth-free. Lazily-grown arenas pay their entire allocation bill
    /// inside the first query's timed hot path — for the naive kernel,
    /// which pushes one row per data point, that warm-up dominates the
    /// first response; pre-sizing at worker spawn moves the cost to
    /// construction, where nobody is waiting on a query.
    ///
    /// Passing `rows == 0` (or `width == 0`) degrades gracefully to the
    /// lazy [`DistanceScratch::new`] behavior.
    pub fn with_capacity(rows: usize, width: usize) -> DistanceScratch {
        let mut s = DistanceScratch::default();
        s.dists.reserve(rows * width);
        s.keys.reserve(rows);
        s.ids.reserve(rows);
        s.certain.reserve(rows);
        s.order.reserve(rows);
        s.result.reserve(rows);
        s.visited.reserve(rows);
        s.extracted.reserve(rows);
        s.spare.reserve(width);
        s
    }

    /// Starts a new query over `width` anchors: every row, key, and
    /// result is discarded, every allocation is kept.
    pub fn begin(&mut self, width: usize) {
        assert!(width > 0, "a query has at least one anchor");
        self.width = width;
        self.dists.clear();
        self.keys.clear();
        self.ids.clear();
        self.certain.clear();
        self.order.clear();
        self.result.clear();
    }

    /// The row width set by the last [`DistanceScratch::begin`].
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows currently in the arena.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Row `r` as a slice of `width` distances.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.dists[r * self.width..(r + 1) * self.width]
    }

    /// The point id of row `r`.
    #[inline]
    pub fn id(&self, r: usize) -> u32 {
        self.ids[r]
    }

    /// The ordering key (row sum) of row `r`.
    #[inline]
    pub fn key(&self, r: usize) -> f64 {
        self.keys[r]
    }

    /// Grows `vec` to hold at least `need` elements, counting one growth
    /// event when an allocation actually happens. Reserving here (rather
    /// than merely comparing `need` against the capacity) keeps the
    /// counter honest for buffers whose *worst-case* need exceeds what a
    /// query ends up pushing: the buffer jumps to the worst case once,
    /// and every later query on the same shape is genuinely growth-free.
    fn ensure<T>(vec: &mut Vec<T>, need: usize, grown: &mut u64) {
        if need > vec.capacity() {
            vec.reserve(need - vec.len());
            *grown += 1;
        }
    }

    /// Appends a row of **squared** Euclidean anchor distances for point
    /// `id` at location `p`, returning the new row's index. The row key
    /// is the squared-distance sum (monotone under dominance).
    // ssq-analyze: deny-alloc
    pub fn push_row(&mut self, id: u32, certain: bool, p: Point, anchors: &[Point]) -> usize {
        self.push_row_with(id, certain, anchors, |q| p.distance_sq(q))
    }

    /// Like [`DistanceScratch::push_row`] but fills the row with
    /// `dist(anchor)` for each anchor — the metric-generic entry point
    /// (rows must all use the same distance convention within one query).
    // ssq-analyze: deny-alloc
    pub fn push_row_with<F: FnMut(Point) -> f64>(
        &mut self,
        id: u32,
        certain: bool,
        anchors: &[Point],
        mut dist: F,
    ) -> usize {
        debug_assert_eq!(anchors.len(), self.width, "row width mismatch");
        let r = self.keys.len();
        let dists_need = self.dists.len() + self.width;
        Self::ensure(&mut self.dists, dists_need, &mut self.grown);
        Self::ensure(&mut self.keys, r + 1, &mut self.grown);
        Self::ensure(&mut self.ids, r + 1, &mut self.grown);
        Self::ensure(&mut self.certain, r + 1, &mut self.grown);
        let mut sum = 0.0;
        for &q in anchors {
            let d = dist(q);
            sum += d;
            self.dists.push(d);
        }
        self.keys.push(sum);
        self.ids.push(id);
        self.certain.push(certain);
        r
    }

    /// Removes the most recently pushed row (used by incremental
    /// traversals that stage a candidate row, test it, and reject it).
    // ssq-analyze: deny-alloc
    pub fn pop_row(&mut self) {
        debug_assert!(!self.keys.is_empty(), "pop from an empty arena");
        self.keys.pop();
        self.ids.pop();
        self.certain.pop();
        self.dists.truncate(self.dists.len() - self.width);
    }

    /// `true` when the **last** row is dominated by any earlier row,
    /// counting one dominance check per comparison into `stats`.
    // ssq-analyze: deny-alloc
    pub fn last_dominated(&self, stats: &mut QueryStats) -> bool {
        let last = self.keys.len() - 1;
        let candidate = self.row(last);
        for r in 0..last {
            stats.dominance_checks += 1;
            if kernel::dominates(self.row(r), candidate) {
                return true;
            }
        }
        false
    }

    /// Resolves the pushed rows into the exact skyline: sorts row indices
    /// by `(key, id)`, sweeps in ascending key order testing each
    /// non-certain row against the rows kept so far (dominance implies a
    /// strictly smaller key, so dominators always precede dominatees),
    /// and returns the surviving ids sorted ascending. The returned slice
    /// lives in the arena's result buffer — copy it out before the next
    /// [`DistanceScratch::begin`].
    // ssq-analyze: deny-alloc
    pub fn resolve(&mut self, stats: &mut QueryStats) -> &[u32] {
        let n = self.keys.len();
        Self::ensure(&mut self.order, n, &mut self.grown);
        self.order.clear();
        self.order.extend(0..n as u32);
        let keys = &self.keys;
        let ids = &self.ids;
        self.order.sort_unstable_by(|&a, &b| {
            keys[a as usize]
                .total_cmp(&keys[b as usize])
                .then(ids[a as usize].cmp(&ids[b as usize]))
        });
        Self::ensure(&mut self.result, n, &mut self.grown);
        self.result.clear();
        // The result buffer holds KEPT ROW INDICES during the sweep and
        // is rewritten to point ids afterwards — no extra buffer needed.
        'next: for oi in 0..n {
            let r = self.order[oi] as usize;
            if !self.certain[r] {
                let candidate = self.row(r);
                for ki in 0..self.result.len() {
                    let kept = self.result[ki] as usize;
                    stats.dominance_checks += 1;
                    if kernel::dominates(self.row(kept), candidate) {
                        continue 'next;
                    }
                }
            }
            self.result.push(r as u32);
        }
        for slot in &mut self.result {
            *slot = self.ids[*slot as usize];
        }
        self.result.sort_unstable();
        &self.result
    }

    /// The arena's result buffer — the ids produced by the last
    /// [`DistanceScratch::resolve`] or [`DistanceScratch::ids_sorted`]
    /// call (empty after [`DistanceScratch::begin`]).
    pub fn result(&self) -> &[u32] {
        &self.result
    }

    /// The ids currently in the arena, sorted ascending, via the result
    /// buffer — for traversals whose rows are already the exact skyline.
    // ssq-analyze: deny-alloc
    pub fn ids_sorted(&mut self) -> &[u32] {
        let need = self.ids.len();
        Self::ensure(&mut self.result, need, &mut self.grown);
        self.result.clear();
        self.result.extend_from_slice(&self.ids);
        self.result.sort_unstable();
        &self.result
    }

    /// Takes the two reusable traversal-flag buffers, cleared and resized
    /// to `n` `false` entries. Return them with
    /// [`DistanceScratch::restore_flags`] so their capacity survives to
    /// the next query. (Moved out rather than borrowed so the caller can
    /// keep using the arena while holding them.)
    pub fn take_flags(&mut self, n: usize) -> (Vec<bool>, Vec<bool>) {
        Self::ensure(&mut self.visited, n, &mut self.grown);
        Self::ensure(&mut self.extracted, n, &mut self.grown);
        let mut visited = std::mem::take(&mut self.visited);
        let mut extracted = std::mem::take(&mut self.extracted);
        visited.clear();
        visited.resize(n, false);
        extracted.clear();
        extracted.resize(n, false);
        (visited, extracted)
    }

    /// Returns the flag buffers taken by [`DistanceScratch::take_flags`].
    pub fn restore_flags(&mut self, visited: Vec<bool>, extracted: Vec<bool>) {
        self.visited = visited;
        self.extracted = extracted;
    }

    /// Takes the reusable traversal heap, cleared. Return it with
    /// [`DistanceScratch::restore_heap`].
    pub fn take_heap(&mut self) -> MinHeap<u32> {
        let mut heap = std::mem::take(&mut self.heap);
        heap.clear();
        heap
    }

    /// Returns the heap taken by [`DistanceScratch::take_heap`].
    pub fn restore_heap(&mut self, heap: MinHeap<u32>) {
        self.heap = heap;
    }

    /// Fills the spare row with `mbr.mindist(q)` per anchor (the
    /// admissible per-anchor lower bound used by the ranked search) and
    /// returns it.
    // ssq-analyze: deny-alloc
    pub fn fill_spare_mindist(&mut self, mbr: &Rect, anchors: &[Point]) -> &[f64] {
        Self::ensure(&mut self.spare, anchors.len(), &mut self.grown);
        self.spare.clear();
        self.spare.extend(anchors.iter().map(|&q| mbr.mindist(q)));
        &self.spare
    }

    /// Buffer-growth events since the last call, resetting the counter.
    /// Kernel algorithms drain this into [`QueryStats::allocations`] at
    /// the end of each query: 0 means the query ran allocation-free.
    pub fn take_allocations(&mut self) -> u64 {
        std::mem::take(&mut self.grown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rows_hold_squared_distances_and_keys_their_sums() {
        let anchors = [p(0.0, 0.0), p(3.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        let r = s.push_row(7, false, p(0.0, 4.0), &anchors);
        assert_eq!(s.row(r), &[16.0, 25.0]);
        assert_eq!(s.key(r), 41.0);
        assert_eq!(s.id(r), 7);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn resolve_matches_a_naive_dominance_filter() {
        let anchors = [p(0.0, 0.0), p(1.0, 0.0)];
        let pts = [p(0.2, 0.1), p(0.5, 0.5), p(0.9, 0.05), p(0.5, 0.9)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        for (i, &pt) in pts.iter().enumerate() {
            s.push_row(i as u32, false, pt, &anchors);
        }
        let mut stats = QueryStats::default();
        let got: Vec<u32> = s.resolve(&mut stats).to_vec();
        // Oracle over true distances.
        let vecs: Vec<Vec<f64>> = pts
            .iter()
            .map(|&pt| anchors.iter().map(|&q| pt.distance(q)).collect())
            .collect();
        let want: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| {
                !vecs
                    .iter()
                    .enumerate()
                    .any(|(j, v)| j != i as usize && kernel::dominates(v, &vecs[i as usize]))
            })
            .collect();
        assert_eq!(got, want);
        assert!(stats.dominance_checks > 0);
    }

    #[test]
    fn certain_rows_skip_checks_and_always_survive() {
        let anchors = [p(0.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(1);
        s.push_row(0, false, p(0.1, 0.0), &anchors);
        // Dominated, but marked certain — must survive with no checks.
        s.push_row(1, true, p(0.9, 0.0), &anchors);
        let mut stats = QueryStats::default();
        assert_eq!(s.resolve(&mut stats), &[0, 1]);
        assert_eq!(stats.dominance_checks, 0);
    }

    #[test]
    fn growth_is_counted_once_then_reuse_is_free() {
        let anchors = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0)];
        let mut s = DistanceScratch::new();
        let run = |s: &mut DistanceScratch| {
            s.begin(3);
            for i in 0..64u32 {
                s.push_row(i, false, p(i as f64 * 0.01, 0.5), &anchors);
            }
            let mut stats = QueryStats::default();
            s.resolve(&mut stats);
            let (v, e) = s.take_flags(64);
            s.restore_flags(v, e);
            let h = s.take_heap();
            s.restore_heap(h);
            s.take_allocations()
        };
        let warmup = run(&mut s);
        assert!(warmup > 0, "first query must grow the arena");
        for trial in 0..5 {
            assert_eq!(run(&mut s), 0, "steady-state trial {trial} allocated");
        }
    }

    #[test]
    fn a_presized_arena_makes_even_the_first_query_growth_free() {
        let anchors = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0)];
        let mut s = DistanceScratch::with_capacity(64, anchors.len());
        s.begin(anchors.len());
        for i in 0..64u32 {
            s.push_row(i, false, p(i as f64 * 0.01, 0.5), &anchors);
        }
        let mut stats = QueryStats::default();
        s.resolve(&mut stats);
        let (v, e) = s.take_flags(64);
        s.restore_flags(v, e);
        s.fill_spare_mindist(&Rect::from_corners(p(0.0, 0.0), p(1.0, 1.0)), &anchors);
        assert_eq!(
            s.take_allocations(),
            0,
            "pre-sized arena must not grow on its first query"
        );
    }

    #[test]
    fn pop_row_and_last_dominated_support_incremental_use() {
        let anchors = [p(0.0, 0.0), p(1.0, 0.0)];
        let mut s = DistanceScratch::new();
        s.begin(2);
        s.push_row(0, false, p(0.1, 0.0), &anchors);
        let mut stats = QueryStats::default();
        s.push_row(1, false, p(0.2, 1.0), &anchors); // farther from both
        assert!(s.last_dominated(&mut stats));
        s.pop_row();
        assert_eq!(s.len(), 1);
        s.push_row(2, false, p(0.9, 0.0), &anchors); // closer to anchor 1
        assert!(!s.last_dominated(&mut stats));
        assert_eq!(s.ids_sorted(), &[0, 2]);
    }
}
