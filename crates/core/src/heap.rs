//! A small min-heap over `f64` keys with stable tie-breaking.
//!
//! Both R-tree algorithms and VS² order their work by a monotone `mindist`
//! key; `std::collections::BinaryHeap` is a max-heap over `Ord`, so this
//! adapter flips the order and breaks ties by insertion sequence, making
//! traversals fully deterministic.

use std::collections::BinaryHeap;

/// A deterministic min-heap of `(f64 key, payload)`.
#[derive(Debug)]
pub struct MinHeap<T> {
    heap: BinaryHeap<Item<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Item<T> {
    key: f64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so BinaryHeap yields the minimum key first; ties pop in
        // insertion order.
        other
            .key
            .total_cmp(&self.key)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<T> MinHeap<T> {
    /// An empty heap.
    pub fn new() -> MinHeap<T> {
        MinHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Pushes a `(key, value)` pair. Panics on NaN keys (when popped).
    pub fn push(&mut self, key: f64, value: T) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Item { key, seq, value });
    }

    /// Pops the minimum-key entry.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|i| (i.key, i.value))
    }

    /// Peeks at the minimum-key entry.
    pub fn peek(&self) -> Option<(f64, &T)> {
        self.heap.peek().map(|i| (i.key, &i.value))
    }

    /// Removes every entry and resets the tie-break sequence, keeping the
    /// backing allocation — for heap reuse across queries.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<T> Default for MinHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_key_order() {
        let mut h = MinHeap::new();
        h.push(3.0, 'c');
        h.push(1.0, 'a');
        h.push(2.0, 'b');
        assert_eq!(h.pop(), Some((1.0, 'a')));
        assert_eq!(h.pop(), Some((2.0, 'b')));
        assert_eq!(h.pop(), Some((3.0, 'c')));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut h = MinHeap::new();
        h.push(1.0, 1);
        h.push(1.0, 2);
        h.push(1.0, 3);
        assert_eq!(h.pop().unwrap().1, 1);
        assert_eq!(h.pop().unwrap().1, 2);
        assert_eq!(h.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = MinHeap::new();
        h.push(5.0, "x");
        assert_eq!(h.peek(), Some((5.0, &"x")));
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        h.pop();
        assert!(h.is_empty());
    }
}
