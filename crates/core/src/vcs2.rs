//! VCS² — Voronoi-based Continuous Spatial Skyline (paper §5).
//!
//! The continuous setting: the query points are moving objects streaming
//! single-point location updates, and the skyline must be maintained
//! without recomputing from scratch on every update. VCS² classifies each
//! update `q → q'` by how it changes `CH(Q)` (the paper's change patterns,
//! Fig. 10) and reacts accordingly:
//!
//! * **Pattern I** — neither `q` nor `q'` is a hull vertex: by Theorem 2
//!   the skyline is untouched; the update is free.
//! * **Patterns II–V** ("simple" moves) — the two hulls share every vertex
//!   except possibly `q`/`q'`: only points inside the **candidate region**
//!   can change status (Lemma 6): the visible region of `q` w.r.t.
//!   `CH(Q)`, the visible region of `q'` w.r.t. `CH(Q')`, and the
//!   symmetric difference of the hulls. VCS² re-examines exactly those
//!   points via a Delaunay traversal seeded at `NN(q')`, `NN(q)` and the
//!   old skyline members inside the region — with the pruning rectangle
//!   `B` *pre-tightened* from the old skyline, which is what makes the
//!   incremental update several times cheaper than a fresh VS² run.
//! * **Anything else** (the paper's pattern (f) and other complex hull
//!   changes) — fall back to a full VS² recomputation.
//!
//! Every incremental update ends with the same key-ordered resolution
//! pass as VS², so the maintained skyline is exact after every update
//! (asserted against fresh recomputations by the test suite).

use ssq_geom::circle::search_region_mbr;
use ssq_geom::{ConvexPolygon, Point, Rect};

use crate::heap::MinHeap;
use crate::index::VoronoiIndex;
use crate::query::{dominates, resolve_candidates, Candidate, QueryContext};
use crate::stats::{QueryStats, SkylineResult};
use crate::vs2::{vs2_with, VsExpansion};

/// How an update was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Pattern I: the hull (hence the skyline) did not change.
    Unchanged,
    /// Patterns II–V: the skyline was patched incrementally.
    Incremental,
    /// Complex hull change: VS² was re-run from scratch.
    Recomputed,
}

/// Aggregate counters over the lifetime of a [`ContinuousSkyline`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OutcomeCounts {
    /// Updates resolved as [`UpdateOutcome::Unchanged`].
    pub unchanged: u64,
    /// Updates resolved as [`UpdateOutcome::Incremental`].
    pub incremental: u64,
    /// Updates resolved as [`UpdateOutcome::Recomputed`].
    pub recomputed: u64,
}

impl OutcomeCounts {
    /// Total updates processed.
    pub fn total(&self) -> u64 {
        self.unchanged + self.incremental + self.recomputed
    }
}

/// The maintained continuous spatial skyline over a moving query set.
///
/// Generic over how the index is held: `I` can be a plain borrow
/// (`&VoronoiIndex`, the library default) or a shared-ownership handle
/// such as `Arc<VoronoiIndex>` — anything that derefs to the index. The
/// latter lets long-lived serving layers (see the `ssq-engine` crate)
/// keep many concurrent sessions alive over one immutable index snapshot
/// without tying session lifetimes to a stack borrow.
pub struct ContinuousSkyline<I = &'static VoronoiIndex>
where
    I: std::ops::Deref<Target = VoronoiIndex>,
{
    index: I,
    query: Vec<Point>,
    ctx: QueryContext,
    /// Current skyline with distance vectors w.r.t. the current anchors.
    skyline: Vec<(u32, Vec<f64>)>,
    counts: OutcomeCounts,
    /// Walk hint for NN searches (any recently relevant point).
    hint: u32,
    /// Epoch-stamped per-point scratch marks, reused across updates so an
    /// incremental update does no `O(|P|)` work (the point of VCS²).
    visited: Vec<u32>,
    extracted: Vec<u32>,
    in_current: Vec<u32>,
    epoch: u32,
}

impl<I> ContinuousSkyline<I>
where
    I: std::ops::Deref<Target = VoronoiIndex>,
{
    /// Initializes the skyline for query set `q` with a fresh VS² run.
    pub fn new(index: I, q: &[Point]) -> ContinuousSkyline<I> {
        let ctx = QueryContext::new(q);
        let result = vs2_with(&index, &ctx, VsExpansion::Safe, None);
        let mut stats = QueryStats::default();
        let skyline = result
            .skyline
            .iter()
            .map(|&i| (i, ctx.dist_vector(index.point(i), &mut stats)))
            .collect();
        let hint = result.skyline.first().copied().unwrap_or(0);
        let n = index.len();
        ContinuousSkyline {
            index,
            query: q.to_vec(),
            ctx,
            skyline,
            counts: OutcomeCounts::default(),
            hint,
            visited: vec![0; n],
            extracted: vec![0; n],
            in_current: vec![0; n],
            epoch: 0,
        }
    }

    /// The current query set.
    pub fn query(&self) -> &[Point] {
        &self.query
    }

    /// The current skyline, sorted ascending.
    pub fn skyline(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.skyline.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        ids
    }

    /// The current skyline as a [`SkylineResult`] (zeroed stats).
    pub fn result(&self) -> SkylineResult {
        SkylineResult {
            skyline: self.skyline(),
            stats: QueryStats::default(),
        }
    }

    /// Outcome counters since construction — the paper's "fraction of
    /// movements requiring recomputation" statistic.
    pub fn counts(&self) -> OutcomeCounts {
        self.counts
    }

    /// Applies one location update: query object `obj` moved to `new_loc`.
    /// Returns how the update was handled plus its cost.
    pub fn update(&mut self, obj: usize, new_loc: Point) -> (UpdateOutcome, QueryStats) {
        assert!(obj < self.query.len(), "query object index out of range");
        let old_loc = self.query[obj];
        if old_loc == new_loc {
            self.counts.unchanged += 1;
            return (UpdateOutcome::Unchanged, QueryStats::default());
        }
        if self.index.is_empty() {
            // No data points: the skyline is trivially empty forever.
            self.query[obj] = new_loc;
            self.ctx = QueryContext::new(&self.query);
            self.counts.unchanged += 1;
            return (UpdateOutcome::Unchanged, QueryStats::default());
        }

        let old_ctx = std::mem::replace(&mut self.ctx, {
            self.query[obj] = new_loc;
            QueryContext::new(&self.query)
        });

        let old_vertex = old_ctx.hull().vertex_index(old_loc);
        let new_vertex = self.ctx.hull().vertex_index(new_loc);

        // Pattern I: both endpoints interior — hull unchanged, skyline
        // unchanged, and the anchor set (hence the stored distance
        // vectors) is identical.
        if old_vertex.is_none() && new_vertex.is_none() {
            debug_assert_eq!(old_ctx.anchors(), self.ctx.anchors());
            self.counts.unchanged += 1;
            return (UpdateOutcome::Unchanged, QueryStats::default());
        }

        // "Simple" patterns II-V: the hulls agree on every vertex except
        // q/q'.
        if hulls_differ_only_at(old_ctx.anchors(), old_loc, self.ctx.anchors(), new_loc) {
            let stats = self.incremental_update(&old_ctx, old_loc, new_loc, old_vertex, new_vertex);
            self.counts.incremental += 1;
            return (UpdateOutcome::Incremental, stats);
        }

        // Complex pattern: recompute with VS².
        let result = vs2_with(&self.index, &self.ctx, VsExpansion::Safe, Some(self.hint));
        let mut stats = result.stats;
        self.skyline = result
            .skyline
            .iter()
            .map(|&i| (i, self.ctx.dist_vector(self.index.point(i), &mut stats)))
            .collect();
        if let Some(&h) = result.skyline.first() {
            self.hint = h;
        }
        self.counts.recomputed += 1;
        (UpdateOutcome::Recomputed, stats)
    }

    /// The incremental (patterns II–V) path.
    fn incremental_update(
        &mut self,
        old_ctx: &QueryContext,
        old_loc: Point,
        new_loc: Point,
        old_vertex: Option<usize>,
        new_vertex: Option<usize>,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        self.index.reset_page_accesses();
        let index = &*self.index;
        let n = index.len();
        let anchors = self.ctx.anchors().to_vec();
        let new_hull = self.ctx.hull().clone();
        let old_hull = old_ctx.hull().clone();

        // Candidate-region membership test (Lemma 6 + hull difference).
        let vis_old = old_vertex.map(|i| old_hull.visible_region(i));
        let vis_new = new_vertex.map(|i| new_hull.visible_region(i));
        let may_change = |pt: Point| -> bool {
            vis_old.as_ref().is_some_and(|v| v.contains(pt))
                || vis_new.as_ref().is_some_and(|v| v.contains(pt))
                || old_hull.contains(pt) != new_hull.contains(pt)
        };
        // Note on expansion gating: the paper suggests traversing "only
        // specific portions of the graph". We experimented with gating
        // neighbour expansion by a convex over-approximation of the
        // candidate region (visible-region wedges plus the two hull caps)
        // and measured it *slower* here — the wedges cover most of the
        // pruning rectangle B, so the extra per-cell tests bought almost no
        // pruning. Expansion therefore stays gated by B alone (provably
        // complete), and the candidate region gates only the per-point
        // examinations below, which is where the dominance-check savings
        // are.

        // Refresh the stored skyline vectors against the new anchors and
        // pre-tighten B from the old skyline: for ANY data point x, every
        // point not dominated by x (in particular every new skyline point)
        // lies inside MBR(SR(x, Q')), so intersecting with stale members'
        // boxes is safe and gives the incremental path its head start.
        let mut b = Rect::EVERYTHING;
        let mut current: Vec<(u32, Vec<f64>)> = Vec::with_capacity(self.skyline.len());
        for &(i, _) in &self.skyline {
            let pt = index.point(i);
            let v = self.ctx.dist_vector(pt, &mut stats);
            b = b.intersection(&search_region_mbr(pt, &anchors));
            current.push((i, v));
        }
        // Advance the scratch epoch; on wraparound, clear the stamp arrays
        // once (every ~4 billion updates).
        let _ = n;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.fill(0);
            self.extracted.fill(0);
            self.in_current.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        for &(i, _) in &current {
            self.in_current[i as usize] = epoch;
        }
        let mindist_of = |pt: Point| -> f64 { anchors.iter().map(|&q| q.distance(pt)).sum() };

        // Seeds: NN of both endpoints of the move, plus every old skyline
        // member inside the candidate region.
        let mut heap: MinHeap<u32> = MinHeap::new();
        let nn_new = index.nearest(new_loc, self.hint);
        let nn_old = index.nearest(old_loc, nn_new);
        let mut seeds: Vec<u32> = vec![nn_new, nn_old];
        seeds.extend(
            current
                .iter()
                .map(|&(i, _)| i)
                .filter(|&i| may_change(index.point(i))),
        );
        for i in seeds {
            if self.visited[i as usize] != epoch {
                self.visited[i as usize] = epoch;
                heap.push(mindist_of(index.point(i)), i);
            }
        }
        self.hint = nn_new;

        // VS²-style two-phase traversal, restricted by B; only candidate
        // points are (re-)examined, everything else keeps its status.
        while let Some((_, &p)) = heap.peek() {
            if self.extracted[p as usize] == epoch {
                heap.pop();
                let pt = index.point(p);
                if !may_change(pt) {
                    continue;
                }
                // Outside B ⟹ strictly farther than some (possibly stale)
                // member from every anchor ⟹ dominated: drop without a
                // full check, evicting it if it was a member.
                if !b.contains(pt) {
                    if self.in_current[p as usize] == epoch {
                        self.in_current[p as usize] = 0;
                        current.retain(|&(j, _)| j != p);
                    }
                    continue;
                }
                stats.points_examined += 1;
                let v = self.ctx.dist_vector(pt, &mut stats);
                let keep = if new_hull.contains(pt) {
                    true
                } else {
                    let mut dominated = false;
                    for (j, sv) in &current {
                        if *j == p {
                            continue;
                        }
                        stats.dominance_checks += 1;
                        if dominates(sv, &v) {
                            dominated = true;
                            break;
                        }
                    }
                    !dominated
                };
                if keep && self.in_current[p as usize] != epoch {
                    self.in_current[p as usize] = epoch;
                    b = b.intersection(&search_region_mbr(pt, &anchors));
                    current.push((p, v));
                } else if !keep && self.in_current[p as usize] == epoch {
                    self.in_current[p as usize] = 0;
                    current.retain(|&(j, _)| j != p);
                }
            } else {
                self.extracted[p as usize] = epoch;
                stats.entries_visited += 1;
                for &nb in index.neighbors(p) {
                    if self.visited[nb as usize] == epoch {
                        continue;
                    }
                    let nbp = index.point(nb);
                    if b.contains(nbp) || index.cell_intersects_rect(nb, &b) {
                        self.visited[nb as usize] = epoch;
                        heap.push(mindist_of(nbp), nb);
                        stats.distance_computations += anchors.len() as u64;
                    }
                }
            }
        }

        // Paper's final check: evict members dominated by other members —
        // one pass in ascending mindist order (the key is the sum of the
        // stored anchor distances, so no extra distance computations).
        let candidates: Vec<Candidate> = current
            .into_iter()
            .map(|(i, v)| Candidate {
                id: i,
                key: v.iter().sum(),
                certain: new_hull.contains(index.point(i)),
                vector: v,
            })
            .collect();
        self.skyline = resolve_candidates(candidates, &mut stats);
        stats.node_accesses = index.page_accesses();
        stats
    }
}

/// `true` when the two hull vertex sets agree after removing `old_loc`
/// from the first and `new_loc` from the second — the paper's "simple"
/// change patterns II–V.
fn hulls_differ_only_at(
    old_anchors: &[Point],
    old_loc: Point,
    new_anchors: &[Point],
    new_loc: Point,
) -> bool {
    let strip = |anchors: &[Point], skip: Point| -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = anchors
            .iter()
            .filter(|&&a| a != skip)
            .map(|a| (a.x.to_bits(), a.y.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    strip(old_anchors, old_loc) == strip(new_anchors, new_loc)
}

/// A convenience wrapper mirroring the `ConvexPolygon` naming used in the
/// module docs (kept private; exists to document the hull types in play).
#[allow(dead_code)]
type Hull = ConvexPolygon;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_full;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    /// Drives a random walk of single-point updates and asserts the
    /// maintained skyline equals a fresh naive computation after every
    /// step.
    fn run_stream(points: &[Point], mut q: Vec<Point>, steps: usize, seed: u64) -> OutcomeCounts {
        let idx = VoronoiIndex::new(points).unwrap();
        let mut cont = ContinuousSkyline::new(&idx, &q);
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..steps {
            let obj = (step * 7 + 3) % q.len();
            let cur = q[obj];
            let np = p(
                (cur.x + (next() - 0.5) * 0.08).clamp(0.0, 1.0),
                (cur.y + (next() - 0.5) * 0.08).clamp(0.0, 1.0),
            );
            q[obj] = np;
            let (outcome, _) = cont.update(obj, np);
            let want = naive_full(points, &QueryContext::new(&q));
            assert_eq!(
                cont.skyline(),
                want.skyline,
                "divergence at step {step} (outcome {outcome:?}, obj {obj} -> {np:?}, q = {q:?})"
            );
        }
        cont.counts()
    }

    #[test]
    fn stream_of_updates_stays_exact() {
        let points = pseudorandom(120, 11);
        let q: Vec<Point> = pseudorandom(5, 999)
            .into_iter()
            .map(|v| p(0.4 + v.x * 0.2, 0.4 + v.y * 0.2))
            .collect();
        let counts = run_stream(&points, q, 60, 42);
        assert_eq!(counts.total(), 60);
        // With 5 clustered movers, most updates must avoid recomputation.
        assert!(
            counts.unchanged + counts.incremental > counts.recomputed,
            "{counts:?}"
        );
    }

    #[test]
    fn stream_with_two_query_points() {
        // |Q| = 2: the hull is a degenerate segment; every move touches a
        // hull vertex and the visible regions degrade to the whole plane.
        let points = pseudorandom(80, 23);
        let q = vec![p(0.45, 0.5), p(0.55, 0.5)];
        run_stream(&points, q, 40, 7);
    }

    #[test]
    fn stream_with_many_query_points() {
        let points = pseudorandom(100, 37);
        let q: Vec<Point> = pseudorandom(9, 888)
            .into_iter()
            .map(|v| p(0.3 + v.x * 0.4, 0.3 + v.y * 0.4))
            .collect();
        let counts = run_stream(&points, q, 50, 99);
        // With 9 points, interior moves (pattern I) must appear.
        assert!(counts.unchanged > 0, "{counts:?}");
    }

    #[test]
    fn interior_move_is_free() {
        let points = pseudorandom(60, 5);
        // A square of query points plus one strictly interior point.
        let q = vec![
            p(0.2, 0.2),
            p(0.8, 0.2),
            p(0.8, 0.8),
            p(0.2, 0.8),
            p(0.5, 0.5),
        ];
        let idx = VoronoiIndex::new(&points).unwrap();
        let mut cont = ContinuousSkyline::new(&idx, &q);
        let before = cont.skyline();
        let (outcome, stats) = cont.update(4, p(0.55, 0.45)); // still interior
        assert_eq!(outcome, UpdateOutcome::Unchanged);
        assert_eq!(stats.points_examined, 0);
        assert_eq!(cont.skyline(), before);
    }

    #[test]
    fn vertex_move_is_incremental() {
        let points = pseudorandom(60, 6);
        let q = vec![p(0.2, 0.2), p(0.8, 0.2), p(0.5, 0.8)];
        let idx = VoronoiIndex::new(&points).unwrap();
        let mut cont = ContinuousSkyline::new(&idx, &q);
        // Small move of a hull vertex that keeps the other two vertices.
        let (outcome, _) = cont.update(2, p(0.52, 0.82));
        assert_eq!(outcome, UpdateOutcome::Incremental);
        let want = naive_full(
            &points,
            &QueryContext::new(&[p(0.2, 0.2), p(0.8, 0.2), p(0.52, 0.82)]),
        );
        assert_eq!(cont.skyline(), want.skyline);
    }

    #[test]
    fn empty_dataset_never_panics() {
        let idx = VoronoiIndex::new(&[]).unwrap();
        let mut cont = ContinuousSkyline::new(&idx, &[p(0.2, 0.2), p(0.8, 0.8)]);
        assert!(cont.skyline().is_empty());
        for step in 0..10 {
            let t = step as f64 / 10.0;
            let (outcome, _) = cont.update(step % 2, p(t, 1.0 - t));
            assert_eq!(outcome, UpdateOutcome::Unchanged);
            assert!(cont.skyline().is_empty());
        }
    }

    #[test]
    fn no_op_update_is_unchanged() {
        let points = pseudorandom(40, 3);
        let q = vec![p(0.3, 0.3), p(0.7, 0.6)];
        let idx = VoronoiIndex::new(&points).unwrap();
        let mut cont = ContinuousSkyline::new(&idx, &q);
        let (outcome, _) = cont.update(0, p(0.3, 0.3));
        assert_eq!(outcome, UpdateOutcome::Unchanged);
    }
}
