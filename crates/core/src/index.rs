//! The two physical designs of the paper's experiments.
//!
//! §7 evaluates two storage layouts over the same point set:
//!
//! * an **R*-tree** (1 KB pages, ≤ 50 entries/node) used by BBS and B²S²
//!   — wrapped here as [`RTreeIndex`];
//! * a **pre-built Delaunay graph** whose adjacency list is stored in a
//!   flat file paged by Hilbert value, used by VS² and VCS² — wrapped as
//!   [`VoronoiIndex`].
//!
//! Both wrappers own the point set and expose access-counting so the bench
//! harness can report I/O the way the paper does.

use ssq_delaunay::paged::PagedAdjacency;
use ssq_delaunay::{DelaunayGraph, Triangulation};
use ssq_geom::{ConvexPolygon, Point, Rect};
use ssq_kdtree::KdTree;
use ssq_rtree::{RTree, RTreeConfig};

/// The R*-tree physical design (for BBS and B²S²).
pub struct RTreeIndex {
    points: Vec<Point>,
    tree: RTree<u32>,
}

impl RTreeIndex {
    /// Bulk-loads the index with the paper's default fan-out (50).
    pub fn new(points: &[Point]) -> RTreeIndex {
        Self::with_config(points, RTreeConfig::default())
    }

    /// Bulk-loads with an explicit R-tree configuration.
    pub fn with_config(points: &[Point], config: RTreeConfig) -> RTreeIndex {
        RTreeIndex {
            points: points.to_vec(),
            tree: RTree::<u32>::bulk_load_points(points, config),
        }
    }

    /// The indexed points, in input order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The point with index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> Point {
        self.points[i as usize]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying tree (the skyline algorithms drive it directly).
    pub fn tree(&self) -> &RTree<u32> {
        &self.tree
    }

    /// The data universe (MBR of all points).
    pub fn universe(&self) -> Rect {
        self.tree.mbr()
    }
}

/// The Voronoi/Delaunay physical design (for VS² and VCS²).
///
/// Voronoi cells are materialized at build time — the paper's "pre-built
/// Delaunay graph" file stores each point's neighbourhood, and the cell
/// polygon is derived data the query loop should never recompute.
pub struct VoronoiIndex {
    graph: DelaunayGraph,
    pages: PagedAdjacency,
    cells: Vec<ConvexPolygon>,
    cell_mbrs: Vec<Rect>,
    /// Optional O(log n) start-point index (paper §4.2: "Φ(|P|) is
    /// O(log |P|) if an index structure is used"). `None` reproduces the
    /// index-free O(√|P|) greedy-walk mode.
    start_index: Option<KdTree>,
}

impl VoronoiIndex {
    /// Builds the Delaunay graph and its Hilbert-paged adjacency layout.
    ///
    /// `per_page` mirrors the paper's 50-entries-per-page R-tree nodes so
    /// the two physical designs report comparable I/O; use
    /// [`VoronoiIndex::new`] for that default.
    pub fn with_page_size(
        points: &[Point],
        per_page: usize,
    ) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        let tri = Triangulation::new(points)?;
        let graph = DelaunayGraph::from_triangulation(&tri);
        let pages = PagedAdjacency::new(points, per_page);
        let clip = graph.default_clip();
        // Fast path: trace cells from circumcenters (O(deg) per site);
        // individual numerically-degenerate cells — and fully collinear
        // inputs — fall back to the bisector half-plane construction.
        let cells: Vec<ConvexPolygon> = match ssq_delaunay::voronoi::voronoi_cells(&tri, &clip) {
            Some(fast) => fast
                .into_iter()
                .enumerate()
                .map(|(i, c)| c.unwrap_or_else(|| graph.voronoi_cell(i as u32, &clip)))
                .collect(),
            None => (0..points.len() as u32)
                .map(|i| graph.voronoi_cell(i, &clip))
                .collect(),
        };
        let cell_mbrs = cells.iter().map(|c| c.mbr()).collect();
        Ok(VoronoiIndex {
            graph,
            pages,
            cells,
            cell_mbrs,
            start_index: Some(KdTree::build(points)),
        })
    }

    /// Builds the index with the default page capacity (50 points/page).
    pub fn new(points: &[Point]) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        Self::with_page_size(points, 50)
    }

    /// Builds the index **without** the kd-tree start index: `nearest`
    /// falls back to the greedy Delaunay walk, reproducing the paper's
    /// index-free `Φ(|P|) = O(√|P|)` mode (§4.2).
    pub fn without_start_index(points: &[Point]) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        let mut idx = Self::with_page_size(points, 50)?;
        idx.start_index = None;
        Ok(idx)
    }

    /// The underlying Delaunay graph.
    pub fn graph(&self) -> &DelaunayGraph {
        &self.graph
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        self.graph.points()
    }

    /// The point with index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> Point {
        self.graph.point(i)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The Voronoi neighbours of point `i`, counting one adjacency-page
    /// access when the page is cold.
    pub fn neighbors(&self, i: u32) -> &[u32] {
        self.pages.touch(i);
        self.graph.neighbors(i)
    }

    /// The Voronoi cell of `i` (precomputed, clipped to the default box).
    pub fn voronoi_cell(&self, i: u32) -> &ConvexPolygon {
        self.pages.touch(i);
        &self.cells[i as usize]
    }

    /// Exact test "does the Voronoi cell of `i` intersect `r`?", tiered so
    /// the overwhelmingly common cases cost four f64 comparisons: first
    /// the cell's precomputed MBR (disjoint ⟹ no; fully inside `r` ⟹
    /// yes), then the exact convex-polygon test only for boundary cells.
    pub fn cell_intersects_rect(&self, i: u32, r: &Rect) -> bool {
        self.pages.touch(i);
        let mbr = &self.cell_mbrs[i as usize];
        if !mbr.intersects(r) {
            return false;
        }
        if r.contains_rect(mbr) {
            return true;
        }
        self.cells[i as usize].intersects_rect(r)
    }

    /// Nearest data point to `q`: `O(log |P|)` through the kd-tree start
    /// index when present, otherwise a greedy Delaunay walk from `hint`
    /// that touches the adjacency page of every point visited (so the
    /// walk's I/O is accounted like any other adjacency access).
    pub fn nearest(&self, q: Point, hint: u32) -> u32 {
        if let Some(kd) = &self.start_index {
            if let Some(i) = kd.nearest(q) {
                self.pages.touch(i);
                return i;
            }
        }
        let mut cur = hint;
        let mut cur_d = self.point(cur).distance_sq(q);
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &j in self.neighbors(cur) {
                let d = self.point(j).distance_sq(q);
                if d < best_d {
                    best = j;
                    best_d = d;
                }
            }
            if best == cur {
                return cur;
            }
            cur = best;
            cur_d = best_d;
        }
    }

    /// Adjacency-page accesses since the last reset (the VS² I/O metric).
    pub fn page_accesses(&self) -> u64 {
        self.pages.accesses()
    }

    /// Resets the page-access counter (call before each measured query).
    pub fn reset_page_accesses(&self) {
        self.pages.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push(Point::new(i as f64, j as f64 + 0.1 * i as f64));
            }
        }
        v
    }

    #[test]
    fn rtree_index_roundtrip() {
        let points = pts();
        let idx = RTreeIndex::new(&points);
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.point(7), points[7]);
        assert!(idx.universe().contains(points[50]));
    }

    #[test]
    fn voronoi_index_neighbors_and_cells() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        assert_eq!(idx.len(), 100);
        idx.reset_page_accesses();
        let n = idx.neighbors(0);
        assert!(!n.is_empty());
        assert!(idx.page_accesses() >= 1);
        let cell = idx.voronoi_cell(0);
        assert!(cell.contains(idx.point(0)));
    }

    #[test]
    fn tiered_cell_test_matches_exact_test() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        // Probe rectangles of several scales against every cell: the
        // tiered test must agree with the exact polygon test.
        for (k, probe) in [
            Rect::from_corners(Point::new(2.2, 2.2), Point::new(2.4, 2.6)),
            Rect::from_corners(Point::new(0.0, 0.0), Point::new(9.0, 10.0)),
            Rect::from_corners(Point::new(40.0, 40.0), Point::new(41.0, 41.0)),
            Rect::from_point(Point::new(5.0, 5.5)),
        ]
        .iter()
        .enumerate()
        {
            for i in 0..idx.len() as u32 {
                let exact = idx.voronoi_cell(i).intersects_rect(probe);
                assert_eq!(
                    idx.cell_intersects_rect(i, probe),
                    exact,
                    "probe {k}, cell {i}"
                );
            }
        }
    }

    #[test]
    fn voronoi_index_nearest() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        let nn = idx.nearest(Point::new(5.05, 5.55), 0);
        let brute = (0..100u32)
            .min_by(|&a, &b| {
                idx.point(a)
                    .distance_sq(Point::new(5.05, 5.55))
                    .total_cmp(&idx.point(b).distance_sq(Point::new(5.05, 5.55)))
            })
            .unwrap();
        assert_eq!(nn, brute);
    }
}
