//! The two physical designs of the paper's experiments.
//!
//! §7 evaluates two storage layouts over the same point set:
//!
//! * an **R*-tree** (1 KB pages, ≤ 50 entries/node) used by BBS and B²S²
//!   — wrapped here as [`RTreeIndex`];
//! * a **pre-built Delaunay graph** whose adjacency list is stored in a
//!   flat file paged by Hilbert value, used by VS² and VCS² — wrapped as
//!   [`VoronoiIndex`].
//!
//! Both wrappers own the point set and expose access-counting so the bench
//! harness can report I/O the way the paper does.

use ssq_delaunay::paged::PagedAdjacency;
use ssq_delaunay::{hilbert, DelaunayGraph, DeltaError, Triangulation};
use ssq_geom::{ConvexPolygon, Point, Rect};
use ssq_kdtree::KdTree;
use ssq_rtree::{RTree, RTreeConfig};

use crate::delta::{DeltaStats, UpdateBatch};

/// A batch larger than `1/DELTA_REBUILD_DENOM` of the index is rebuilt
/// from scratch instead of repaired incrementally: past that point the
/// locate walks and cell recomputation cost more than the bulk path.
const DELTA_REBUILD_DENOM: usize = 8;

/// The kd start index is rebuilt once accumulated churn exceeds
/// `1/SEED_STALENESS_DENOM` of the point count; below that it serves as a
/// (possibly slightly stale) seed that the exact greedy walk refines.
const SEED_STALENESS_DENOM: usize = 16;

/// The R*-tree physical design (for BBS and B²S²).
pub struct RTreeIndex {
    points: Vec<Point>,
    tree: RTree<u32>,
}

impl RTreeIndex {
    /// Bulk-loads the index with the paper's default fan-out (50).
    pub fn new(points: &[Point]) -> RTreeIndex {
        Self::with_config(points, RTreeConfig::default())
    }

    /// Bulk-loads with an explicit R-tree configuration.
    pub fn with_config(points: &[Point], config: RTreeConfig) -> RTreeIndex {
        RTreeIndex {
            points: points.to_vec(),
            tree: RTree::<u32>::bulk_load_points(points, config),
        }
    }

    /// The indexed points, in input order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The point with index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> Point {
        self.points[i as usize]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying tree (the skyline algorithms drive it directly).
    pub fn tree(&self) -> &RTree<u32> {
        &self.tree
    }

    /// The data universe (MBR of all points).
    pub fn universe(&self) -> Rect {
        self.tree.mbr()
    }

    /// Applies a normalized [`UpdateBatch`], producing the next
    /// generation's index in `O(|batch| log n)`: the tree is cloned
    /// (node-copy, freed slots recycled), deleted entries removed with
    /// reinsertion of underfull siblings, surviving payloads renumbered
    /// densely, and inserts added through the regular R* path.
    pub fn apply_delta(&self, batch: &UpdateBatch) -> RTreeIndex {
        debug_assert!(batch.is_normalized());
        let n_old = self.points.len();
        let remap = batch.survivor_remap(n_old);
        let mut tree = self.tree.clone();
        for &d in &batch.deletes {
            let hit = tree.delete(Rect::from_point(self.points[d as usize]), d);
            debug_assert!(hit, "validated delete id {d} missing from the tree");
        }
        tree.map_items(|i| remap[i as usize]);
        let n_surv = n_old - batch.deletes.len();
        let mut points = Vec::with_capacity(n_surv + batch.inserts.len());
        points.extend(
            self.points
                .iter()
                .zip(&remap)
                .filter(|(_, &r)| r != u32::MAX)
                .map(|(&p, _)| p),
        );
        for (j, &p) in batch.inserts.iter().enumerate() {
            tree.insert(Rect::from_point(p), (n_surv + j) as u32);
            points.push(p);
        }
        RTreeIndex { points, tree }
    }
}

/// The Voronoi/Delaunay physical design (for VS² and VCS²).
///
/// Voronoi cells are materialized at build time — the paper's "pre-built
/// Delaunay graph" file stores each point's neighbourhood, and the cell
/// polygon is derived data the query loop should never recompute.
pub struct VoronoiIndex {
    /// The triangulation the graph was derived from, retained (compacted)
    /// so the next generation can be produced by local repair instead of
    /// a rebuild.
    tri: Triangulation,
    graph: DelaunayGraph,
    pages: PagedAdjacency,
    cells: Vec<ConvexPolygon>,
    cell_mbrs: Vec<Rect>,
    /// Optional O(log n) start-point index (paper §4.2: "Φ(|P|) is
    /// O(log |P|) if an index structure is used"). `None` reproduces the
    /// index-free O(√|P|) greedy-walk mode.
    start_index: Option<KdTree>,
    /// Translates kd answers (ids of the generation the kd was built
    /// over) into current ids. Identity right after a build; delta
    /// generations compose their renumbering into it so a stale kd keeps
    /// yielding valid walk seeds.
    seed_map: Vec<u32>,
    /// Operations absorbed since the kd was last rebuilt.
    seed_staleness: usize,
    per_page: usize,
}

impl VoronoiIndex {
    /// Builds the Delaunay graph and its Hilbert-paged adjacency layout.
    ///
    /// `per_page` mirrors the paper's 50-entries-per-page R-tree nodes so
    /// the two physical designs report comparable I/O; use
    /// [`VoronoiIndex::new`] for that default.
    pub fn with_page_size(
        points: &[Point],
        per_page: usize,
    ) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        let mut tri = Triangulation::new(points)?;
        // Drop the construction garbage (dead cavity slots) so the copy
        // every delta generation starts from is as small as possible.
        tri.compact(&[]);
        let graph = DelaunayGraph::from_triangulation(&tri);
        let pages = PagedAdjacency::new(points, per_page);
        let clip = graph.default_clip();
        // Fast path: trace cells from circumcenters (O(deg) per site);
        // individual numerically-degenerate cells — and fully collinear
        // inputs — fall back to the bisector half-plane construction.
        let cells: Vec<ConvexPolygon> = match ssq_delaunay::voronoi::voronoi_cells(&tri, &clip) {
            Some(fast) => fast
                .into_iter()
                .enumerate()
                .map(|(i, c)| c.unwrap_or_else(|| graph.voronoi_cell(i as u32, &clip)))
                .collect(),
            None => (0..points.len() as u32)
                .map(|i| graph.voronoi_cell(i, &clip))
                .collect(),
        };
        let cell_mbrs = cells.iter().map(|c| c.mbr()).collect();
        Ok(VoronoiIndex {
            tri,
            graph,
            pages,
            cells,
            cell_mbrs,
            start_index: Some(KdTree::build(points)),
            seed_map: (0..points.len() as u32).collect(),
            seed_staleness: 0,
            per_page,
        })
    }

    /// Builds the index with the default page capacity (50 points/page).
    pub fn new(points: &[Point]) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        Self::with_page_size(points, 50)
    }

    /// Builds the index **without** the kd-tree start index: `nearest`
    /// falls back to the greedy Delaunay walk, reproducing the paper's
    /// index-free `Φ(|P|) = O(√|P|)` mode (§4.2).
    pub fn without_start_index(points: &[Point]) -> Result<VoronoiIndex, ssq_delaunay::BuildError> {
        let mut idx = Self::with_page_size(points, 50)?;
        idx.start_index = None;
        idx.seed_map = Vec::new();
        Ok(idx)
    }

    /// The underlying Delaunay graph.
    pub fn graph(&self) -> &DelaunayGraph {
        &self.graph
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        self.graph.points()
    }

    /// The point with index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> Point {
        self.graph.point(i)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The Voronoi neighbours of point `i`, counting one adjacency-page
    /// access when the page is cold.
    pub fn neighbors(&self, i: u32) -> &[u32] {
        self.pages.touch(i);
        self.graph.neighbors(i)
    }

    /// The Voronoi cell of `i` (precomputed, clipped to the default box).
    pub fn voronoi_cell(&self, i: u32) -> &ConvexPolygon {
        self.pages.touch(i);
        &self.cells[i as usize]
    }

    /// Exact test "does the Voronoi cell of `i` intersect `r`?", tiered so
    /// the overwhelmingly common cases cost four f64 comparisons: first
    /// the cell's precomputed MBR (disjoint ⟹ no; fully inside `r` ⟹
    /// yes), then the exact convex-polygon test only for boundary cells.
    pub fn cell_intersects_rect(&self, i: u32, r: &Rect) -> bool {
        self.pages.touch(i);
        let mbr = &self.cell_mbrs[i as usize];
        if !mbr.intersects(r) {
            return false;
        }
        if r.contains_rect(mbr) {
            return true;
        }
        self.cells[i as usize].intersects_rect(r)
    }

    /// Nearest data point to `q`: a greedy Delaunay walk seeded by the
    /// kd-tree start index when present (`O(log |P|)` to seed, then
    /// usually a single ring scan) and by `hint` otherwise (`O(√|P|)`
    /// hops). The walk touches the adjacency page of every point visited,
    /// so its I/O is accounted like any other adjacency access.
    ///
    /// The walk — not the kd answer — is what guarantees exactness
    /// (greedy routing on a Delaunay graph provably reaches the nearest
    /// neighbour), which is why delta generations may keep serving a
    /// slightly stale kd through [`seed_map`](Self::apply_delta): any
    /// valid id is a correct seed.
    pub fn nearest(&self, q: Point, hint: u32) -> u32 {
        let mut cur = hint;
        if let Some(kd) = &self.start_index {
            if let Some(i) = kd.nearest(q) {
                cur = self.seed_map[i as usize];
            }
        }
        let mut cur_d = self.point(cur).distance_sq(q);
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &j in self.neighbors(cur) {
                let d = self.point(j).distance_sq(q);
                if d < best_d {
                    best = j;
                    best_d = d;
                }
            }
            if best == cur {
                return cur;
            }
            cur = best;
            cur_d = best_d;
        }
    }

    /// Adjacency-page accesses since the last reset (the VS² I/O metric).
    pub fn page_accesses(&self) -> u64 {
        self.pages.accesses()
    }

    /// Resets the page-access counter (call before each measured query).
    pub fn reset_page_accesses(&self) {
        self.pages.reset()
    }

    /// The retained Delaunay triangulation this generation was derived
    /// from.
    pub fn triangulation(&self) -> &Triangulation {
        &self.tri
    }

    /// Applies a validated, normalized [`UpdateBatch`], producing the
    /// next generation's index.
    ///
    /// The incremental path costs `O(|batch| log n)` plus the memory
    /// copies of generation publishing: the triangulation is cloned and
    /// repaired locally (Hilbert-ordered removals by cavity
    /// retriangulation, then compaction, then Hilbert-ordered inserts),
    /// the CSR adjacency is refilled, and only *dirty* Voronoi cells —
    /// sites whose neighbour set changed, plus any cell not strictly
    /// interior to both generations' clip boxes — are recomputed;
    /// everything else is carried over. The kd start index is reused
    /// through a composed id translation until churn exceeds
    /// `1/16` of the point count.
    ///
    /// Falls back to a full rebuild (identical resulting index, higher
    /// cost) when the batch exceeds `1/8` of the index, the
    /// triangulation is degenerate, or a local repair cannot express the
    /// operation (reported via [`DeltaStats::incremental`]).
    pub fn apply_delta(
        &self,
        batch: &UpdateBatch,
    ) -> Result<(VoronoiIndex, DeltaStats), ssq_delaunay::BuildError> {
        debug_assert!(batch.is_normalized());
        let stats = DeltaStats {
            inserts: batch.inserts.len(),
            deletes: batch.deletes.len(),
            incremental: false,
            dirty_cells: 0,
        };
        if batch.op_count() * DELTA_REBUILD_DENOM > self.len() || self.tri.is_degenerate() {
            return self.delta_full_rebuild(batch, stats);
        }
        match self.delta_incremental(batch) {
            Ok((idx, dirty_cells)) => Ok((
                idx,
                DeltaStats {
                    incremental: true,
                    dirty_cells,
                    ..stats
                },
            )),
            // Local repair refused (shrinking to a degenerate set, stale
            // geometry, coincident insert): rebuild from the point set.
            Err(_) => self.delta_full_rebuild(batch, stats),
        }
    }

    /// The points of the next generation: survivors in order, then
    /// inserts.
    fn delta_points(&self, batch: &UpdateBatch, remap: &[u32]) -> Vec<Point> {
        let pts = self.points();
        let mut out = Vec::with_capacity(pts.len() - batch.deletes.len() + batch.inserts.len());
        out.extend(
            pts.iter()
                .zip(remap)
                .filter(|(_, &r)| r != u32::MAX)
                .map(|(&p, _)| p),
        );
        out.extend(batch.inserts.iter().copied());
        out
    }

    fn delta_full_rebuild(
        &self,
        batch: &UpdateBatch,
        stats: DeltaStats,
    ) -> Result<(VoronoiIndex, DeltaStats), ssq_delaunay::BuildError> {
        let remap = batch.survivor_remap(self.len());
        let pts = self.delta_points(batch, &remap);
        let mut idx = VoronoiIndex::with_page_size(&pts, self.per_page)?;
        if self.start_index.is_none() {
            idx.start_index = None;
            idx.seed_map = Vec::new();
        }
        Ok((idx, stats))
    }

    fn delta_incremental(&self, batch: &UpdateBatch) -> Result<(VoronoiIndex, usize), DeltaError> {
        let n_old = self.len();
        let n_surv = n_old - batch.deletes.len();
        let n_new = n_surv + batch.inserts.len();

        // 1. Repair the triangulation: removals in Hilbert order (each
        //    locate walk starts where the previous op ended), compaction
        //    to the dense survivor numbering, then the already
        //    Hilbert-ordered inserts, which land at ids `n_surv..n_new`.
        let mut tri = self.tri.clone();
        let span = self.graph.default_clip();
        let mut victims = batch.deletes.clone();
        victims.sort_by_key(|&d| hilbert::hilbert_index(self.point(d), &span));
        for &d in &victims {
            tri.remove_point(d)?;
        }
        let remap = tri.compact(&batch.deletes);
        for &p in &batch.inserts {
            tri.insert_point(p)?;
        }

        // 2. Fresh adjacency; `O(|edges|)` with no global sort.
        let graph = DelaunayGraph::from_triangulation(&tri);
        debug_assert_eq!(graph.len(), n_new);
        let clip = graph.default_clip();
        let old_clip = self.graph.default_clip();

        // Inverse renumbering: the old id of each surviving new id.
        let mut inv = vec![0u32; n_surv];
        for (old, &r) in remap.iter().enumerate() {
            if r != u32::MAX {
                inv[r as usize] = old as u32;
            }
        }

        // 3. Voronoi cells: recompute the dirty ones, carry the rest. A
        //    survivor's cell is clean when its neighbour set is unchanged
        //    and its old cell was strictly interior to both clip boxes
        //    (so neither the old nor the new clip binds it); hull cells
        //    always recompute, which also absorbs clip drift when the
        //    data MBR changes.
        let mut dirty_cells = 0usize;
        let mut cells = Vec::with_capacity(n_new);
        let mut cell_mbrs = Vec::with_capacity(n_new);
        for i in 0..n_new as u32 {
            let clean = (i as usize) < n_surv && {
                let old_i = inv[i as usize];
                let mbr = &self.cell_mbrs[old_i as usize];
                strictly_inside(mbr, &old_clip)
                    && strictly_inside(mbr, &clip)
                    && same_neighbors(self.graph.neighbors(old_i), &remap, graph.neighbors(i))
            };
            if clean {
                let old_i = inv[i as usize] as usize;
                cells.push(self.cells[old_i].clone());
                cell_mbrs.push(self.cell_mbrs[old_i]);
            } else {
                dirty_cells += 1;
                let c = graph.voronoi_cell(i, &clip);
                cell_mbrs.push(c.mbr());
                cells.push(c);
            }
        }

        // 4. Page layout carried forward: survivors keep their page,
        //    inserts join the page of an (already placed) Delaunay
        //    neighbour. Pages are access-accounting only, so any
        //    assignment is sound.
        let mut page_of = vec![0u32; n_new];
        for (i, slot) in page_of.iter_mut().take(n_surv).enumerate() {
            *slot = self.pages.page_of(inv[i]);
        }
        for i in n_surv..n_new {
            page_of[i] = graph
                .neighbors(i as u32)
                .iter()
                .find(|&&j| (j as usize) < i)
                .map(|&j| page_of[j as usize])
                .unwrap_or(0);
        }
        let pages = PagedAdjacency::with_layout(page_of, self.pages.page_count());

        // 5. kd seeds: compose the renumbering into the seed map; deleted
        //    seeds redirect to a surviving old neighbour (locality-
        //    preserving), and the kd itself is rebuilt only once
        //    staleness accumulates.
        let (start_index, seed_map, seed_staleness) = match &self.start_index {
            None => (None, Vec::new(), 0),
            Some(kd) => {
                let staleness = self.seed_staleness + batch.op_count();
                if staleness * SEED_STALENESS_DENOM > n_new {
                    (
                        Some(KdTree::build(graph.points())),
                        (0..n_new as u32).collect(),
                        0,
                    )
                } else {
                    let map = self
                        .seed_map
                        .iter()
                        .map(|&t| match remap[t as usize] {
                            u32::MAX => self
                                .graph
                                .neighbors(t)
                                .iter()
                                .find_map(|&u| {
                                    (remap[u as usize] != u32::MAX).then(|| remap[u as usize])
                                })
                                .unwrap_or(0),
                            m => m,
                        })
                        .collect();
                    (Some(kd.clone()), map, staleness)
                }
            }
        };

        Ok((
            VoronoiIndex {
                tri,
                graph,
                pages,
                cells,
                cell_mbrs,
                start_index,
                seed_map,
                seed_staleness,
                per_page: self.per_page,
            },
            dirty_cells,
        ))
    }
}

/// `true` when `r` lies strictly inside `clip` (no shared boundary).
fn strictly_inside(r: &Rect, clip: &Rect) -> bool {
    r.min.x > clip.min.x && r.min.y > clip.min.y && r.max.x < clip.max.x && r.max.y < clip.max.y
}

/// `true` when the renumbered old neighbour list equals the new one.
/// Both lists are sorted and the renumbering is monotone on survivors, so
/// an element-wise comparison suffices (a deleted old neighbour maps to
/// `u32::MAX` and can never match).
fn same_neighbors(old: &[u32], remap: &[u32], new: &[u32]) -> bool {
    old.len() == new.len() && old.iter().zip(new).all(|(&o, &n)| remap[o as usize] == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push(Point::new(i as f64, j as f64 + 0.1 * i as f64));
            }
        }
        v
    }

    #[test]
    fn rtree_index_roundtrip() {
        let points = pts();
        let idx = RTreeIndex::new(&points);
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.point(7), points[7]);
        assert!(idx.universe().contains(points[50]));
    }

    #[test]
    fn voronoi_index_neighbors_and_cells() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        assert_eq!(idx.len(), 100);
        idx.reset_page_accesses();
        let n = idx.neighbors(0);
        assert!(!n.is_empty());
        assert!(idx.page_accesses() >= 1);
        let cell = idx.voronoi_cell(0);
        assert!(cell.contains(idx.point(0)));
    }

    #[test]
    fn tiered_cell_test_matches_exact_test() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        // Probe rectangles of several scales against every cell: the
        // tiered test must agree with the exact polygon test.
        for (k, probe) in [
            Rect::from_corners(Point::new(2.2, 2.2), Point::new(2.4, 2.6)),
            Rect::from_corners(Point::new(0.0, 0.0), Point::new(9.0, 10.0)),
            Rect::from_corners(Point::new(40.0, 40.0), Point::new(41.0, 41.0)),
            Rect::from_point(Point::new(5.0, 5.5)),
        ]
        .iter()
        .enumerate()
        {
            for i in 0..idx.len() as u32 {
                let exact = idx.voronoi_cell(i).intersects_rect(probe);
                assert_eq!(
                    idx.cell_intersects_rect(i, probe),
                    exact,
                    "probe {k}, cell {i}"
                );
            }
        }
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn make_batch(pts: &[Point], n_del: usize, n_ins: usize, seed: u64) -> UpdateBatch {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut deletes: Vec<u32> = Vec::new();
        while deletes.len() < n_del {
            let d = (next() % pts.len() as u64) as u32;
            if !deletes.contains(&d) {
                deletes.push(d);
            }
        }
        let inserts = pseudorandom(n_ins, seed ^ 0xabcdef);
        let mut batch = UpdateBatch { inserts, deletes };
        batch.validate(pts.len()).unwrap();
        batch.normalize(&Rect::bounding(pts.iter().copied()));
        batch
    }

    fn expected_points(pts: &[Point], batch: &UpdateBatch) -> Vec<Point> {
        let mut out: Vec<Point> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| !batch.deletes.contains(&(*i as u32)))
            .map(|(_, &p)| p)
            .collect();
        out.extend(batch.inserts.iter().copied());
        out
    }

    fn assert_same_index(got: &VoronoiIndex, want: &VoronoiIndex) {
        assert_eq!(got.points(), want.points());
        for i in 0..want.len() as u32 {
            assert_eq!(
                got.graph().neighbors(i),
                want.graph().neighbors(i),
                "adjacency of {i}"
            );
            let (gc, wc) = (&got.cells[i as usize], &want.cells[i as usize]);
            assert!(
                (gc.area() - wc.area()).abs() <= 1e-9 * wc.area().max(1.0),
                "cell {i} area {} vs {}",
                gc.area(),
                wc.area()
            );
            assert!(gc.contains(got.point(i)));
        }
        for q in pseudorandom(40, 999) {
            assert_eq!(got.nearest(q, 0), want.nearest(q, 0), "nearest to {q:?}");
        }
    }

    #[test]
    fn rtree_apply_delta_matches_fresh_bulk_load() {
        let pts = pseudorandom(400, 11);
        let idx = RTreeIndex::new(&pts);
        let batch = make_batch(&pts, 30, 25, 17);
        let got = idx.apply_delta(&batch);
        let want = RTreeIndex::new(&expected_points(&pts, &batch));
        assert_eq!(got.points(), want.points());
        got.tree().check_invariants();
        for probe in pseudorandom(30, 5) {
            let r = Rect::from_corners(probe, Point::new(probe.x + 9.0, probe.y + 9.0));
            let mut a = got.tree().query_rect(&r);
            let mut b = want.tree().query_rect(&r);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn voronoi_apply_delta_incremental_matches_full_rebuild() {
        let pts = pseudorandom(600, 3);
        let idx = VoronoiIndex::new(&pts).unwrap();
        let batch = make_batch(&pts, 25, 30, 7);
        let (got, stats) = idx.apply_delta(&batch).unwrap();
        assert!(stats.incremental, "small batch must take the delta path");
        assert!(stats.dirty_cells < got.len(), "most cells carried over");
        let want = VoronoiIndex::new(&expected_points(&pts, &batch)).unwrap();
        assert_same_index(&got, &want);
    }

    #[test]
    fn voronoi_apply_delta_oversized_batch_rebuilds() {
        let pts = pseudorandom(100, 29);
        let idx = VoronoiIndex::new(&pts).unwrap();
        let batch = make_batch(&pts, 40, 10, 31);
        let (got, stats) = idx.apply_delta(&batch).unwrap();
        assert!(!stats.incremental);
        let want = VoronoiIndex::new(&expected_points(&pts, &batch)).unwrap();
        assert_same_index(&got, &want);
    }

    #[test]
    fn chained_deltas_stay_exact() {
        // Enough consecutive generations to cross the kd staleness
        // threshold (seed map composition + kd rebuild both exercised).
        let mut pts = pseudorandom(300, 41);
        let mut idx = VoronoiIndex::new(&pts).unwrap();
        for round in 0..12 {
            let batch = make_batch(&pts, 6, 8, 1000 + round);
            pts = expected_points(&pts, &batch);
            let (next, _) = idx.apply_delta(&batch).unwrap();
            idx = next;
            assert_eq!(idx.points(), &pts[..]);
        }
        let want = VoronoiIndex::new(&pts).unwrap();
        assert_same_index(&idx, &want);
    }

    #[test]
    fn voronoi_index_nearest() {
        let points = pts();
        let idx = VoronoiIndex::new(&points).unwrap();
        let nn = idx.nearest(Point::new(5.05, 5.55), 0);
        let brute = (0..100u32)
            .min_by(|&a, &b| {
                idx.point(a)
                    .distance_sq(Point::new(5.05, 5.55))
                    .total_cmp(&idx.point(b).distance_sq(Point::new(5.05, 5.55)))
            })
            .unwrap();
        assert_eq!(nn, brute);
    }
}
