//! B²S² — the Branch-and-Bound Spatial Skyline algorithm (paper §4.1,
//! Fig. 5).
//!
//! The traversal skeleton is BBS's best-first descent of the R*-tree, but
//! every step is armed with the geometric foundation of §3:
//!
//! * the heap key and all dominance tests use only the hull vertices
//!   `CHv(Q)` (Theorem 2);
//! * entries fully inside `CH(Q)` are skyline material without any
//!   dominance check (Theorem 1);
//! * a pruning rectangle `B` — the intersection of `MBR(SR(p, Q))` over
//!   the skyline points found so far — discards entries in `O(d)` before
//!   any per-skyline-point test runs (`SR(p, Q)` is the union of the
//!   circles `C(q, D(p, q))`, and every undiscovered skyline point lies
//!   inside each such MBR).

use ssq_geom::circle::search_region_mbr;
use ssq_geom::Rect;
use ssq_rtree::{Entry, NodeId};

use crate::heap::MinHeap;
use crate::index::RTreeIndex;
use crate::query::{dominated_by_any, QueryContext};
use crate::scratch::DistanceScratch;
use crate::stats::{QueryStats, SkylineResult};

enum Work {
    Node(NodeId, Rect),
    Point(u32, Rect),
}

/// Runs B²S² over the R-tree index.
pub fn b2s2(index: &RTreeIndex, ctx: &QueryContext) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.tree().reset_node_accesses();
    let anchors = ctx.anchors();

    // Fig. 5 line 03: B starts as the MBR of the root (the data universe).
    let mut b = index.universe();
    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    let mut heap: MinHeap<Work> = MinHeap::new();
    if let Some(root) = index.tree().root() {
        heap.push(0.0, Work::Node(root, index.universe()));
    }

    while let Some((_, work)) = heap.pop() {
        stats.entries_visited += 1;
        match work {
            Work::Point(i, mbr) => {
                // Line 07: discard entries outside B.
                if !mbr.intersects(&b) {
                    continue;
                }
                let p = index.point(i);
                // Line 08: points inside CH(Q) are skyline by Theorem 1.
                let certain = ctx.hull().contains(p);
                stats.points_examined += 1;
                let v = ctx.dist_vector(p, &mut stats);
                if certain || !dominated_by_any(&v, &skyline, &mut stats) {
                    skyline.push((i, v));
                    // Line 12: B = B ∩ MBR(SR(p, Q)).
                    b = b.intersection(&search_region_mbr(p, anchors));
                }
            }
            Work::Node(id, mbr) => {
                if !mbr.intersects(&b) {
                    continue;
                }
                // Line 08-09 re-check on removal: inside hull, or not
                // dominated by the (possibly grown) skyline.
                if !ctx.hull().contains_rect(&mbr)
                    && rect_dominated(&mbr, &skyline, ctx, &mut stats)
                {
                    continue;
                }
                for e in index.tree().entries(id) {
                    let embr = e.mbr();
                    // Line 15: child outside B.
                    if !embr.intersects(&b) {
                        continue;
                    }
                    // Lines 16-17: inside CH(Q) skips the dominance test.
                    if !ctx.hull().contains_rect(&embr)
                        && rect_dominated(&embr, &skyline, ctx, &mut stats)
                    {
                        continue;
                    }
                    let key = embr.mindist_sum(anchors);
                    stats.distance_computations += anchors.len() as u64;
                    match e {
                        Entry::Node { child, .. } => heap.push(key, Work::Node(child, embr)),
                        Entry::Item { item, .. } => heap.push(key, Work::Point(item, embr)),
                    }
                }
            }
        }
    }

    stats.node_accesses = index.tree().node_accesses();
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

/// The kernel-path B²S²: identical traversal and output to [`b2s2`], but
/// skyline distance vectors live as **squared**-distance rows of the
/// scratch arena (the dominance relation is unchanged under squaring, see
/// [`ssq_geom::kernel`]), so the per-point `Vec` allocations of the scalar
/// path disappear. Heap keys stay the *true* `mindist` sums — BBS-style
/// popped-point finality needs dominators to pop first, which the true-sum
/// order guarantees directly.
pub fn b2s2_kernel(
    index: &RTreeIndex,
    ctx: &QueryContext,
    scratch: &mut DistanceScratch,
) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.tree().reset_node_accesses();
    let anchors = ctx.anchors();
    scratch.begin(anchors.len());

    let mut b = index.universe();
    let mut heap: MinHeap<Work> = MinHeap::new();
    if let Some(root) = index.tree().root() {
        heap.push(0.0, Work::Node(root, index.universe()));
    }

    while let Some((_, work)) = heap.pop() {
        stats.entries_visited += 1;
        match work {
            Work::Point(i, mbr) => {
                if !mbr.intersects(&b) {
                    continue;
                }
                let p = index.point(i);
                let certain = ctx.hull().contains(p);
                stats.points_examined += 1;
                // Stage the row, then keep or retract it — the arena's
                // last row plays the role of the scalar path's `v`.
                scratch.push_row(i, certain, p, anchors);
                stats.distance_computations += anchors.len() as u64;
                if certain || !scratch.last_dominated(&mut stats) {
                    b = b.intersection(&search_region_mbr(p, anchors));
                } else {
                    scratch.pop_row();
                }
            }
            Work::Node(id, mbr) => {
                if !mbr.intersects(&b) {
                    continue;
                }
                if !ctx.hull().contains_rect(&mbr)
                    && scratch.rect_dominated_sq(&mbr, anchors, &mut stats)
                {
                    continue;
                }
                for e in index.tree().entries(id) {
                    let embr = e.mbr();
                    if !embr.intersects(&b) {
                        continue;
                    }
                    if !ctx.hull().contains_rect(&embr)
                        && scratch.rect_dominated_sq(&embr, anchors, &mut stats)
                    {
                        continue;
                    }
                    let key = embr.mindist_sum(anchors);
                    stats.distance_computations += anchors.len() as u64;
                    match e {
                        Entry::Node { child, .. } => heap.push(key, Work::Node(child, embr)),
                        Entry::Item { item, .. } => heap.push(key, Work::Point(item, embr)),
                    }
                }
            }
        }
    }

    stats.node_accesses = index.tree().node_accesses();
    let skyline = scratch.ids_sorted().to_vec();
    stats.allocations += scratch.take_allocations();
    SkylineResult { skyline, stats }
}

/// Dominance test for a rectangle against the skyline over the hull
/// vertices only: dominated by `s` iff the rectangle misses every circle
/// `C(q, D(s, q))`, `q ∈ CHv(Q)` (paper §4.1).
fn rect_dominated(
    mbr: &Rect,
    skyline: &[(u32, Vec<f64>)],
    ctx: &QueryContext,
    stats: &mut QueryStats,
) -> bool {
    for (_, sv) in skyline {
        stats.dominance_checks += 1;
        stats.distance_computations += ctx.anchors().len() as u64;
        let dominated = ctx
            .anchors()
            .iter()
            .zip(sv)
            .all(|(&q, &d)| mbr.mindist(q) > d);
        if dominated {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbs::bbs;
    use crate::naive::naive_full;
    use ssq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn matches_naive_on_random_instances() {
        for trial in 0..12 {
            let points = pseudorandom(150, trial + 1);
            let q = pseudorandom(2 + (trial as usize % 6), 2000 + trial);
            let ctx = QueryContext::new(&q);
            let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(4));
            let got = b2s2(&idx, &ctx);
            let want = naive_full(&points, &ctx);
            assert_eq!(got.skyline, want.skyline, "trial {trial}");
        }
    }

    #[test]
    fn interior_query_points_do_not_change_result() {
        // Theorem 2 end-to-end: adding query points inside CH(Q) must not
        // change the skyline.
        let points = pseudorandom(200, 9);
        let q = vec![p(0.2, 0.2), p(0.8, 0.25), p(0.5, 0.9)];
        let mut q_extra = q.clone();
        q_extra.push(p(0.5, 0.45)); // inside the triangle
        q_extra.push(p(0.45, 0.4));
        let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(8));
        let a = b2s2(&idx, &QueryContext::new(&q));
        let b = b2s2(&idx, &QueryContext::new(&q_extra));
        assert_eq!(a.skyline, b.skyline);
    }

    #[test]
    fn does_less_work_than_bbs() {
        // The headline claim of §4.1: same answer, fewer dominance checks
        // and no more I/O.
        let points = pseudorandom(2000, 31);
        let q = pseudorandom(6, 555)
            .into_iter()
            .map(|v| Point::new(0.45 + v.x * 0.1, 0.45 + v.y * 0.1))
            .collect::<Vec<_>>();
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(16));
        let fast = b2s2(&idx, &ctx);
        let slow = bbs(&idx, &ctx);
        assert_eq!(fast.skyline, slow.skyline);
        assert!(
            fast.stats.dominance_checks < slow.stats.dominance_checks,
            "B2S2 {} vs BBS {}",
            fast.stats.dominance_checks,
            slow.stats.dominance_checks
        );
        assert!(fast.stats.node_accesses <= slow.stats.node_accesses);
    }

    #[test]
    fn all_points_inside_hull_skip_dominance_checks() {
        // Every data point inside CH(Q): no dominance checks at all.
        let points = vec![p(0.4, 0.4), p(0.5, 0.6), p(0.6, 0.45)];
        let q = [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::new(&points);
        let r = b2s2(&idx, &ctx);
        assert_eq!(r.skyline, vec![0, 1, 2]);
        assert_eq!(r.stats.dominance_checks, 0);
    }

    #[test]
    fn empty_dataset() {
        let ctx = QueryContext::new(&[p(0.5, 0.5)]);
        let idx = RTreeIndex::new(&[]);
        assert!(b2s2(&idx, &ctx).skyline.is_empty());
        let mut scratch = DistanceScratch::new();
        assert!(b2s2_kernel(&idx, &ctx, &mut scratch).skyline.is_empty());
    }

    #[test]
    fn kernel_variant_mirrors_the_scalar_traversal() {
        // Same heap keys, same pruning decisions: the kernel path must
        // reproduce not just the skyline but the work counters too.
        let mut scratch = DistanceScratch::new();
        for trial in 0..12 {
            let points = pseudorandom(150, 300 + trial);
            let q = pseudorandom(2 + (trial as usize % 6), 7000 + trial);
            let ctx = QueryContext::new(&q);
            let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(4));
            let scalar = b2s2(&idx, &ctx);
            let kernel = b2s2_kernel(&idx, &ctx, &mut scratch);
            assert_eq!(scalar.skyline, kernel.skyline, "trial {trial}");
            assert_eq!(
                scalar.stats.dominance_checks, kernel.stats.dominance_checks,
                "trial {trial}"
            );
            assert_eq!(
                scalar.stats.entries_visited, kernel.stats.entries_visited,
                "trial {trial}"
            );
            // Trial 0 warms the arena (growth events are counted as
            // allocations); warm trials must not exceed the scalar path.
            if trial > 0 {
                assert!(
                    kernel.stats.allocations <= scalar.stats.allocations,
                    "trial {trial}"
                );
            }
        }
    }
}
