//! Mixed skylines `S(A, Q)` — spatial distances plus static non-spatial
//! attributes (paper §6).
//!
//! "The best restaurant in LA might be dominated in terms of distance to
//! our team members but it is still in the skyline because of its rating."
//! Formally, `p` *combined-dominates* `p'` iff `p` is weakly better on
//! every static attribute in `A` **and** weakly closer to every query
//! point, strictly better somewhere. The result satisfies
//! `S(A) ⊆ S(A, Q)` and `S(Q) ⊆ S(A, Q)`.
//!
//! Following the paper, the algorithms change in three ways:
//!
//! 1. the static skyline `S(A)` is precomputed once (a query-independent
//!    batch step — we use BNL from `ssq-skyline`);
//! 2. dominance checks outside `CH(Q)` use the combined vector
//!    (attributes + anchor distances; Theorem 2 still covers the spatial
//!    half). Points inside `CH(Q)` keep their Theorem-1 free pass — they
//!    cannot be spatially dominated, hence cannot be combined-dominated;
//! 3. the search region is bounded by **Lemma 7** instead of the shrinking
//!    rectangle `B`: with `rᵢ = max_{s ∈ S(A)} D(s, qᵢ)`, any point
//!    strictly farther than every `S(A)` member from every query point is
//!    combined-dominated, so all candidates live in
//!    `B₀ = MBR(∪ᵢ C(qᵢ, rᵢ))`. (`B` cannot shrink per skyline point here:
//!    a spatially dominated point may still win on its attributes.)

use ssq_geom::{Circle, Point, Rect};
use ssq_rtree::{Entry, NodeId};

use crate::heap::MinHeap;
use crate::index::{RTreeIndex, VoronoiIndex};
use crate::query::{dominates, mutual_filter, QueryContext};
use crate::stats::{QueryStats, SkylineResult};

/// A prepared mixed query: the spatial context plus the attribute table,
/// its static skyline `S(A)` and the Lemma-7 search bound.
pub struct MixedContext<'a> {
    ctx: &'a QueryContext,
    attrs: &'a [Vec<f64>],
    /// Indices of the static skyline `S(A)`.
    static_skyline: Vec<usize>,
    /// Lemma-7 radii, one per anchor.
    radii: Vec<f64>,
}

impl<'a> MixedContext<'a> {
    /// Prepares the mixed query. `attrs[i]` are the static attributes of
    /// data point `i` (minimize semantics); all rows must share one arity.
    pub fn new(points: &[Point], attrs: &'a [Vec<f64>], ctx: &'a QueryContext) -> MixedContext<'a> {
        assert_eq!(
            points.len(),
            attrs.len(),
            "one attribute row per data point"
        );
        let static_skyline = ssq_skyline::bnl(attrs);
        let radii = ctx
            .anchors()
            .iter()
            .map(|&q| {
                static_skyline
                    .iter()
                    .map(|&s| q.distance(points[s]))
                    .fold(0.0f64, f64::max)
            })
            .collect();
        MixedContext {
            ctx,
            attrs,
            static_skyline,
            radii,
        }
    }

    /// The precomputed static skyline `S(A)`.
    pub fn static_skyline(&self) -> &[usize] {
        &self.static_skyline
    }

    /// The Lemma-7 search bound `B₀ = MBR(∪ᵢ C(qᵢ, rᵢ))`.
    pub fn search_bound(&self) -> Rect {
        self.ctx
            .anchors()
            .iter()
            .zip(&self.radii)
            .map(|(&q, &r)| Circle::new(q, r).mbr())
            .fold(Rect::EMPTY, |acc, m| acc.union(&m))
    }

    /// The combined vector of point `i`: static attributes followed by
    /// anchor distances.
    pub fn combined_vector(&self, i: u32, p: Point, stats: &mut QueryStats) -> Vec<f64> {
        let mut v = self.attrs[i as usize].clone();
        stats.allocations += 1;
        stats.distance_computations += self.ctx.anchors().len() as u64;
        v.extend(self.ctx.anchors().iter().map(|&q| q.distance(p)));
        v
    }

    /// Combined vector over the **full** query set (for the oracle).
    fn combined_vector_full(&self, i: u32, p: Point, stats: &mut QueryStats) -> Vec<f64> {
        let mut v = self.attrs[i as usize].clone();
        stats.allocations += 1;
        stats.distance_computations += self.ctx.query().len() as u64;
        v.extend(self.ctx.query().iter().map(|&q| q.distance(p)));
        v
    }
}

/// The `O(|P|²)` mixed-skyline oracle over the full query set.
pub fn mixed_naive(points: &[Point], mctx: &MixedContext<'_>) -> SkylineResult {
    let mut stats = QueryStats::default();
    let vectors: Vec<Vec<f64>> = (0..points.len() as u32)
        .map(|i| mctx.combined_vector_full(i, points[i as usize], &mut stats))
        .collect();
    let mut skyline = Vec::new();
    for i in 0..points.len() {
        stats.points_examined += 1;
        let dominated = (0..points.len()).any(|j| {
            if i == j {
                return false;
            }
            stats.dominance_checks += 1;
            dominates(&vectors[j], &vectors[i])
        });
        if !dominated {
            skyline.push(i as u32);
        }
    }
    SkylineResult { skyline, stats }
}

/// Mixed B²S²: best-first R-tree traversal bounded by the Lemma-7 region,
/// with Theorem-1 free passes and combined dominance checks at the leaves.
pub fn mixed_b2s2(index: &RTreeIndex, mctx: &MixedContext<'_>) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.tree().reset_node_accesses();
    let ctx = mctx.ctx;
    let bound = mctx.search_bound();

    enum Work {
        Node(NodeId),
        Point(u32),
    }
    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    let mut heap: MinHeap<Work> = MinHeap::new();
    if let Some(root) = index.tree().root() {
        heap.push(0.0, Work::Node(root));
    }
    while let Some((_, work)) = heap.pop() {
        stats.entries_visited += 1;
        match work {
            Work::Point(i) => {
                let p = index.point(i);
                stats.points_examined += 1;
                let v = mctx.combined_vector(i, p, &mut stats);
                let mut dominated = false;
                if !ctx.hull().contains(p) {
                    for (_, sv) in &skyline {
                        stats.dominance_checks += 1;
                        if dominates(sv, &v) {
                            dominated = true;
                            break;
                        }
                    }
                }
                if !dominated {
                    skyline.push((i, v));
                }
            }
            Work::Node(id) => {
                for e in index.tree().entries(id) {
                    let mbr = e.mbr();
                    // Lemma 7: no candidate outside the bound.
                    if !mbr.intersects(&bound) {
                        continue;
                    }
                    let key = mbr.mindist_sum(ctx.anchors());
                    stats.distance_computations += ctx.anchors().len() as u64;
                    match e {
                        Entry::Node { child, .. } => heap.push(key, Work::Node(child)),
                        Entry::Item { item, .. } => heap.push(key, Work::Point(item)),
                    }
                }
            }
        }
    }

    // Combined dominance only weakly orders by mindist (a dominator can tie
    // on every distance and win on attributes), so finish with the mutual
    // filter to stay exact.
    let skyline = mutual_filter(skyline, &mut stats);
    stats.node_accesses = index.tree().node_accesses();
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

/// Mixed VS²: the Delaunay traversal of VS² with the fixed Lemma-7 bound
/// in place of the shrinking rectangle and combined dominance checks.
pub fn mixed_vs2(index: &VoronoiIndex, mctx: &MixedContext<'_>) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.reset_page_accesses();
    if index.is_empty() {
        return SkylineResult::default();
    }
    let ctx = mctx.ctx;
    let n = index.len();
    let bound = mctx.search_bound();

    let start = index.nearest(ctx.query()[0], 0);
    let mut visited = vec![false; n];
    let mut extracted = vec![false; n];
    let mut skyline: Vec<(u32, Vec<f64>)> = Vec::new();
    let mut heap: MinHeap<u32> = MinHeap::new();
    heap.push(ctx.mindist(index.point(start)), start);
    visited[start as usize] = true;

    while let Some((_, &p)) = heap.peek() {
        if extracted[p as usize] {
            heap.pop();
            let pt = index.point(p);
            stats.points_examined += 1;
            let v = mctx.combined_vector(p, pt, &mut stats);
            let mut dominated = false;
            if !ctx.hull().contains(pt) {
                for (_, sv) in &skyline {
                    stats.dominance_checks += 1;
                    if dominates(sv, &v) {
                        dominated = true;
                        break;
                    }
                }
            }
            if !dominated {
                skyline.push((p, v));
            }
        } else {
            extracted[p as usize] = true;
            stats.entries_visited += 1;
            for &nb in index.neighbors(p) {
                if visited[nb as usize] {
                    continue;
                }
                let nbp = index.point(nb);
                if bound.contains(nbp) || index.cell_intersects_rect(nb, &bound) {
                    visited[nb as usize] = true;
                    heap.push(ctx.mindist(nbp), nb);
                    stats.distance_computations += ctx.anchors().len() as u64;
                }
            }
        }
    }

    let skyline = mutual_filter(skyline, &mut stats);
    stats.node_accesses = index.page_accesses();
    let mut ids: Vec<u32> = skyline.into_iter().map(|(i, _)| i).collect();
    ids.sort_unstable();
    SkylineResult {
        skyline: ids,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    fn random_attrs(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn supersets_hold() {
        // S(A) ⊆ S(A,Q) and S(Q) ⊆ S(A,Q).
        let points = pseudorandom(80, 3);
        let attrs = random_attrs(80, 2, 13);
        let ctx = QueryContext::new(&pseudorandom(3, 99));
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let mixed = mixed_naive(&points, &mctx);
        for &s in mctx.static_skyline() {
            assert!(mixed.contains(s as u32), "S(A) member {s} missing");
        }
        let spatial = crate::naive::naive_full(&points, &ctx);
        for s in &spatial.skyline {
            assert!(mixed.contains(*s), "S(Q) member {s} missing");
        }
    }

    #[test]
    fn b2s2_and_vs2_match_oracle() {
        for trial in 0..8 {
            let n = 100;
            let points = pseudorandom(n, trial + 1);
            let attrs = random_attrs(n, 1 + (trial as usize % 2), 500 + trial);
            let q = pseudorandom(2 + (trial as usize % 4), 7000 + trial);
            let ctx = QueryContext::new(&q);
            let mctx = MixedContext::new(&points, &attrs, &ctx);
            let want = mixed_naive(&points, &mctx);
            let rt = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(4));
            let vi = VoronoiIndex::new(&points).unwrap();
            assert_eq!(
                mixed_b2s2(&rt, &mctx).skyline,
                want.skyline,
                "b2s2 trial {trial}"
            );
            assert_eq!(
                mixed_vs2(&vi, &mctx).skyline,
                want.skyline,
                "vs2 trial {trial}"
            );
        }
    }

    #[test]
    fn constant_attributes_reduce_to_spatial_skyline() {
        // With identical attributes everywhere, combined dominance equals
        // spatial dominance.
        let points = pseudorandom(60, 7);
        let attrs: Vec<Vec<f64>> = (0..60).map(|_| vec![1.0]).collect();
        let ctx = QueryContext::new(&pseudorandom(4, 44));
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let spatial = crate::naive::naive_full(&points, &ctx);
        assert_eq!(mixed_naive(&points, &mctx).skyline, spatial.skyline);
    }

    #[test]
    fn dominant_attribute_point_always_survives() {
        // A point with the uniquely best attribute is in S(A,Q) no matter
        // where it sits.
        let mut points = pseudorandom(50, 9);
        points.push(p(0.99, 0.99)); // far from the query cluster below
        let mut attrs = random_attrs(50, 1, 21);
        for a in &mut attrs {
            a[0] += 1.0; // everyone else strictly worse
        }
        attrs.push(vec![0.0]);
        let q = [p(0.1, 0.1), p(0.2, 0.15)];
        let ctx = QueryContext::new(&q);
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let r = mixed_naive(&points, &mctx);
        assert!(r.contains(50));
        let rt = RTreeIndex::new(&points);
        assert!(mixed_b2s2(&rt, &mctx).contains(50));
        let vi = VoronoiIndex::new(&points).unwrap();
        assert!(mixed_vs2(&vi, &mctx).contains(50));
    }

    #[test]
    fn zero_arity_attributes_reduce_to_spatial_skyline() {
        // With no attribute columns at all, S(A) = P (empty vectors are
        // pairwise incomparable) and combined dominance degenerates to
        // spatial dominance.
        let points = pseudorandom(40, 19);
        let attrs: Vec<Vec<f64>> = (0..40).map(|_| Vec::new()).collect();
        let ctx = QueryContext::new(&pseudorandom(3, 55));
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        assert_eq!(mctx.static_skyline().len(), 40);
        let spatial = crate::naive::naive_full(&points, &ctx);
        assert_eq!(mixed_naive(&points, &mctx).skyline, spatial.skyline);
        let rt = RTreeIndex::new(&points);
        assert_eq!(mixed_b2s2(&rt, &mctx).skyline, spatial.skyline);
        let vi = VoronoiIndex::new(&points).unwrap();
        assert_eq!(mixed_vs2(&vi, &mctx).skyline, spatial.skyline);
    }

    #[test]
    fn search_bound_covers_all_results() {
        let points = pseudorandom(70, 15);
        let attrs = random_attrs(70, 2, 77);
        let ctx = QueryContext::new(&pseudorandom(3, 88));
        let mctx = MixedContext::new(&points, &attrs, &ctx);
        let bound = mctx.search_bound();
        for id in mixed_naive(&points, &mctx).skyline {
            assert!(
                bound.contains(points[id as usize]),
                "Lemma 7 bound must contain result {id}"
            );
        }
    }
}
