//! Ranked spatial skyline queries (paper §4.1.1).
//!
//! "B²S² can also utilize any arbitrary monotone function instead of
//! `mindist()` to sort the entries of its heap. Consequently, B²S² is also
//! able to employ any monotone preference function to support ranked
//! skyline queries."
//!
//! A *ranked* query asks for the top-`k` spatial skyline points in
//! ascending order of a user preference function `f` over the anchor
//! distances. When `f` is monotone (non-decreasing in every distance),
//! ordering the best-first heap by `f` of the per-anchor `mindist` lower
//! bound keeps two key properties:
//!
//! * the bound is admissible — `f(mindist(e, q₁), …) ≤ f(D(p, q₁), …)` for
//!   every point `p` inside entry `e` — so points still pop in ascending
//!   `f` order;
//! * a dominator still precedes its dominatees (it is weakly closer to
//!   every anchor, and strictly to one, and we require strict monotonicity
//!   in at least the coordinates that change... in practice: any strictly
//!   monotone `f`), so every popped non-dominated point is *final* and can
//!   be emitted immediately.
//!
//! The search therefore terminates as soon as `k` skyline points have been
//! emitted, without materializing the full skyline.

use ssq_geom::circle::search_region_mbr;
use ssq_geom::Rect;
use ssq_rtree::{Entry, NodeId};

use crate::heap::MinHeap;
use crate::index::RTreeIndex;
use crate::query::QueryContext;
use crate::scratch::DistanceScratch;
use crate::stats::{QueryStats, SkylineResult};

/// A monotone preference function over the anchor-distance vector.
///
/// Must be non-decreasing in every coordinate and strictly increasing
/// whenever *all* coordinates weakly decrease with one strict decrease
/// (any strictly monotone function such as a weighted sum, max, or
/// `p`-norm qualifies).
pub trait Preference {
    /// Scores a distance vector; smaller is better.
    fn score(&self, distances: &[f64]) -> f64;
}

/// Weighted sum of anchor distances; with unit weights this is the
/// paper's default `mindist` ranking. Weights must be **strictly
/// positive** — a zero weight makes the preference only weakly monotone,
/// which breaks the early-emission exactness argument.
#[derive(Clone, Debug)]
pub struct WeightedSum {
    /// One non-negative weight per anchor (missing weights default to 1).
    pub weights: Vec<f64>,
}

impl WeightedSum {
    /// Unit weights: plain `mindist` ranking.
    pub fn uniform() -> WeightedSum {
        WeightedSum {
            weights: Vec::new(),
        }
    }
}

impl Preference for WeightedSum {
    fn score(&self, distances: &[f64]) -> f64 {
        distances
            .iter()
            .enumerate()
            .map(|(i, &d)| d * self.weights.get(i).copied().unwrap_or(1.0))
            .sum()
    }
}

/// Ranks by the worst-case travel distance ("minimize the farthest
/// member's trip"), breaking ties by the total distance.
///
/// The tie-break is not cosmetic: the plain max is only *weakly* monotone
/// (a dominator can tie its dominatee on the maximal coordinate), and the
/// early-emission argument needs strict monotonicity — a dominator must
/// score strictly lower. `max + ε·sum` restores strictness, because a
/// dominator's sum is always strictly smaller.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxDistance;

impl Preference for MaxDistance {
    fn score(&self, distances: &[f64]) -> f64 {
        let max = distances.iter().copied().fold(0.0, f64::max);
        let sum: f64 = distances.iter().sum();
        max + 1e-9 * sum
    }
}

/// Returns the top-`k` spatial skyline points in ascending order of the
/// preference function, stopping the branch-and-bound as soon as `k`
/// results are final. The returned `skyline` is in **rank order** (not
/// sorted by index).
pub fn b2s2_ranked<P: Preference>(
    index: &RTreeIndex,
    ctx: &QueryContext,
    k: usize,
    pref: &P,
) -> SkylineResult {
    let mut scratch = DistanceScratch::new();
    b2s2_ranked_with(index, ctx, k, pref, &mut scratch)
}

/// [`b2s2_ranked`] with a caller-provided scratch arena: the skyline's
/// distance vectors live as arena rows and the per-node lower-bound vector
/// reuses the arena's spare buffer, so repeated queries through one
/// arena stay allocation-free (modulo the returned rank vector).
///
/// Rows here hold **true** distances, not squared ones — the preference
/// function is scored on real distances, and squaring would change every
/// non-linear preference (e.g. [`MaxDistance`]'s ε-sum tie-break).
pub fn b2s2_ranked_with<P: Preference>(
    index: &RTreeIndex,
    ctx: &QueryContext,
    k: usize,
    pref: &P,
    scratch: &mut DistanceScratch,
) -> SkylineResult {
    let mut stats = QueryStats::default();
    index.tree().reset_node_accesses();
    let anchors = ctx.anchors();
    scratch.begin(anchors.len());

    enum Work {
        Node(NodeId, Rect),
        Point(u32, Rect),
    }
    let mut b = index.universe();
    let mut ranked: Vec<u32> = Vec::new();
    let mut heap: MinHeap<Work> = MinHeap::new();
    if let Some(root) = index.tree().root() {
        heap.push(0.0, Work::Node(root, index.universe()));
    }

    while ranked.len() < k {
        let Some((_, work)) = heap.pop() else {
            break;
        };
        stats.entries_visited += 1;
        match work {
            Work::Point(i, mbr) => {
                if !mbr.intersects(&b) {
                    continue;
                }
                let p = index.point(i);
                stats.points_examined += 1;
                let certain = ctx.hull().contains(p);
                scratch.push_row_with(i, certain, anchors, |q| q.distance(p));
                stats.distance_computations += anchors.len() as u64;
                if certain || !scratch.last_dominated(&mut stats) {
                    b = b.intersection(&search_region_mbr(p, anchors));
                    ranked.push(i);
                } else {
                    scratch.pop_row();
                }
            }
            Work::Node(id, mbr) => {
                if !mbr.intersects(&b) {
                    continue;
                }
                for e in index.tree().entries(id) {
                    let embr = e.mbr();
                    if !embr.intersects(&b) {
                        continue;
                    }
                    // Admissible key: the preference applied to per-anchor
                    // lower bounds (held in the arena's spare buffer).
                    let key = pref.score(scratch.fill_spare_mindist(&embr, anchors));
                    stats.distance_computations += anchors.len() as u64;
                    match e {
                        Entry::Node { child, .. } => heap.push(key, Work::Node(child, embr)),
                        Entry::Item { item, .. } => heap.push(key, Work::Point(item, embr)),
                    }
                }
            }
        }
    }

    stats.node_accesses = index.tree().node_accesses();
    stats.allocations += scratch.take_allocations();
    SkylineResult {
        skyline: ranked,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_full;
    use ssq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| p(next(), next())).collect()
    }

    #[test]
    fn top_k_is_prefix_of_score_sorted_skyline() {
        for (trial, pref) in [
            (1u64, WeightedSum::uniform()),
            (
                2,
                WeightedSum {
                    weights: vec![2.0, 1.0, 0.5],
                },
            ),
        ] {
            let points = pseudorandom(200, trial * 11);
            let q = pseudorandom(3, 900 + trial);
            let ctx = QueryContext::new(&q);
            let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(8));

            let full = naive_full(&points, &ctx);
            let mut want: Vec<u32> = full.skyline.clone();
            let mut stats = QueryStats::default();
            want.sort_by(|&a, &b| {
                let va = ctx.dist_vector(points[a as usize], &mut stats);
                let vb = ctx.dist_vector(points[b as usize], &mut stats);
                pref.score(&va).total_cmp(&pref.score(&vb))
            });

            for k in [1usize, 3, 10, full.skyline.len(), full.skyline.len() + 5] {
                let got = b2s2_ranked(&idx, &ctx, k, &pref);
                let expect = &want[..k.min(want.len())];
                assert_eq!(got.skyline, expect, "k = {k}, pref trial {trial}");
            }
        }
    }

    #[test]
    fn max_distance_preference() {
        let points = pseudorandom(150, 5);
        let q = pseudorandom(4, 77);
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::with_config(&points, ssq_rtree::RTreeConfig::with_max_entries(8));
        let got = b2s2_ranked(&idx, &ctx, 3, &MaxDistance);
        assert_eq!(got.skyline.len(), 3);
        // Results must be skyline points, in ascending max-distance order.
        let full = naive_full(&points, &ctx);
        let mut stats = QueryStats::default();
        let mut last = 0.0;
        for &i in &got.skyline {
            assert!(full.contains(i));
            let v = ctx.dist_vector(points[i as usize], &mut stats);
            let s = MaxDistance.score(&v);
            assert!(s >= last - 1e-12);
            last = s;
        }
    }

    #[test]
    fn early_termination_saves_work() {
        let points = pseudorandom(3000, 9);
        let q = pseudorandom(5, 31);
        let ctx = QueryContext::new(&q);
        let idx = RTreeIndex::new(&points);
        let top1 = b2s2_ranked(&idx, &ctx, 1, &WeightedSum::uniform());
        let all = b2s2_ranked(&idx, &ctx, usize::MAX, &WeightedSum::uniform());
        assert!(top1.stats.entries_visited < all.stats.entries_visited);
        assert_eq!(top1.skyline[0], all.skyline[0]);
    }

    #[test]
    fn k_zero_returns_nothing_cheaply() {
        let points = pseudorandom(100, 3);
        let ctx = QueryContext::new(&pseudorandom(3, 4));
        let idx = RTreeIndex::new(&points);
        let r = b2s2_ranked(&idx, &ctx, 0, &WeightedSum::uniform());
        assert!(r.skyline.is_empty());
        assert_eq!(r.stats.entries_visited, 0);
    }
}
