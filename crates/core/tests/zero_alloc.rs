//! Counting-allocator proof of the zero-allocation claim.
//!
//! This integration test binary installs a `#[global_allocator]` that
//! counts every heap allocation, warms a `DistanceScratch` arena on a
//! workload, and then asserts that steady-state queries through the
//! allocation-free core (`naive_sorted_into`) perform **zero** heap
//! allocations — not "few", zero. The scope is the kernel itself: the
//! wrapper entry points (`naive_sorted_kernel` etc.) still materialize
//! one `Vec<u32>` for the returned skyline, which is API surface, not
//! kernel cost, and is covered by the per-query `allocations` counter
//! elsewhere.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on
// allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the `GlobalAlloc::alloc` contract
    // (non-zero-sized layout); forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller passes a pointer previously returned by `alloc`
    // with the same layout, which is exactly `System::dealloc`'s
    // contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: caller upholds the `GlobalAlloc::realloc` contract;
    // forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use ssq_core::{naive_sorted_into, DistanceScratch, QueryContext, QueryStats};
use ssq_geom::Point;

struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn warm_kernel_core_performs_zero_heap_allocations() {
    let mut rng = XorShift(0xDECAF | 1);
    let points: Vec<Point> = (0..500)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect();
    let queries: Vec<Vec<Point>> = (0..6)
        .map(|i| {
            (0..(1 + i % 3) * 2 + 1)
                .map(|_| Point::new(10.0 + rng.next_f64() * 80.0, 10.0 + rng.next_f64() * 80.0))
                .collect()
        })
        .collect();
    // Contexts are built up front: context construction (hull, anchor
    // copies) is per-query-set setup the engine also does once and
    // caches, not per-candidate kernel work.
    let ctxs: Vec<QueryContext> = queries.iter().map(|q| QueryContext::new(q)).collect();

    let mut scratch = DistanceScratch::new();
    let mut stats = QueryStats::default();

    // Warm-up: grow the arena to the workload's widest shape.
    for ctx in &ctxs {
        naive_sorted_into(&points, ctx, &mut scratch, &mut stats);
    }

    // Steady state: three full passes, zero heap traffic allowed.
    let before = heap_allocs();
    let mut total = 0usize;
    for _ in 0..3 {
        for ctx in &ctxs {
            total += naive_sorted_into(&points, ctx, &mut scratch, &mut stats);
        }
    }
    let after = heap_allocs();
    assert!(total > 0, "queries must produce skylines");
    assert_eq!(
        after - before,
        0,
        "warm kernel core must not touch the heap ({} allocations in {} queries)",
        after - before,
        ctxs.len() * 3
    );
    assert_eq!(
        scratch.take_allocations(),
        0,
        "arena must not regrow when warm"
    );
}
