//! Property test: the scratch-arena kernel paths are byte-identical to
//! the scalar paths.
//!
//! The kernels compute dominance on squared Euclidean distances
//! (monotone, so the dominance relation is unchanged — see
//! `ssq_geom::kernel`), reuse one `DistanceScratch` arena across every
//! query, and defer all `sqrt` calls. None of that may change a single
//! skyline id. This test sweeps uniform and clustered datasets crossed
//! with 1, 3, and 8 query anchors and asserts, for every cell:
//!
//! - `naive_sorted_kernel == naive_sorted == naive_full` (oracle),
//! - `vs2_kernel == vs2_with(Safe, None)`,
//! - `b2s2_kernel == b2s2`,
//!
//! with the shared arena carried warm from one query to the next, so any
//! cross-query state leak in the arena would also surface here. Every
//! kernel cell runs twice — once pinned to the scalar tile kernels via
//! [`simd::set_force_scalar`] and once under the detected SIMD dispatch
//! — and the two runs must return **bit-identical** skyline ids.
//! Tile-remainder sizes (`n ≡ 0..7 mod` the lane width) and the
//! dispatch-level dominance masks (vs the per-pair scalar
//! [`kernel::dominates`], signed zeros and exact ties included) get
//! their own sweeps below.

use std::sync::Mutex;

use ssq_core::{
    b2s2, b2s2_kernel, naive_full, naive_sorted, naive_sorted_kernel, vs2_kernel, vs2_with,
    DistanceScratch, QueryContext, RTreeIndex, VoronoiIndex, VsExpansion,
};
use ssq_geom::kernel;
use ssq_geom::simd::{self, Lane4, LANES};
use ssq_geom::Point;

/// [`simd::set_force_scalar`] is process-global, so tests that toggle it
/// must not interleave; they serialize on this lock.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn dispatch_guard() -> std::sync::MutexGuard<'static, ()> {
    DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn uniform(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect()
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = XorShift(seed | 1);
    let centers: Vec<Point> = (0..4)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % centers.len()];
            Point::new(
                c.x + (rng.next_f64() - 0.5) * 8.0,
                c.y + (rng.next_f64() - 0.5) * 8.0,
            )
        })
        .collect()
}

fn anchors(k: usize, rng: &mut XorShift) -> Vec<Point> {
    (0..k)
        .map(|_| Point::new(10.0 + rng.next_f64() * 80.0, 10.0 + rng.next_f64() * 80.0))
        .collect()
}

#[test]
fn kernel_paths_match_scalar_paths_exactly() {
    let _guard = dispatch_guard();
    let datasets = [
        ("uniform", uniform(400, 0xA11CE)),
        ("clustered", clustered(400, 0xB0B)),
    ];
    // One shared arena across every dataset, anchor count, and trial:
    // equivalence must hold with the arena warm, not just freshly built.
    let mut scratch = DistanceScratch::new();
    for (shape, points) in &datasets {
        let rtree = RTreeIndex::new(points);
        let voronoi = VoronoiIndex::new(points).expect("distinct points");
        let mut rng = XorShift(0xC0FFEE ^ points.len() as u64);
        for k in [1usize, 3, 8] {
            for trial in 0..4 {
                let q = anchors(k, &mut rng);
                let ctx = QueryContext::new(&q);
                let tag = format!("{shape}/k={k}/trial={trial}");

                let oracle = naive_full(points, &ctx).skyline;
                let scalar_naive = naive_sorted(points, &ctx);
                assert_eq!(
                    scalar_naive.skyline, oracle,
                    "scalar naive vs oracle [{tag}]"
                );

                // Every kernel runs under both tile dispatches; the
                // skyline ids must be bit-identical across them.
                let mut per_mode: Vec<[Vec<u32>; 3]> = Vec::with_capacity(2);
                for forced in [true, false] {
                    simd::set_force_scalar(forced);
                    let mode = if forced { "forced-scalar" } else { "detected" };

                    let kern_naive = naive_sorted_kernel(points, &ctx, &mut scratch);
                    assert_eq!(
                        kern_naive.skyline, oracle,
                        "kernel naive ({mode}) vs oracle [{tag}]"
                    );

                    let scalar_vs2 = vs2_with(&voronoi, &ctx, VsExpansion::Safe, None);
                    let kern_vs2 = vs2_kernel(&voronoi, &ctx, &mut scratch);
                    assert_eq!(
                        kern_vs2.skyline, scalar_vs2.skyline,
                        "vs2 kernel ({mode}) vs scalar [{tag}]"
                    );
                    assert_eq!(
                        kern_vs2.skyline, oracle,
                        "vs2 kernel ({mode}) vs oracle [{tag}]"
                    );

                    let scalar_b2s2 = b2s2(&rtree, &ctx);
                    let kern_b2s2 = b2s2_kernel(&rtree, &ctx, &mut scratch);
                    assert_eq!(
                        kern_b2s2.skyline, scalar_b2s2.skyline,
                        "b2s2 kernel ({mode}) vs scalar [{tag}]"
                    );
                    assert_eq!(
                        kern_b2s2.skyline, oracle,
                        "b2s2 kernel ({mode}) vs oracle [{tag}]"
                    );
                    // B²S² kernel keeps true mindist heap keys so its
                    // traversal mirrors the scalar branch-and-bound
                    // exactly, counters included.
                    assert_eq!(
                        kern_b2s2.stats.node_accesses, scalar_b2s2.stats.node_accesses,
                        "b2s2 node accesses ({mode}) [{tag}]"
                    );
                    assert_eq!(
                        kern_b2s2.stats.points_examined, scalar_b2s2.stats.points_examined,
                        "b2s2 points examined ({mode}) [{tag}]"
                    );
                    per_mode.push([kern_naive.skyline, kern_vs2.skyline, kern_b2s2.skyline]);
                }
                simd::set_force_scalar(false);
                assert_eq!(
                    per_mode[0], per_mode[1],
                    "forced-scalar and detected dispatches disagree [{tag}]"
                );
            }
        }
    }
}

#[test]
fn tile_remainders_match_the_oracle_in_both_dispatch_modes() {
    let _guard = dispatch_guard();
    let datasets = [
        ("uniform", uniform(407, 0x5EED)),
        ("clustered", clustered(407, 0x7A11)),
    ];
    let mut scratch = DistanceScratch::new();
    let mut rng = XorShift(0xD15B);
    for (shape, points) in &datasets {
        // n = 400..=407 covers every remainder 0..7 mod the lane width
        // twice over (LANES = 4), so both the full-tile and every padded
        // tail shape hit the fill, screen, and sweep kernels.
        for n in 400..=points.len() {
            let pts = &points[..n];
            for k in [1usize, 3, 8] {
                let q = anchors(k, &mut rng);
                let ctx = QueryContext::new(&q);
                let tag = format!("{shape}/n={n}/k={k}");
                let oracle = naive_full(pts, &ctx).skyline;
                let mut per_mode: Vec<Vec<u32>> = Vec::with_capacity(2);
                for forced in [true, false] {
                    simd::set_force_scalar(forced);
                    let mode = if forced { "forced-scalar" } else { "detected" };
                    let kern = naive_sorted_kernel(pts, &ctx, &mut scratch);
                    assert_eq!(
                        kern.skyline, oracle,
                        "kernel naive ({mode}) vs oracle [{tag}]"
                    );
                    per_mode.push(kern.skyline);
                }
                simd::set_force_scalar(false);
                assert_eq!(
                    per_mode[0], per_mode[1],
                    "dispatch modes disagree on a tile remainder [{tag}]"
                );
            }
        }
    }
}

#[test]
fn dominance_masks_agree_with_the_per_pair_kernel() {
    // Every available dispatch (explicit tables — no global toggle, so
    // no lock) must produce masks that agree bit-for-bit with the
    // scalar per-pair predicates. Values come from a tiny palette that
    // includes both signed zeros, so exact ties and ±0.0 comparisons
    // occur constantly instead of never.
    let palette = [0.0f64, -0.0, 1.0, 2.0, 3.0];
    let mut rng = XorShift(0x3A5C);
    let pick = |rng: &mut XorShift| palette[(rng.next_f64() * 5.0) as usize % 5];
    for width in [1usize, 2, 3, 5, 8] {
        for _trial in 0..100 {
            let rows: Vec<Vec<f64>> = (0..LANES)
                .map(|_| (0..width).map(|_| pick(&mut rng)).collect())
                .collect();
            let rf: Vec<f64> = (0..width).map(|_| pick(&mut rng)).collect();
            let tile: Vec<Lane4> = (0..width)
                .map(|j| Lane4([rows[0][j], rows[1][j], rows[2][j], rows[3][j]]))
                .collect();
            for d in simd::available_dispatches() {
                let name = d.path().name();
                let dominated = d.dominated_by_ref(&rf, &tile);
                let dominators = d.dominators_of(&rf, &tile);
                let below = d.all_lt(&rf, &tile);
                for (l, row) in rows.iter().enumerate() {
                    assert_eq!(
                        (dominated >> l) & 1 == 1,
                        kernel::dominates(&rf, row),
                        "dominated_by_ref[{name}] lane {l}: rf={rf:?} row={row:?}"
                    );
                    assert_eq!(
                        (dominators >> l) & 1 == 1,
                        kernel::dominates(row, &rf),
                        "dominators_of[{name}] lane {l}: rf={rf:?} row={row:?}"
                    );
                    assert_eq!(
                        (below >> l) & 1 == 1,
                        row.iter().zip(&rf).all(|(a, b)| a < b),
                        "all_lt[{name}] lane {l}: rf={rf:?} row={row:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn warm_kernel_allocates_less_than_scalar() {
    let points = uniform(600, 0xFEED);
    let mut rng = XorShift(7);
    let mut scratch = DistanceScratch::new();
    for k in [1usize, 3, 8] {
        let mut scalar_allocs = 0u64;
        let mut kernel_allocs = 0u64;
        for trial in 0..3 {
            let ctx = QueryContext::new(&anchors(k, &mut rng));
            let s = naive_sorted(&points, &ctx);
            let kr = naive_sorted_kernel(&points, &ctx, &mut scratch);
            assert_eq!(s.skyline, kr.skyline);
            // Trial 0 may grow a cold arena; steady state is what the
            // arena is for.
            if trial > 0 {
                scalar_allocs += s.stats.allocations;
                kernel_allocs += kr.stats.allocations;
            }
        }
        assert!(
            kernel_allocs * 2 <= scalar_allocs,
            "k={k}: warm kernel should allocate at least 2x less \
             (scalar {scalar_allocs} vs kernel {kernel_allocs})"
        );
    }
}
