//! Property test: the scratch-arena kernel paths are byte-identical to
//! the scalar paths.
//!
//! The kernels compute dominance on squared Euclidean distances
//! (monotone, so the dominance relation is unchanged — see
//! `ssq_geom::kernel`), reuse one `DistanceScratch` arena across every
//! query, and defer all `sqrt` calls. None of that may change a single
//! skyline id. This test sweeps uniform and clustered datasets crossed
//! with 1, 3, and 8 query anchors and asserts, for every cell:
//!
//! - `naive_sorted_kernel == naive_sorted == naive_full` (oracle),
//! - `vs2_kernel == vs2_with(Safe, None)`,
//! - `b2s2_kernel == b2s2`,
//!
//! with the shared arena carried warm from one query to the next, so any
//! cross-query state leak in the arena would also surface here.

use ssq_core::{
    b2s2, b2s2_kernel, naive_full, naive_sorted, naive_sorted_kernel, vs2_kernel, vs2_with,
    DistanceScratch, QueryContext, RTreeIndex, VoronoiIndex, VsExpansion,
};
use ssq_geom::Point;

struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn uniform(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect()
}

fn clustered(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = XorShift(seed | 1);
    let centers: Vec<Point> = (0..4)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % centers.len()];
            Point::new(
                c.x + (rng.next_f64() - 0.5) * 8.0,
                c.y + (rng.next_f64() - 0.5) * 8.0,
            )
        })
        .collect()
}

fn anchors(k: usize, rng: &mut XorShift) -> Vec<Point> {
    (0..k)
        .map(|_| Point::new(10.0 + rng.next_f64() * 80.0, 10.0 + rng.next_f64() * 80.0))
        .collect()
}

#[test]
fn kernel_paths_match_scalar_paths_exactly() {
    let datasets = [
        ("uniform", uniform(400, 0xA11CE)),
        ("clustered", clustered(400, 0xB0B)),
    ];
    // One shared arena across every dataset, anchor count, and trial:
    // equivalence must hold with the arena warm, not just freshly built.
    let mut scratch = DistanceScratch::new();
    for (shape, points) in &datasets {
        let rtree = RTreeIndex::new(points);
        let voronoi = VoronoiIndex::new(points).expect("distinct points");
        let mut rng = XorShift(0xC0FFEE ^ points.len() as u64);
        for k in [1usize, 3, 8] {
            for trial in 0..4 {
                let q = anchors(k, &mut rng);
                let ctx = QueryContext::new(&q);
                let tag = format!("{shape}/k={k}/trial={trial}");

                let oracle = naive_full(points, &ctx).skyline;
                let scalar_naive = naive_sorted(points, &ctx);
                assert_eq!(
                    scalar_naive.skyline, oracle,
                    "scalar naive vs oracle [{tag}]"
                );

                let kern_naive = naive_sorted_kernel(points, &ctx, &mut scratch);
                assert_eq!(kern_naive.skyline, oracle, "kernel naive vs oracle [{tag}]");

                let scalar_vs2 = vs2_with(&voronoi, &ctx, VsExpansion::Safe, None);
                let kern_vs2 = vs2_kernel(&voronoi, &ctx, &mut scratch);
                assert_eq!(
                    kern_vs2.skyline, scalar_vs2.skyline,
                    "vs2 kernel vs scalar [{tag}]"
                );
                assert_eq!(kern_vs2.skyline, oracle, "vs2 kernel vs oracle [{tag}]");

                let scalar_b2s2 = b2s2(&rtree, &ctx);
                let kern_b2s2 = b2s2_kernel(&rtree, &ctx, &mut scratch);
                assert_eq!(
                    kern_b2s2.skyline, scalar_b2s2.skyline,
                    "b2s2 kernel vs scalar [{tag}]"
                );
                assert_eq!(kern_b2s2.skyline, oracle, "b2s2 kernel vs oracle [{tag}]");
                // B²S² kernel keeps true mindist heap keys so its traversal
                // mirrors the scalar branch-and-bound exactly, counters
                // included.
                assert_eq!(
                    kern_b2s2.stats.node_accesses, scalar_b2s2.stats.node_accesses,
                    "b2s2 node accesses [{tag}]"
                );
                assert_eq!(
                    kern_b2s2.stats.points_examined, scalar_b2s2.stats.points_examined,
                    "b2s2 points examined [{tag}]"
                );
            }
        }
    }
}

#[test]
fn warm_kernel_allocates_less_than_scalar() {
    let points = uniform(600, 0xFEED);
    let mut rng = XorShift(7);
    let mut scratch = DistanceScratch::new();
    for k in [1usize, 3, 8] {
        let mut scalar_allocs = 0u64;
        let mut kernel_allocs = 0u64;
        for trial in 0..3 {
            let ctx = QueryContext::new(&anchors(k, &mut rng));
            let s = naive_sorted(&points, &ctx);
            let kr = naive_sorted_kernel(&points, &ctx, &mut scratch);
            assert_eq!(s.skyline, kr.skyline);
            // Trial 0 may grow a cold arena; steady state is what the
            // arena is for.
            if trial > 0 {
                scalar_allocs += s.stats.allocations;
                kernel_allocs += kr.stats.allocations;
            }
        }
        assert!(
            kernel_allocs * 2 <= scalar_allocs,
            "k={k}: warm kernel should allocate at least 2x less \
             (scalar {scalar_allocs} vs kernel {kernel_allocs})"
        );
    }
}
