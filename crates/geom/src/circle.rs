//! Circles — the dominance circles `C(q, D(q, p))` of the paper.
//!
//! For a data point `p` and query point `q`, every point strictly inside
//! `C(q, D(q, p))` is closer to `q` than `p` is. The *dominator region* of
//! `p` is the intersection of these circles over all (hull-vertex) query
//! points, and the *dominance region* is the intersection of their
//! exteriors (paper §2.2, Fig. 2). `SR(p, Q)` — the union of the circles —
//! bounds where any point dominating **or dominated-comparison-relevant**
//! candidate may live, and its MBR is what B²S² intersects into its pruning
//! rectangle `B`.

use crate::point::Point;
use crate::rect::Rect;

/// A circle with center and radius.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Circle {
    /// Center.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Panics in debug builds on a negative radius.
    pub fn new(center: Point, radius: f64) -> Circle {
        debug_assert!(radius >= 0.0, "negative circle radius {radius}");
        Circle { center, radius }
    }

    /// The dominance circle `C(q, D(q, p))` centered at query point `q`
    /// through data point `p`.
    pub fn through(q: Point, p: Point) -> Circle {
        Circle::new(q, q.distance(p))
    }

    /// `true` when `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// `true` when `p` lies strictly inside the circle.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        self.center.distance_sq(p) < self.radius * self.radius
    }

    /// The circle's minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        Rect {
            min: Point::new(self.center.x - self.radius, self.center.y - self.radius),
            max: Point::new(self.center.x + self.radius, self.center.y + self.radius),
        }
    }

    /// `true` when the circle and rectangle share at least one point.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        !r.is_empty() && r.mindist_sq(self.center) <= self.radius * self.radius
    }

    /// `true` when the rectangle lies entirely inside the circle.
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.is_empty() || r.maxdist_sq(self.center) <= self.radius * self.radius
    }

    /// Area of the circle.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

/// The MBR of the *search region* `SR(p, Q) = ∪_{q ∈ anchors} C(q, D(q, p))`
/// (paper §4.1).
///
/// `anchors` should be the convex-hull vertices `CHv(Q)` — by Theorem 2 the
/// interior query points neither shrink nor grow the dominance geometry.
/// Every skyline point not yet discovered lies inside this box, because it
/// must beat `p` on at least one anchor distance and hence sit inside at
/// least one of the circles.
pub fn search_region_mbr(p: Point, anchors: &[Point]) -> Rect {
    anchors
        .iter()
        .map(|&q| Circle::through(q, p).mbr())
        .fold(Rect::EMPTY, |acc, r| acc.union(&r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_has_right_radius() {
        let c = Circle::through(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(c.radius, 5.0);
        assert!(c.contains(Point::new(3.0, 4.0)));
        assert!(!c.contains_strict(Point::new(3.0, 4.0)));
    }

    #[test]
    fn containment() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(c.contains(Point::new(3.0, 1.0))); // on boundary
        assert!(!c.contains(Point::new(3.1, 1.0)));
    }

    #[test]
    fn mbr_is_tight() {
        let c = Circle::new(Point::new(2.0, -1.0), 3.0);
        let m = c.mbr();
        assert_eq!(m.min, Point::new(-1.0, -4.0));
        assert_eq!(m.max, Point::new(5.0, 2.0));
    }

    #[test]
    fn rect_intersection_tests() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let far = Rect::from_corners(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let overlapping = Rect::from_corners(Point::new(0.5, -0.5), Point::new(2.0, 0.5));
        let inside = Rect::from_corners(Point::new(-0.5, -0.5), Point::new(0.5, 0.5));
        assert!(!c.intersects_rect(&far));
        assert!(c.intersects_rect(&overlapping));
        assert!(c.intersects_rect(&inside));
        assert!(c.contains_rect(&inside));
        assert!(!c.contains_rect(&overlapping));
    }

    #[test]
    fn corner_case_rect_outside_but_mbr_overlapping() {
        // Rect overlaps the circle's MBR but not the circle itself
        // (sits in the MBR corner outside the disc).
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let corner = Rect::from_corners(Point::new(0.8, 0.8), Point::new(0.95, 0.95));
        assert!(c.mbr().intersects(&corner));
        assert!(!c.intersects_rect(&corner));
    }

    #[test]
    fn search_region_mbr_covers_each_circle() {
        let p = Point::new(1.0, 1.0);
        let anchors = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let sr = search_region_mbr(p, &anchors);
        for &q in &anchors {
            assert!(sr.contains_rect(&Circle::through(q, p).mbr()));
        }
        // p itself is always inside the search region.
        assert!(sr.contains(p));
    }

    #[test]
    fn search_region_mbr_of_no_anchors_is_empty() {
        assert!(search_region_mbr(Point::new(0.0, 0.0), &[]).is_empty());
    }
}
