//! Convex hull construction.
//!
//! `CH(Q)` — the convex hull of the query points — is the first thing every
//! SSQ algorithm computes (paper Fig. 5 line 1, Fig. 7 line 1): by
//! Theorem 2 only the hull **vertices** `CHv(Q)` influence spatial
//! dominance, so all subsequent distance computations run against the hull
//! vertices instead of the full query set.
//!
//! Two constructions are provided:
//!
//! * [`graham_scan`] — the algorithm the paper itself uses for VS²/VCS²
//!   (§7: "we used the Graham Scan algorithm for convex hull computation");
//! * [`monotone_chain`] — Andrew's variant, used as the default
//!   ([`convex_hull`]) because its lexicographic presort makes degeneracy
//!   handling simpler.
//!
//! Both produce identical vertex sets (asserted by unit and property tests)
//! in counter-clockwise order with collinear and duplicate points removed,
//! and both rely on the exact [`crate::predicates::orient2d`] sign, so the
//! output is correct for any finite input.

use crate::convex::ConvexPolygon;
use crate::point::Point;
use crate::predicates::orient2d_sign;

/// Computes the convex hull of `points` with the default algorithm
/// (Andrew's monotone chain).
///
/// Returns the hull as a [`ConvexPolygon`] whose vertices are in
/// counter-clockwise order, starting from the lexicographically smallest
/// point, with no duplicate or collinear vertices. Degenerate inputs yield
/// degenerate hulls: a single vertex for coincident points, two vertices for
/// collinear point sets, and an empty polygon for no input.
pub fn convex_hull(points: &[Point]) -> ConvexPolygon {
    monotone_chain(points)
}

/// Andrew's monotone-chain convex hull, `O(n log n)`.
pub fn monotone_chain(points: &[Point]) -> ConvexPolygon {
    let mut scratch = HullScratch::new();
    let hull = monotone_chain_into(points, &mut scratch).to_vec();
    ConvexPolygon::from_ccw_vertices(hull)
}

/// Reusable buffers for [`monotone_chain_into`].
///
/// A warm scratch makes repeated hull computations allocation-free: both
/// internal buffers are cleared, not shrunk, between calls.
#[derive(Debug, Default)]
pub struct HullScratch {
    pts: Vec<Point>,
    chain: Vec<Point>,
}

impl HullScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> HullScratch {
        HullScratch::default()
    }
}

/// Andrew's monotone chain into caller-provided scratch buffers.
///
/// Exactly [`monotone_chain`]'s hull — same CCW order starting from the
/// lexicographic minimum, same degeneracy handling — but the returned
/// slice borrows `scratch`, so a warm scratch makes the call
/// allocation-free. This is the single implementation both entry points
/// share; hot paths (the skyline-diagram probe) call it directly.
pub fn monotone_chain_into<'s>(points: &[Point], scratch: &'s mut HullScratch) -> &'s [Point] {
    scratch.pts.clear();
    scratch.pts.extend_from_slice(points);
    scratch.pts.sort_by(Point::lex_cmp);
    scratch.pts.dedup();
    let pts = &scratch.pts;
    let n = pts.len();
    let chain = &mut scratch.chain;
    chain.clear();
    if n <= 2 {
        chain.extend_from_slice(pts);
        return chain;
    }

    // Lower hull then upper hull; non-left turns are popped, so collinear
    // interior points are dropped. Both chains live in `chain`: the lower
    // chain occupies `[0, lower_len)` and is frozen while the upper chain
    // grows past it.
    for &p in pts.iter() {
        while chain.len() >= 2
            && orient2d_sign(chain[chain.len() - 2], chain[chain.len() - 1], p) <= 0
        {
            chain.pop();
        }
        chain.push(p);
    }
    // The last lower-chain vertex (the lexicographic maximum) re-opens the
    // upper chain, so drop it here; the upper chain's own endpoint (the
    // lexicographic minimum, already at index 0) is dropped at the end.
    chain.pop();
    let lower_len = chain.len();
    for &p in pts.iter().rev() {
        while chain.len() >= lower_len + 2
            && orient2d_sign(chain[chain.len() - 2], chain[chain.len() - 1], p) <= 0
        {
            chain.pop();
        }
        chain.push(p);
    }
    chain.pop();
    chain
}

/// Graham-scan convex hull, `O(n log n)` — the construction named in the
/// paper's experimental setup (§7).
pub fn graham_scan(points: &[Point]) -> ConvexPolygon {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(Point::lex_cmp);
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return ConvexPolygon::from_ccw_vertices(pts);
    }

    // Pivot: lowest y, then lowest x.
    let pivot = *pts
        .iter()
        .min_by(|a, b| a.y.total_cmp(&b.y).then(a.x.total_cmp(&b.x)))
        .expect("nonempty");

    // Sort by polar angle around the pivot; break angle ties by distance so
    // that collinear points appear near-to-far and the scan drops the inner
    // ones.
    let mut rest: Vec<Point> = pts.into_iter().filter(|&p| p != pivot).collect();
    rest.sort_by(|&a, &b| match orient2d_sign(pivot, a, b) {
        1 => std::cmp::Ordering::Less,
        -1 => std::cmp::Ordering::Greater,
        _ => pivot.distance_sq(a).total_cmp(&pivot.distance_sq(b)),
    });

    // For the farthest ray (points collinear with the pivot at the maximum
    // angle) the near-to-far order must be reversed so the scan keeps the
    // farthest point; handle it by reversing the trailing collinear run.
    if rest.len() > 1 {
        let last = *rest.last().expect("nonempty");
        let mut i = rest.len() - 1;
        while i > 0 && orient2d_sign(pivot, rest[i - 1], last) == 0 {
            i -= 1;
        }
        // When i == 0 every point is collinear with the pivot; near-to-far
        // order already yields the correct degenerate (segment) hull.
        if i > 0 {
            rest[i..].reverse();
        }
    }

    let mut hull: Vec<Point> = vec![pivot];
    for p in rest {
        while hull.len() >= 2 && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Cleanup for the closing edge: drop trailing vertices collinear with
    // (or right of) the edge back to the pivot.
    while hull.len() >= 3 && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], hull[0]) <= 0
    {
        hull.pop();
    }
    if hull.len() == 2 && hull[0] == hull[1] {
        hull.pop();
    }
    // Rotate so the first vertex is the lexicographic minimum, matching the
    // monotone-chain canonical form.
    let min_idx = hull
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.lex_cmp(b))
        .map(|(i, _)| i)
        .unwrap_or(0);
    hull.rotate_left(min_idx);
    ConvexPolygon::from_ccw_vertices(hull)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn hull_pts(poly: &ConvexPolygon) -> Vec<Point> {
        poly.vertices().to_vec()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(convex_hull(&[]).vertices().len(), 0);
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).vertices(), &[p(1.0, 1.0)]);
        let two = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0)]);
        assert_eq!(two.vertices().len(), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let h = convex_hull(&[p(1.0, 1.0), p(1.0, 1.0), p(1.0, 1.0)]);
        assert_eq!(h.vertices(), &[p(1.0, 1.0)]);
    }

    #[test]
    fn collinear_input_gives_segment() {
        let h = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)]);
        assert_eq!(h.vertices(), &[p(0.0, 0.0), p(3.0, 3.0)]);
    }

    #[test]
    fn square_with_interior_and_edge_points() {
        let pts = [
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0), // interior
            p(2.0, 0.0), // on an edge
            p(0.0, 2.0), // on an edge
        ];
        let h = convex_hull(&pts);
        assert_eq!(
            hull_pts(&h),
            vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]
        );
    }

    #[test]
    fn hull_is_ccw() {
        let pts = [
            p(0.0, 0.0),
            p(5.0, 1.0),
            p(3.0, 6.0),
            p(-1.0, 3.0),
            p(2.0, 2.0),
        ];
        let h = convex_hull(&pts);
        let v = h.vertices();
        for i in 0..v.len() {
            let a = v[i];
            let b = v[(i + 1) % v.len()];
            let c = v[(i + 2) % v.len()];
            assert_eq!(orient2d_sign(a, b, c), 1, "strictly convex CCW turn");
        }
    }

    #[test]
    fn graham_and_monotone_agree() {
        // A grid with many collinear runs — the hard case for both.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let a = hull_pts(&monotone_chain(&pts));
        let b = hull_pts(&graham_scan(&pts));
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn graham_and_monotone_agree_on_pseudorandom_sets() {
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        for trial in 0..50 {
            let n = 3 + (trial % 17);
            let pts: Vec<Point> = (0..n).map(|_| p(next(), next())).collect();
            let a = hull_pts(&monotone_chain(&pts));
            let b = hull_pts(&graham_scan(&pts));
            assert_eq!(a, b, "trial {trial}: {pts:?}");
        }
    }

    #[test]
    fn hull_contains_all_input_points() {
        let pts = [
            p(0.0, 0.0),
            p(5.0, 1.0),
            p(3.0, 6.0),
            p(-1.0, 3.0),
            p(2.0, 2.0),
            p(1.0, 1.0),
        ];
        let h = convex_hull(&pts);
        for &q in &pts {
            assert!(h.contains(q), "{q:?} must be inside hull");
        }
    }

    #[test]
    fn scratch_variant_matches_owned_variant_with_reuse() {
        // One scratch across many inputs, including degenerate ones: the
        // borrowed result must always equal the owned hull.
        let inputs: Vec<Vec<Point>> = vec![
            vec![],
            vec![p(1.0, 1.0)],
            vec![p(1.0, 1.0), p(1.0, 1.0)],
            vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)],
            vec![
                p(0.0, 0.0),
                p(4.0, 0.0),
                p(4.0, 4.0),
                p(0.0, 4.0),
                p(2.0, 2.0),
            ],
            (0..25).map(|i| p((i % 5) as f64, (i / 5) as f64)).collect(),
        ];
        let mut scratch = HullScratch::new();
        for pts in &inputs {
            let owned = hull_pts(&monotone_chain(pts));
            let borrowed = monotone_chain_into(pts, &mut scratch);
            assert_eq!(owned.as_slice(), borrowed, "input {pts:?}");
        }
    }

    #[test]
    fn hull_vertices_are_subset_of_input() {
        let pts = [p(0.0, 0.0), p(5.0, 1.0), p(3.0, 6.0), p(-1.0, 3.0)];
        let h = convex_hull(&pts);
        for v in h.vertices() {
            assert!(pts.contains(v));
        }
    }
}
