//! Lines, segments and half-planes.
//!
//! The spatial-dominance proofs of the paper (§3.2) all hinge on one
//! observation: if `p'` spatially dominates `p`, the perpendicular bisector
//! of segment `p p'` puts **every** query point on `p'`'s side. Half-plane
//! reasoning is therefore the backbone of Theorems 1–3 and of the visible
//! region construction used by VCS² (§5).

use crate::point::Point;

/// An infinite directed line through two points.
///
/// The direction `b - a` gives the line an orientation, so "left of" is
/// well-defined: `side(p) > 0` iff `p` is strictly to the left of the
/// directed line `a → b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    /// First anchor point.
    pub a: Point,
    /// Second anchor point (defines the direction `a → b`).
    pub b: Point,
}

impl Line {
    /// Creates the directed line through `a` and `b`. The two points must be
    /// distinct for the line to be meaningful.
    pub fn new(a: Point, b: Point) -> Line {
        Line { a, b }
    }

    /// The perpendicular bisector of segment `p q`, directed so that `p`
    /// lies strictly to its **left** (for distinct `p`, `q`).
    ///
    /// The bisector's defining property — used throughout §3 of the paper —
    /// is that points on `p`'s side are strictly closer to `p` than to `q`.
    pub fn bisector(p: Point, q: Point) -> Line {
        let mid = p.midpoint(q);
        // Rotating (q - p) by +90° gives a boundary direction d with
        // d × (p - mid) > 0, i.e. p strictly to the left.
        let d = (q - p).perp();
        Line::new(mid, mid + d)
    }

    /// Twice the signed area of triangle `(a, b, p)`; positive when `p` is
    /// strictly left of the directed line.
    #[inline]
    pub fn side(&self, p: Point) -> f64 {
        (self.b - self.a).cross(p - self.a)
    }

    /// The direction vector `b - a`.
    #[inline]
    pub fn direction(&self) -> Point {
        self.b - self.a
    }

    /// Projects `p` orthogonally onto the line.
    pub fn project(&self, p: Point) -> Point {
        let d = self.direction();
        let t = (p - self.a).dot(d) / d.norm_sq();
        self.a + d * t
    }

    /// Euclidean distance from `p` to the line.
    pub fn distance(&self, p: Point) -> f64 {
        self.side(p).abs() / self.direction().norm()
    }

    /// Intersection point with `other`, or `None` when (near-)parallel.
    pub fn intersect(&self, other: &Line) -> Option<Point> {
        let d1 = self.direction();
        let d2 = other.direction();
        let denom = d1.cross(d2);
        if denom == 0.0 {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        Some(self.a + d1 * t)
    }
}

/// A closed line segment between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The supporting line, directed `a → b`.
    pub fn line(&self) -> Line {
        Line::new(self.a, self.b)
    }

    /// The closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// `true` when the two closed segments share at least one point.
    ///
    /// Handles all degeneracies (collinear overlap, shared endpoints,
    /// zero-length segments) using exact sign tests via
    /// [`crate::predicates::orient2d`].
    pub fn intersects(&self, other: &Segment) -> bool {
        use crate::predicates::orient2d_sign;
        let d1 = orient2d_sign(other.a, other.b, self.a);
        let d2 = orient2d_sign(other.a, other.b, self.b);
        let d3 = orient2d_sign(self.a, self.b, other.a);
        let d4 = orient2d_sign(self.a, self.b, other.b);
        if d1 != d2 && d3 != d4 && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
            return true;
        }
        // Collinear / endpoint-touching cases.
        let on = |s: &Segment, p: Point| {
            orient2d_sign(s.a, s.b, p) == 0
                && p.x >= s.a.x.min(s.b.x)
                && p.x <= s.a.x.max(s.b.x)
                && p.y >= s.a.y.min(s.b.y)
                && p.y <= s.a.y.max(s.b.y)
        };
        on(self, other.a)
            || on(self, other.b)
            || on(other, self.a)
            || on(other, self.b)
            || (d1 != d2 && d3 != d4)
    }

    /// Intersection point of two properly crossing segments, or `None`
    /// when they do not cross or are collinear.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let d1 = self.b - self.a;
        let d2 = other.b - other.a;
        let denom = d1.cross(d2);
        if denom == 0.0 {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        let u = (other.a - self.a).cross(d1) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.a + d1 * t)
        } else {
            None
        }
    }
}

/// A closed half-plane: the set of points `p` with `line.side(p) >= 0`,
/// i.e. everything on or to the **left** of the directed boundary line.
#[derive(Clone, Copy, Debug)]
pub struct HalfPlane {
    /// The directed boundary line; the half-plane is its left side.
    pub boundary: Line,
}

impl HalfPlane {
    /// The half-plane left of the directed line `a → b`.
    pub fn left_of(a: Point, b: Point) -> HalfPlane {
        HalfPlane {
            boundary: Line::new(a, b),
        }
    }

    /// The half-plane of points (weakly) closer to `p` than to `q`
    /// — bounded by the perpendicular bisector of `p q`.
    pub fn closer_to(p: Point, q: Point) -> HalfPlane {
        HalfPlane {
            boundary: Line::bisector(p, q),
        }
    }

    /// `true` when `pt` lies in the closed half-plane.
    #[inline]
    pub fn contains(&self, pt: Point) -> bool {
        self.boundary.side(pt) >= 0.0
    }

    /// `true` when `pt` lies strictly inside the half-plane.
    #[inline]
    pub fn contains_strict(&self, pt: Point) -> bool {
        self.boundary.side(pt) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_sign() {
        let l = Line::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(l.side(Point::new(0.5, 1.0)) > 0.0); // left (above)
        assert!(l.side(Point::new(0.5, -1.0)) < 0.0); // right (below)
        assert_eq!(l.side(Point::new(2.0, 0.0)), 0.0); // on line
    }

    #[test]
    fn bisector_separates_correctly() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 0.0);
        let bis = Line::bisector(p, q);
        // p left, q right
        assert!(bis.side(p) > 0.0);
        assert!(bis.side(q) < 0.0);
        // midpoint on the line
        assert!(bis.side(Point::new(2.0, 5.0)).abs() < 1e-12);
        // the defining property: left side is closer to p
        let probe = Point::new(1.0, 3.0);
        assert!(bis.side(probe) > 0.0);
        assert!(probe.distance(p) < probe.distance(q));
    }

    #[test]
    fn closer_to_halfplane_matches_distances() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(-3.0, 5.0);
        let h = HalfPlane::closer_to(p, q);
        for probe in [
            Point::new(0.0, 0.0),
            Point::new(10.0, -4.0),
            Point::new(-5.0, 8.0),
            Point::new(2.0, 2.0),
        ] {
            let closer = probe.distance(p) < probe.distance(q);
            assert_eq!(h.contains_strict(probe), closer, "probe {probe:?}");
        }
    }

    #[test]
    fn project_and_distance() {
        let l = Line::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(l.project(Point::new(3.0, 7.0)), Point::new(3.0, 0.0));
        assert_eq!(l.distance(Point::new(3.0, 7.0)), 7.0);
    }

    #[test]
    fn line_intersection() {
        let l1 = Line::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let l2 = Line::new(Point::new(0.0, 2.0), Point::new(1.0, 1.0));
        let x = l1.intersect(&l2).unwrap();
        assert!(x.approx_eq(Point::new(1.0, 1.0), 1e-12));
        // Parallel lines don't intersect.
        let l3 = Line::new(Point::new(0.0, 1.0), Point::new(1.0, 2.0));
        assert!(l1.intersect(&l3).is_none());
    }

    #[test]
    fn segment_closest_point_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        assert_eq!(s.closest_point(Point::new(2.0, 3.0)), Point::new(2.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-2.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point::new(9.0, -1.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn segment_intersection_cases() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let s2 = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(s1.intersects(&s2));
        let x = s1.intersection_point(&s2).unwrap();
        assert!(x.approx_eq(Point::new(2.0, 2.0), 1e-12));

        // Disjoint
        let s3 = Segment::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(!s1.intersects(&s3));
        assert!(s1.intersection_point(&s3).is_none());

        // Shared endpoint
        let s4 = Segment::new(Point::new(4.0, 4.0), Point::new(8.0, 0.0));
        assert!(s1.intersects(&s4));

        // Collinear overlap
        let s5 = Segment::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        assert!(s1.intersects(&s5));

        // Collinear disjoint
        let s6 = Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(!s1.intersects(&s6));

        // T-junction: endpoint of one in the interior of the other
        let s7 = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, -5.0));
        assert!(s1.intersects(&s7));
    }

    #[test]
    fn degenerate_segment() {
        let pt = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(pt.intersects(&s));
        assert_eq!(pt.closest_point(Point::new(5.0, 5.0)), Point::new(1.0, 1.0));
    }
}
