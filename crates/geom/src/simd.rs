//! Data-parallel kernels over lane-aligned distance tiles — the SIMD
//! layer under [`kernel`](crate::kernel).
//!
//! # Tile layout
//!
//! The scratch arenas in `ssq-core` store candidate distance rows as
//! **AoSoA tiles**: a tile covers [`LANES`] consecutive rows, and within
//! a tile storage is *anchor-major* — one 32-byte-aligned [`Lane4`] per
//! anchor holding that anchor's distance for each of the tile's rows.
//! Row `r`'s distance to anchor `j` therefore lives at
//! `tiles[(r / LANES) * width + j].0[r % LANES]`, and a single aligned
//! vector load fetches four candidates' distances to one anchor — the
//! access pattern every kernel below is built on.
//!
//! A tile whose trailing lanes hold no real row is padded with `+inf`
//! ([`Lane4::PAD`]). Padding is *neutral* in every kernel here:
//!
//! * a pad lane never **dominates** anything (`+inf ≤ x` fails on the
//!   first anchor), so [`Dispatch::dominators_of`] and
//!   [`Dispatch::all_lt`] never report a pad;
//! * a pad lane is trivially *dominated by* every real row, so bits
//!   reported by [`Dispatch::dominated_by_ref`] for pad lanes are
//!   meaningless — callers own a live-lane mask and must AND it in
//!   (the arena's sweep never reads pad lanes back, so the stray bits
//!   are harmless there).
//!
//! # Dispatch
//!
//! Four implementations of each kernel exist:
//!
//! * **scalar** — per-lane early-exit loops, the literal transcription
//!   of [`kernel::dominates`](crate::kernel::dominates); the oracle the
//!   others are tested against, and the path
//!   `SSQ_FORCE_SCALAR=1` forces.
//! * **tiled** — portable straight-line lane loops with no early exits,
//!   written so LLVM autovectorizes them; the default off x86-64.
//! * **sse2** — explicit `core::arch::x86_64` f64x2 intrinsics
//!   (baseline on every x86-64, no detection needed).
//! * **avx2** — explicit f64x4 intrinsics behind
//!   `is_x86_feature_detected!("avx2")`.
//!
//! The selected [`Dispatch`] table is resolved once per process and
//! cached in a `OnceLock`; [`dispatch`] additionally honours an
//! in-process override ([`set_force_scalar`]) so benches and tests can
//! compare paths without re-exec'ing. All four paths produce
//! **bit-identical** results: squared distances are computed as
//! `dx·dx + dy·dy` (two roundings, one per product, then one add) in
//! every implementation, sums accumulate in anchor order, and the IEEE
//! comparisons underlying the masks are total on the finite,
//! non-NaN distances these kernels are fed.
//!
//! # Why lane compares preserve dominance
//!
//! Dominance is componentwise: row `a` dominates row `b` iff
//! `a[j] ≤ b[j]` for every anchor `j` and `a[j] < b[j]` for at least
//! one. The mask kernels evaluate exactly that — an AND-accumulated
//! `≤` mask and an OR-accumulated `<` mask per lane — so a survivor
//! bitmask over four rows is the same four answers
//! [`kernel::dominates`](crate::kernel::dominates) gives one at a
//! time. Squared distances keep the relation unchanged (`x ↦ x²` is
//! strictly increasing on non-negative reals — see
//! [`kernel`](crate::kernel)).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::point::Point;

/// Rows per tile: the f64 lane count of a 256-bit vector.
pub const LANES: usize = 4;

/// One anchor's distances for the four rows of a tile, aligned for
/// `_mm256_load_pd`.
#[repr(C, align(32))]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lane4(pub [f64; 4]);

impl Lane4 {
    /// The padding value for tile lanes holding no real row: `+inf`
    /// never dominates (see the module docs).
    pub const PAD: Lane4 = Lane4([f64::INFINITY; 4]);

    /// A tile lane with all four entries equal to `v`.
    pub const fn splat(v: f64) -> Lane4 {
        Lane4([v; 4])
    }
}

/// The bitmask of lanes that hold real rows when `live` rows remain
/// (`live >= LANES` means the whole tile is real).
#[inline]
pub const fn live_lane_mask(live: usize) -> u8 {
    if live >= LANES {
        0xF
    } else {
        (1u8 << live) - 1
    }
}

/// Which kernel implementation a process dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Per-lane early-exit loops (forced by `SSQ_FORCE_SCALAR=1`).
    Scalar,
    /// Portable autovectorizable lane loops (the non-x86-64 default).
    Tiled,
    /// Explicit f64x2 intrinsics (x86-64 baseline).
    Sse2,
    /// Explicit f64x4 intrinsics (runtime-detected).
    Avx2,
}

impl KernelPath {
    /// The lowercase name used in metrics, bench JSON, and logs.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Tiled => "tiled",
            KernelPath::Sse2 => "sse2",
            KernelPath::Avx2 => "avx2",
        }
    }
}

type FillTileFn = fn(&[Point; LANES], &[Point], &mut [Lane4], &mut [f64; LANES]);
type MaskFn = fn(&[f64], &[Lane4]) -> u8;

/// One implementation of every tile kernel, selected once per process.
///
/// All entry points take `tile` as one tile's anchor-major lanes
/// (`tile.len()` = the anchor count = the length of the row argument).
pub struct Dispatch {
    path: KernelPath,
    fill_tile: FillTileFn,
    dominated_by_ref: MaskFn,
    dominators_of: MaskFn,
    all_lt: MaskFn,
}

impl Dispatch {
    /// Which implementation this table holds.
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// Fills one tile: writes the **squared** Euclidean distances from
    /// the four points of `pts` to each anchor into `tile` (one
    /// [`Lane4`] per anchor) and each point's distance sum into `keys`.
    #[inline]
    pub fn fill_tile(
        &self,
        pts: &[Point; LANES],
        anchors: &[Point],
        tile: &mut [Lane4],
        keys: &mut [f64; LANES],
    ) {
        debug_assert_eq!(anchors.len(), tile.len(), "tile width mismatch");
        (self.fill_tile)(pts, anchors, tile, keys)
    }

    /// Bitmask of tile lanes **dominated by** the reference row `rf`
    /// (bit `l` set ⇔ `rf` dominates row lane `l`). Pad lanes may
    /// report garbage — AND with [`live_lane_mask`] when the tile has
    /// pads the caller cares about.
    #[inline]
    pub fn dominated_by_ref(&self, rf: &[f64], tile: &[Lane4]) -> u8 {
        debug_assert_eq!(rf.len(), tile.len(), "tile width mismatch");
        (self.dominated_by_ref)(rf, tile)
    }

    /// Bitmask of tile lanes that **dominate** the candidate row
    /// `cand`. Pad lanes never set a bit (`+inf` dominates nothing).
    #[inline]
    pub fn dominators_of(&self, cand: &[f64], tile: &[Lane4]) -> u8 {
        debug_assert_eq!(cand.len(), tile.len(), "tile width mismatch");
        (self.dominators_of)(cand, tile)
    }

    /// Bitmask of tile lanes strictly below `bounds` on **every**
    /// anchor — the R-tree rectangle screen (`mindist² > d²` for all
    /// anchors ⇔ the row's lane is `<` the bound everywhere). Pad
    /// lanes never set a bit.
    #[inline]
    pub fn all_lt(&self, bounds: &[f64], tile: &[Lane4]) -> u8 {
        debug_assert_eq!(bounds.len(), tile.len(), "tile width mismatch");
        (self.all_lt)(bounds, tile)
    }
}

// ---------------------------------------------------------------------
// Scalar path: per-lane early-exit loops, the oracle.
// ---------------------------------------------------------------------

// ssq-analyze: deny-alloc
fn fill_tile_scalar(
    pts: &[Point; LANES],
    anchors: &[Point],
    tile: &mut [Lane4],
    keys: &mut [f64; LANES],
) {
    *keys = [0.0; LANES];
    for (j, &q) in anchors.iter().enumerate() {
        let mut lanes = [0.0; LANES];
        for (l, p) in pts.iter().enumerate() {
            let dx = p.x - q.x;
            let dy = p.y - q.y;
            let d = dx * dx + dy * dy;
            lanes[l] = d;
            keys[l] += d;
        }
        tile[j] = Lane4(lanes);
    }
}

// ssq-analyze: deny-alloc
fn dominated_by_ref_scalar(rf: &[f64], tile: &[Lane4]) -> u8 {
    let mut mask = 0u8;
    'lane: for l in 0..LANES {
        let mut strict = false;
        for (j, &r) in rf.iter().enumerate() {
            let c = tile[j].0[l];
            if r > c {
                continue 'lane;
            }
            if r < c {
                strict = true;
            }
        }
        if strict {
            mask |= 1 << l;
        }
    }
    mask
}

// ssq-analyze: deny-alloc
fn dominators_of_scalar(cand: &[f64], tile: &[Lane4]) -> u8 {
    let mut mask = 0u8;
    'lane: for l in 0..LANES {
        let mut strict = false;
        for (j, &c) in cand.iter().enumerate() {
            let t = tile[j].0[l];
            if t > c {
                continue 'lane;
            }
            if t < c {
                strict = true;
            }
        }
        if strict {
            mask |= 1 << l;
        }
    }
    mask
}

// ssq-analyze: deny-alloc
fn all_lt_scalar(bounds: &[f64], tile: &[Lane4]) -> u8 {
    let mut mask = 0u8;
    'lane: for l in 0..LANES {
        for (j, &b) in bounds.iter().enumerate() {
            if tile[j].0[l] >= b {
                continue 'lane;
            }
        }
        mask |= 1 << l;
    }
    mask
}

// ---------------------------------------------------------------------
// Tiled path: portable straight-line lane loops (autovectorizable).
// ---------------------------------------------------------------------

// ssq-analyze: deny-alloc
fn fill_tile_tiled(
    pts: &[Point; LANES],
    anchors: &[Point],
    tile: &mut [Lane4],
    keys: &mut [f64; LANES],
) {
    let xs = [pts[0].x, pts[1].x, pts[2].x, pts[3].x];
    let ys = [pts[0].y, pts[1].y, pts[2].y, pts[3].y];
    *keys = [0.0; LANES];
    for (j, &q) in anchors.iter().enumerate() {
        let mut lanes = [0.0; LANES];
        for l in 0..LANES {
            let dx = xs[l] - q.x;
            let dy = ys[l] - q.y;
            let d = dx * dx + dy * dy;
            lanes[l] = d;
            keys[l] += d;
        }
        tile[j] = Lane4(lanes);
    }
}

// ssq-analyze: deny-alloc
fn dominated_by_ref_tiled(rf: &[f64], tile: &[Lane4]) -> u8 {
    let mut le = [true; LANES];
    let mut lt = [false; LANES];
    for (j, &r) in rf.iter().enumerate() {
        let t = &tile[j].0;
        for l in 0..LANES {
            le[l] &= r <= t[l];
            lt[l] |= r < t[l];
        }
    }
    let mut mask = 0u8;
    for l in 0..LANES {
        mask |= ((le[l] && lt[l]) as u8) << l;
    }
    mask
}

// ssq-analyze: deny-alloc
fn dominators_of_tiled(cand: &[f64], tile: &[Lane4]) -> u8 {
    let mut le = [true; LANES];
    let mut lt = [false; LANES];
    for (j, &c) in cand.iter().enumerate() {
        let t = &tile[j].0;
        for l in 0..LANES {
            le[l] &= t[l] <= c;
            lt[l] |= t[l] < c;
        }
    }
    let mut mask = 0u8;
    for l in 0..LANES {
        mask |= ((le[l] && lt[l]) as u8) << l;
    }
    mask
}

// ssq-analyze: deny-alloc
fn all_lt_tiled(bounds: &[f64], tile: &[Lane4]) -> u8 {
    let mut lt = [true; LANES];
    for (j, &b) in bounds.iter().enumerate() {
        let t = &tile[j].0;
        for l in 0..LANES {
            lt[l] &= t[l] < b;
        }
    }
    let mut mask = 0u8;
    for (l, &strictly_below) in lt.iter().enumerate() {
        mask |= (strictly_below as u8) << l;
    }
    mask
}

// ---------------------------------------------------------------------
// x86-64 intrinsic paths.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Lane4, LANES};
    use crate::point::Point;
    use core::arch::x86_64::*;

    /// f64x4 tile fill. Same operation order as the scalar path
    /// (`dx·dx`, `dy·dy`, add; sums accumulate in anchor order), so
    /// results are bit-identical.
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must prove AVX2 — the dispatch table installs
    // this fn only after runtime detection proves it.
    pub(super) unsafe fn fill_tile_avx2(
        pts: &[Point; LANES],
        anchors: &[Point],
        tile: &mut [Lane4],
        keys: &mut [f64; LANES],
    ) {
        // SAFETY: AVX2 proven by the caller. Stores target `tile[j].0`
        // (32-byte aligned by `Lane4`'s repr, aligned store) and `keys`
        // (unaligned store), both in bounds — wrapper checks widths.
        unsafe {
            let xs = _mm256_set_pd(pts[3].x, pts[2].x, pts[1].x, pts[0].x);
            let ys = _mm256_set_pd(pts[3].y, pts[2].y, pts[1].y, pts[0].y);
            let mut sum = _mm256_setzero_pd();
            for (j, q) in anchors.iter().enumerate() {
                let dx = _mm256_sub_pd(xs, _mm256_set1_pd(q.x));
                let dy = _mm256_sub_pd(ys, _mm256_set1_pd(q.y));
                let d = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
                _mm256_store_pd(tile[j].0.as_mut_ptr(), d);
                sum = _mm256_add_pd(sum, d);
            }
            _mm256_storeu_pd(keys.as_mut_ptr(), sum);
        }
    }

    /// f64x4 `dominated_by_ref`: AND-accumulated `≤`, OR-accumulated
    /// `<`, with an early exit once no lane can still be dominated.
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must prove AVX2 — the dispatch table installs
    // this fn only after runtime detection proves it.
    pub(super) unsafe fn dominated_by_ref_avx2(rf: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: AVX2 proven by the caller. `_mm256_load_pd` reads 32
        // aligned bytes from `tile[j].0` (guaranteed by `Lane4`'s
        // `repr(C, align(32))`); `j` is bounded by the wrapper's check.
        unsafe {
            let mut le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
            let mut lt = _mm256_setzero_pd();
            for (j, &r) in rf.iter().enumerate() {
                let rv = _mm256_set1_pd(r);
                let tv = _mm256_load_pd(tile[j].0.as_ptr());
                le = _mm256_and_pd(le, _mm256_cmp_pd::<_CMP_LE_OQ>(rv, tv));
                if _mm256_movemask_pd(le) == 0 {
                    return 0;
                }
                lt = _mm256_or_pd(lt, _mm256_cmp_pd::<_CMP_LT_OQ>(rv, tv));
            }
            _mm256_movemask_pd(_mm256_and_pd(le, lt)) as u8
        }
    }

    /// f64x4 `dominators_of`: the transposed comparison of
    /// [`dominated_by_ref_avx2`].
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must prove AVX2 — the dispatch table installs
    // this fn only after runtime detection proves it.
    pub(super) unsafe fn dominators_of_avx2(cand: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: AVX2 proven by the caller; aligned tile loads as in
        // `dominated_by_ref_avx2`, bounds checked by the wrapper.
        unsafe {
            let mut le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
            let mut lt = _mm256_setzero_pd();
            for (j, &c) in cand.iter().enumerate() {
                let cv = _mm256_set1_pd(c);
                let tv = _mm256_load_pd(tile[j].0.as_ptr());
                le = _mm256_and_pd(le, _mm256_cmp_pd::<_CMP_LE_OQ>(tv, cv));
                if _mm256_movemask_pd(le) == 0 {
                    return 0;
                }
                lt = _mm256_or_pd(lt, _mm256_cmp_pd::<_CMP_LT_OQ>(tv, cv));
            }
            _mm256_movemask_pd(_mm256_and_pd(le, lt)) as u8
        }
    }

    /// f64x4 strict-below-bounds-everywhere screen.
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must prove AVX2 — the dispatch table installs
    // this fn only after runtime detection proves it.
    pub(super) unsafe fn all_lt_avx2(bounds: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: AVX2 proven by the caller; aligned tile loads as in
        // `dominated_by_ref_avx2`, bounds checked by the wrapper.
        unsafe {
            let mut lt = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
            for (j, &b) in bounds.iter().enumerate() {
                let bv = _mm256_set1_pd(b);
                let tv = _mm256_load_pd(tile[j].0.as_ptr());
                lt = _mm256_and_pd(lt, _mm256_cmp_pd::<_CMP_LT_OQ>(tv, bv));
                if _mm256_movemask_pd(lt) == 0 {
                    return 0;
                }
            }
            _mm256_movemask_pd(lt) as u8
        }
    }

    /// f64x2 tile fill over the two 128-bit halves of each lane.
    #[target_feature(enable = "sse2")]
    // SAFETY: trivially callable — SSE2 is unconditionally available on x86-64
    // (part of the base ABI) — callable from any safe wrapper.
    pub(super) unsafe fn fill_tile_sse2(
        pts: &[Point; LANES],
        anchors: &[Point],
        tile: &mut [Lane4],
        keys: &mut [f64; LANES],
    ) {
        // SAFETY: SSE2 is x86-64 baseline. Stores target 16-byte-
        // aligned halves of `tile[j].0` (32-byte aligned overall) and
        // the unaligned `keys` halves; wrapper checks the widths.
        unsafe {
            let x01 = _mm_set_pd(pts[1].x, pts[0].x);
            let x23 = _mm_set_pd(pts[3].x, pts[2].x);
            let y01 = _mm_set_pd(pts[1].y, pts[0].y);
            let y23 = _mm_set_pd(pts[3].y, pts[2].y);
            let mut s01 = _mm_setzero_pd();
            let mut s23 = _mm_setzero_pd();
            for (j, q) in anchors.iter().enumerate() {
                let qx = _mm_set1_pd(q.x);
                let qy = _mm_set1_pd(q.y);
                let dx01 = _mm_sub_pd(x01, qx);
                let dx23 = _mm_sub_pd(x23, qx);
                let dy01 = _mm_sub_pd(y01, qy);
                let dy23 = _mm_sub_pd(y23, qy);
                let d01 = _mm_add_pd(_mm_mul_pd(dx01, dx01), _mm_mul_pd(dy01, dy01));
                let d23 = _mm_add_pd(_mm_mul_pd(dx23, dx23), _mm_mul_pd(dy23, dy23));
                _mm_store_pd(tile[j].0.as_mut_ptr(), d01);
                _mm_store_pd(tile[j].0.as_mut_ptr().add(2), d23);
                s01 = _mm_add_pd(s01, d01);
                s23 = _mm_add_pd(s23, d23);
            }
            _mm_storeu_pd(keys.as_mut_ptr(), s01);
            _mm_storeu_pd(keys.as_mut_ptr().add(2), s23);
        }
    }

    /// f64x2 `dominated_by_ref`.
    #[target_feature(enable = "sse2")]
    // SAFETY: trivially callable — SSE2 is unconditionally available on x86-64
    // (part of the base ABI) — callable from any safe wrapper.
    pub(super) unsafe fn dominated_by_ref_sse2(rf: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: SSE2 is x86-64 baseline. Each `_mm_load_pd` reads a
        // 16-byte-aligned half of `tile[j].0`; bounds checked by the
        // safe wrapper.
        unsafe {
            let ones = _mm_castsi128_pd(_mm_set1_epi64x(-1));
            let (mut le0, mut le1) = (ones, ones);
            let (mut lt0, mut lt1) = (_mm_setzero_pd(), _mm_setzero_pd());
            for (j, &r) in rf.iter().enumerate() {
                let rv = _mm_set1_pd(r);
                let t0 = _mm_load_pd(tile[j].0.as_ptr());
                let t1 = _mm_load_pd(tile[j].0.as_ptr().add(2));
                le0 = _mm_and_pd(le0, _mm_cmple_pd(rv, t0));
                le1 = _mm_and_pd(le1, _mm_cmple_pd(rv, t1));
                if _mm_movemask_pd(le0) == 0 && _mm_movemask_pd(le1) == 0 {
                    return 0;
                }
                lt0 = _mm_or_pd(lt0, _mm_cmplt_pd(rv, t0));
                lt1 = _mm_or_pd(lt1, _mm_cmplt_pd(rv, t1));
            }
            (_mm_movemask_pd(_mm_and_pd(le0, lt0)) as u8)
                | ((_mm_movemask_pd(_mm_and_pd(le1, lt1)) as u8) << 2)
        }
    }

    /// f64x2 `dominators_of`.
    #[target_feature(enable = "sse2")]
    // SAFETY: trivially callable — SSE2 is unconditionally available on x86-64
    // (part of the base ABI) — callable from any safe wrapper.
    pub(super) unsafe fn dominators_of_sse2(cand: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: SSE2 is x86-64 baseline; aligned half-tile loads,
        // bounds checked by the safe wrapper.
        unsafe {
            let ones = _mm_castsi128_pd(_mm_set1_epi64x(-1));
            let (mut le0, mut le1) = (ones, ones);
            let (mut lt0, mut lt1) = (_mm_setzero_pd(), _mm_setzero_pd());
            for (j, &c) in cand.iter().enumerate() {
                let cv = _mm_set1_pd(c);
                let t0 = _mm_load_pd(tile[j].0.as_ptr());
                let t1 = _mm_load_pd(tile[j].0.as_ptr().add(2));
                le0 = _mm_and_pd(le0, _mm_cmple_pd(t0, cv));
                le1 = _mm_and_pd(le1, _mm_cmple_pd(t1, cv));
                if _mm_movemask_pd(le0) == 0 && _mm_movemask_pd(le1) == 0 {
                    return 0;
                }
                lt0 = _mm_or_pd(lt0, _mm_cmplt_pd(t0, cv));
                lt1 = _mm_or_pd(lt1, _mm_cmplt_pd(t1, cv));
            }
            (_mm_movemask_pd(_mm_and_pd(le0, lt0)) as u8)
                | ((_mm_movemask_pd(_mm_and_pd(le1, lt1)) as u8) << 2)
        }
    }

    /// f64x2 strict-below-bounds screen.
    #[target_feature(enable = "sse2")]
    // SAFETY: trivially callable — SSE2 is unconditionally available on x86-64
    // (part of the base ABI) — callable from any safe wrapper.
    pub(super) unsafe fn all_lt_sse2(bounds: &[f64], tile: &[Lane4]) -> u8 {
        // SAFETY: SSE2 is x86-64 baseline; aligned half-tile loads,
        // bounds checked by the safe wrapper.
        unsafe {
            let ones = _mm_castsi128_pd(_mm_set1_epi64x(-1));
            let (mut lt0, mut lt1) = (ones, ones);
            for (j, &b) in bounds.iter().enumerate() {
                let bv = _mm_set1_pd(b);
                let t0 = _mm_load_pd(tile[j].0.as_ptr());
                let t1 = _mm_load_pd(tile[j].0.as_ptr().add(2));
                lt0 = _mm_and_pd(lt0, _mm_cmplt_pd(t0, bv));
                lt1 = _mm_and_pd(lt1, _mm_cmplt_pd(t1, bv));
                if _mm_movemask_pd(lt0) == 0 && _mm_movemask_pd(lt1) == 0 {
                    return 0;
                }
            }
            (_mm_movemask_pd(lt0) as u8) | ((_mm_movemask_pd(lt1) as u8) << 2)
        }
    }
}

// Safe wrappers: each is installed in exactly one dispatch table, and
// the table guards the target-feature precondition (AVX2 tables are
// only built after `is_x86_feature_detected!("avx2")`; SSE2 is part of
// the x86-64 base ABI).

#[cfg(target_arch = "x86_64")]
fn fill_tile_avx2(
    pts: &[Point; LANES],
    anchors: &[Point],
    tile: &mut [Lane4],
    keys: &mut [f64; LANES],
) {
    debug_assert_eq!(anchors.len(), tile.len());
    // SAFETY: only reachable through the AVX2 dispatch table, which
    // `detect()` installs exclusively when AVX2 was detected at runtime.
    unsafe { x86::fill_tile_avx2(pts, anchors, tile, keys) }
}

#[cfg(target_arch = "x86_64")]
fn dominated_by_ref_avx2(rf: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(rf.len(), tile.len());
    // SAFETY: only reachable through the runtime-detected AVX2 table.
    unsafe { x86::dominated_by_ref_avx2(rf, tile) }
}

#[cfg(target_arch = "x86_64")]
fn dominators_of_avx2(cand: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(cand.len(), tile.len());
    // SAFETY: only reachable through the runtime-detected AVX2 table.
    unsafe { x86::dominators_of_avx2(cand, tile) }
}

#[cfg(target_arch = "x86_64")]
fn all_lt_avx2(bounds: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(bounds.len(), tile.len());
    // SAFETY: only reachable through the runtime-detected AVX2 table.
    unsafe { x86::all_lt_avx2(bounds, tile) }
}

#[cfg(target_arch = "x86_64")]
fn fill_tile_sse2(
    pts: &[Point; LANES],
    anchors: &[Point],
    tile: &mut [Lane4],
    keys: &mut [f64; LANES],
) {
    debug_assert_eq!(anchors.len(), tile.len());
    // SAFETY: SSE2 is unconditionally part of the x86-64 base ABI.
    unsafe { x86::fill_tile_sse2(pts, anchors, tile, keys) }
}

#[cfg(target_arch = "x86_64")]
fn dominated_by_ref_sse2(rf: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(rf.len(), tile.len());
    // SAFETY: SSE2 is unconditionally part of the x86-64 base ABI.
    unsafe { x86::dominated_by_ref_sse2(rf, tile) }
}

#[cfg(target_arch = "x86_64")]
fn dominators_of_sse2(cand: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(cand.len(), tile.len());
    // SAFETY: SSE2 is unconditionally part of the x86-64 base ABI.
    unsafe { x86::dominators_of_sse2(cand, tile) }
}

#[cfg(target_arch = "x86_64")]
fn all_lt_sse2(bounds: &[f64], tile: &[Lane4]) -> u8 {
    debug_assert_eq!(bounds.len(), tile.len());
    // SAFETY: SSE2 is unconditionally part of the x86-64 base ABI.
    unsafe { x86::all_lt_sse2(bounds, tile) }
}

// ---------------------------------------------------------------------
// Dispatch tables and selection.
// ---------------------------------------------------------------------

static SCALAR: Dispatch = Dispatch {
    path: KernelPath::Scalar,
    fill_tile: fill_tile_scalar,
    dominated_by_ref: dominated_by_ref_scalar,
    dominators_of: dominators_of_scalar,
    all_lt: all_lt_scalar,
};

static TILED: Dispatch = Dispatch {
    path: KernelPath::Tiled,
    fill_tile: fill_tile_tiled,
    dominated_by_ref: dominated_by_ref_tiled,
    dominators_of: dominators_of_tiled,
    all_lt: all_lt_tiled,
};

#[cfg(target_arch = "x86_64")]
static SSE2: Dispatch = Dispatch {
    path: KernelPath::Sse2,
    fill_tile: fill_tile_sse2,
    dominated_by_ref: dominated_by_ref_sse2,
    dominators_of: dominators_of_sse2,
    all_lt: all_lt_sse2,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Dispatch = Dispatch {
    path: KernelPath::Avx2,
    fill_tile: fill_tile_avx2,
    dominated_by_ref: dominated_by_ref_avx2,
    dominators_of: dominators_of_avx2,
    all_lt: all_lt_avx2,
};

fn detect() -> &'static Dispatch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &AVX2
        } else {
            &SSE2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &TILED
    }
}

static DETECTED: OnceLock<&'static Dispatch> = OnceLock::new();
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// The dispatch table runtime detection selects for this process —
/// scalar when the `SSQ_FORCE_SCALAR=1` environment override is set,
/// otherwise the widest available ISA path. Detection runs once and is
/// cached.
pub fn detected_dispatch() -> &'static Dispatch {
    DETECTED.get_or_init(|| {
        if std::env::var_os("SSQ_FORCE_SCALAR").is_some_and(|v| v == "1") {
            &SCALAR
        } else {
            detect()
        }
    })
}

/// The dispatch table the kernels actually use: [`detected_dispatch`]
/// unless [`set_force_scalar`]`(true)` is in effect.
#[inline]
pub fn dispatch() -> &'static Dispatch {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        &SCALAR
    } else {
        detected_dispatch()
    }
}

/// In-process override: route [`dispatch`] to the scalar table (`true`)
/// or back to runtime detection (`false`). Lets benches and tests
/// compare the scalar-oracle and SIMD paths in one process; the
/// `SSQ_FORCE_SCALAR=1` environment variable does the same for a whole
/// run.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// The scalar-oracle dispatch table (always available).
pub fn scalar_dispatch() -> &'static Dispatch {
    &SCALAR
}

/// The portable tiled dispatch table (always available).
pub fn tiled_dispatch() -> &'static Dispatch {
    &TILED
}

/// Every dispatch table this build can run: scalar and tiled always,
/// plus the intrinsic paths the host supports. For equivalence tests.
pub fn available_dispatches() -> Vec<&'static Dispatch> {
    let mut all = vec![&SCALAR, &TILED];
    #[cfg(target_arch = "x86_64")]
    {
        all.push(&SSE2);
        if std::arch::is_x86_feature_detected!("avx2") {
            all.push(&AVX2);
        }
    }
    all
}

/// The name of the kernel path this process dispatches to (for
/// metrics, bench JSON, and serve logs).
pub fn path_name() -> &'static str {
    dispatch().path().name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel;

    struct XorShift(u64);

    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn tile_from_rows(rows: &[[f64; 4]], width: usize) -> Vec<Lane4> {
        // rows[l][j] -> anchor-major lanes.
        (0..width)
            .map(|j| Lane4([rows[0][j], rows[1][j], rows[2][j], rows[3][j]]))
            .collect()
    }

    fn row(rows: &[[f64; 4]], l: usize, width: usize) -> Vec<f64> {
        rows[l][..width].to_vec()
    }

    #[test]
    fn masks_agree_with_the_per_pair_kernel_on_random_rows() {
        let mut rng = XorShift(0xD15EA5E);
        for d in available_dispatches() {
            for width in 1..=4usize {
                for _ in 0..200 {
                    let mut rows = [[0.0f64; 4]; 4];
                    let mut rf = vec![0.0f64; width];
                    for v in rf.iter_mut() {
                        *v = (rng.next_f64() * 8.0).floor(); // many exact ties
                    }
                    for r in rows.iter_mut() {
                        for v in r.iter_mut().take(width) {
                            *v = (rng.next_f64() * 8.0).floor();
                        }
                    }
                    let tile = tile_from_rows(&rows, width);
                    let dom = d.dominated_by_ref(&rf, &tile);
                    let doms = d.dominators_of(&rf, &tile);
                    let lt = d.all_lt(&rf, &tile);
                    for l in 0..4 {
                        let lane = row(&rows, l, width);
                        assert_eq!(
                            dom >> l & 1 == 1,
                            kernel::dominates(&rf, &lane),
                            "{}: dominated_by_ref lane {l}: rf={rf:?} lane={lane:?}",
                            d.path().name()
                        );
                        assert_eq!(
                            doms >> l & 1 == 1,
                            kernel::dominates(&lane, &rf),
                            "{}: dominators_of lane {l}",
                            d.path().name()
                        );
                        let want_lt = lane.iter().zip(&rf).all(|(&t, &b)| t < b);
                        assert_eq!(
                            lt >> l & 1 == 1,
                            want_lt,
                            "{}: all_lt lane {l}",
                            d.path().name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn signed_zero_and_exact_ties_match_the_scalar_relation() {
        // -0.0 == +0.0 under IEEE comparison: neither direction is
        // strict, so neither row dominates.
        let rf = [0.0, -0.0];
        let rows: [[f64; 4]; 4] = [
            [-0.0, 0.0, 0.0, 0.0],  // tie with rf on both anchors
            [0.0, 0.0, 0.0, 0.0],   // tie
            [1.0, 0.0, 0.0, 0.0],   // rf dominates (strict on anchor 0)
            [-0.0, -1.0, 0.0, 0.0], // dominates rf
        ];
        let tile = tile_from_rows(&rows, 2);
        for d in available_dispatches() {
            assert_eq!(
                d.dominated_by_ref(&rf, &tile),
                0b0100,
                "{}",
                d.path().name()
            );
            assert_eq!(d.dominators_of(&rf, &tile), 0b1000, "{}", d.path().name());
        }
    }

    #[test]
    fn pads_are_neutral_in_every_direction() {
        let rf = [1.0, 2.0, 3.0];
        let tile = vec![Lane4::PAD; 3];
        for d in available_dispatches() {
            // +inf lanes never dominate and never pass the strict screen…
            assert_eq!(d.dominators_of(&rf, &tile), 0, "{}", d.path().name());
            assert_eq!(d.all_lt(&rf, &tile), 0, "{}", d.path().name());
            // …and are reported as dominated by any finite row, which
            // callers mask off with `live_lane_mask`.
            assert_eq!(d.dominated_by_ref(&rf, &tile), 0xF, "{}", d.path().name());
        }
        assert_eq!(live_lane_mask(0), 0b0000);
        assert_eq!(live_lane_mask(1), 0b0001);
        assert_eq!(live_lane_mask(3), 0b0111);
        assert_eq!(live_lane_mask(4), 0b1111);
        assert_eq!(live_lane_mask(9), 0b1111);
    }

    #[test]
    fn fill_tile_is_bit_identical_across_paths() {
        let mut rng = XorShift(0xF00D);
        for _ in 0..50 {
            let pts: [Point; LANES] =
                std::array::from_fn(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0));
            let anchors: Vec<Point> = (0..5)
                .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
                .collect();
            let mut want_tile = vec![Lane4::splat(0.0); anchors.len()];
            let mut want_keys = [0.0; LANES];
            scalar_dispatch().fill_tile(&pts, &anchors, &mut want_tile, &mut want_keys);
            // The scalar fill must equal the point-at-a-time kernel.
            for (l, p) in pts.iter().enumerate() {
                let mut row = vec![0.0; anchors.len()];
                kernel::fill_dist_sq_row(*p, &anchors, &mut row);
                for (j, &d) in row.iter().enumerate() {
                    assert_eq!(want_tile[j].0[l].to_bits(), d.to_bits());
                }
            }
            for d in available_dispatches() {
                let mut tile = vec![Lane4::splat(-1.0); anchors.len()];
                let mut keys = [0.0; LANES];
                d.fill_tile(&pts, &anchors, &mut tile, &mut keys);
                for j in 0..anchors.len() {
                    for l in 0..LANES {
                        assert_eq!(
                            tile[j].0[l].to_bits(),
                            want_tile[j].0[l].to_bits(),
                            "{}: anchor {j} lane {l}",
                            d.path().name()
                        );
                    }
                }
                for l in 0..LANES {
                    assert_eq!(
                        keys[l].to_bits(),
                        want_keys[l].to_bits(),
                        "{}",
                        d.path().name()
                    );
                }
            }
        }
    }

    #[test]
    fn force_scalar_override_reroutes_dispatch() {
        let detected = detected_dispatch().path();
        set_force_scalar(true);
        assert_eq!(dispatch().path(), KernelPath::Scalar);
        assert_eq!(path_name(), "scalar");
        set_force_scalar(false);
        assert_eq!(dispatch().path(), detected);
    }

    #[test]
    fn path_names_are_stable() {
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Tiled.name(), "tiled");
        assert_eq!(KernelPath::Sse2.name(), "sse2");
        assert_eq!(KernelPath::Avx2.name(), "avx2");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_detection_picks_an_intrinsic_path_unless_forced() {
        // Whatever the host supports, the detected path must not be the
        // portable fallback on x86-64 (SSE2 is baseline)…
        let path = detected_dispatch().path();
        assert!(
            path == KernelPath::Avx2 || path == KernelPath::Sse2 || path == KernelPath::Scalar,
            "unexpected x86-64 path {path:?}"
        );
        // …and Scalar only appears under the env override.
        if std::env::var_os("SSQ_FORCE_SCALAR").is_none_or(|v| v != "1") {
            assert_ne!(path, KernelPath::Scalar);
        }
    }
}
