//! Adaptive-precision geometric predicates in the style of Shewchuk.
//!
//! The Delaunay/Voronoi substrate (and with it the correctness of VS² and
//! VCS²) depends on two sign tests:
//!
//! * [`orient2d`] — which side of the directed line `a → b` does `c` lie on?
//! * [`incircle`] — is `d` inside the circumcircle of the CCW triangle
//!   `(a, b, c)`?
//!
//! Evaluating either determinant naively in `f64` misclassifies
//! near-degenerate inputs, which corrupts triangulations in ways that are
//! notoriously hard to debug. Both predicates here are **exact for every
//! finite `f64` input**: a cheap floating-point *filter* answers the common
//! case, and when the filter cannot certify the sign we fall back to exact
//! multi-component *expansion arithmetic* (Shewchuk, *Adaptive Precision
//! Floating-Point Arithmetic and Fast Robust Geometric Predicates*, 1997).
//!
//! The fallback is orders of magnitude slower than the filter, but it only
//! triggers on (near-)degenerate inputs, which are vanishingly rare in the
//! SSQ workloads. The [`orient2d`] fallback runs on fixed-size stack buffers
//! (its exact determinant has at most 12 expansion components), because
//! orientation tests sit on the allocation-free diagram lookup path; the
//! [`incircle`] fallback is only reached from triangulation *construction*
//! and keeps the simpler heap-based expansion arithmetic.

use crate::point::Point;

/// The orientation of an ordered point triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies strictly to the left of the directed line `a → b`
    /// (the triple makes a counter-clockwise turn).
    CounterClockwise,
    /// `c` lies strictly to the right (clockwise turn).
    Clockwise,
    /// The three points are exactly collinear.
    Collinear,
}

/// Half the classic machine epsilon: the unit roundoff used in Shewchuk's
/// error bounds.
const U: f64 = f64::EPSILON / 2.0;

// ---------------------------------------------------------------------------
// Error-free transformations
// ---------------------------------------------------------------------------

/// Knuth's TwoSum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// TwoDiff: returns `(d, e)` with `d = fl(a - b)` and `a - b = d + e` exactly.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let d = a - b;
    let bb = a - d;
    let err = (a - (d + bb)) + (bb - b);
    (d, err)
}

/// TwoProduct via fused multiply-add: returns `(p, e)` with `p = fl(a * b)`
/// and `a * b = p + e` exactly. `f64::mul_add` is correctly rounded, so the
/// error term is exact regardless of whether the platform has hardware FMA.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

// ---------------------------------------------------------------------------
// Expansion arithmetic
// ---------------------------------------------------------------------------
//
// An *expansion* is a sum of f64 components, stored in increasing order of
// magnitude, whose components are nonoverlapping: each component carries
// bits strictly below the least significant bit of the next. The sign of a
// nonzero expansion is the sign of its largest-magnitude (last nonzero)
// component. All operations below preserve the nonoverlapping invariant
// (Shewchuk 1997, Theorems 10 and 19).

/// Adds the scalar `b` to expansion `e` (Shewchuk's GROW-EXPANSION),
/// appending to `out`.
fn grow_expansion(e: &[f64], b: f64, out: &mut Vec<f64>) {
    out.clear();
    let mut q = b;
    for &ei in e {
        let (qn, err) = two_sum(q, ei);
        if err != 0.0 {
            out.push(err);
        }
        q = qn;
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
}

/// Adds two expansions (repeated GROW-EXPANSION; `O(|e|·|f|)` worst case,
/// which is fine for a rarely-taken exact path).
fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc: Vec<f64> = e.to_vec();
    let mut tmp = Vec::with_capacity(acc.len() + 1);
    for &fi in f {
        grow_expansion(&acc, fi, &mut tmp);
        std::mem::swap(&mut acc, &mut tmp);
    }
    if acc.is_empty() {
        acc.push(0.0);
    }
    acc
}

/// Multiplies expansion `e` by scalar `b` (Shewchuk's SCALE-EXPANSION).
fn scale_expansion(e: &[f64], b: f64) -> Vec<f64> {
    if e.is_empty() {
        return vec![0.0];
    }
    let mut out = Vec::with_capacity(2 * e.len());
    let (mut q, h) = two_product(e[0], b);
    if h != 0.0 {
        out.push(h);
    }
    for &ei in &e[1..] {
        let (p, e1) = two_product(ei, b);
        let (s, e2) = two_sum(q, e1);
        if e2 != 0.0 {
            out.push(e2);
        }
        let (qn, e3) = two_sum(p, s);
        if e3 != 0.0 {
            out.push(e3);
        }
        q = qn;
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
    out
}

/// Multiplies two expansions.
fn expansion_mul(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc = vec![0.0];
    for &fi in f {
        acc = expansion_sum(&acc, &scale_expansion(e, fi));
    }
    acc
}

/// Negates an expansion in place.
fn expansion_neg(e: &mut [f64]) {
    for x in e.iter_mut() {
        *x = -*x;
    }
}

/// Sign of a nonoverlapping expansion: the sign of its last nonzero
/// component.
fn expansion_sign(e: &[f64]) -> i32 {
    for &x in e.iter().rev() {
        if x > 0.0 {
            return 1;
        }
        if x < 0.0 {
            return -1;
        }
    }
    0
}

// ---------------------------------------------------------------------------
// orient2d
// ---------------------------------------------------------------------------

/// Capacity of the fixed orient2d accumulator: the sum of twelve scalars
/// (six exact two-term products) has at most 12 nonoverlapping components.
const ORIENT2D_EXPANSION_CAP: usize = 16;

/// [`grow_expansion`] into a fixed-size buffer, returning the component
/// count. The caller guarantees `e.len() + 1 <=` the buffer capacity.
fn fixed_grow_expansion(e: &[f64], b: f64, out: &mut [f64; ORIENT2D_EXPANSION_CAP]) -> usize {
    let mut n = 0usize;
    let mut q = b;
    for &ei in e {
        let (qn, err) = two_sum(q, ei);
        if err != 0.0 {
            out[n] = err;
            n += 1;
        }
        q = qn;
    }
    if q != 0.0 || n == 0 {
        out[n] = q;
        n += 1;
    }
    n
}

/// Exactly evaluates the sign of
/// `det = (a.x - c.x)(b.y - c.y) - (a.y - c.y)(b.x - c.x)`
/// using expansion arithmetic on stack buffers (this path must stay
/// allocation-free: orientation tests back the diagram lookup kernels).
/// Called only when the filter fails.
fn orient2d_exact(a: Point, b: Point, c: Point) -> i32 {
    // Expand the determinant over the *original* coordinates so that every
    // term is an exact product of two inputs:
    //   det = ax·by − ax·cy − ay·bx + ay·cx + bx·cy − by·cx
    let terms = [
        two_product(a.x, b.y),
        {
            let (p, e) = two_product(a.x, c.y);
            (-p, -e)
        },
        {
            let (p, e) = two_product(a.y, b.x);
            (-p, -e)
        },
        two_product(a.y, c.x),
        two_product(b.x, c.y),
        {
            let (p, e) = two_product(b.y, c.x);
            (-p, -e)
        },
    ];
    let mut acc = [0.0; ORIENT2D_EXPANSION_CAP];
    let mut acc_len = 1usize; // [0.0], the zero expansion
    let mut tmp = [0.0; ORIENT2D_EXPANSION_CAP];
    for (hi, lo) in terms {
        // Adding 12 scalars one at a time grows the expansion by at most
        // one component each, so `acc_len` never exceeds 12.
        for addend in [lo, hi] {
            let tmp_len = fixed_grow_expansion(&acc[..acc_len], addend, &mut tmp);
            acc = tmp;
            acc_len = tmp_len;
        }
    }
    expansion_sign(&acc[..acc_len])
}

/// Returns a positive value when `c` lies strictly left of the directed line
/// `a → b`, a negative value when strictly right, and exactly `0.0` when the
/// three points are collinear. The **sign** is always exact.
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    // Shewchuk's static filter bound for the A-estimate.
    let errbound = (3.0 + 16.0 * U) * U * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }
    orient2d_exact(a, b, c) as f64
}

/// [`orient2d`] reduced to its exact sign: `1` (CCW), `-1` (CW) or `0`.
#[inline]
pub fn orient2d_sign(a: Point, b: Point, c: Point) -> i32 {
    let d = orient2d(a, b, c);
    if d > 0.0 {
        1
    } else if d < 0.0 {
        -1
    } else {
        0
    }
}

/// [`orient2d`] expressed as an [`Orientation`].
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    match orient2d_sign(a, b, c) {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

// ---------------------------------------------------------------------------
// incircle
// ---------------------------------------------------------------------------

/// Exactly evaluates the incircle determinant via expansion arithmetic over
/// the exactly-represented translated coordinates. Called only when the
/// filter fails.
fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> i32 {
    // Translated coordinates as exact 2-expansions [lo, hi].
    let exp2 = |hi_lo: (f64, f64)| vec![hi_lo.1, hi_lo.0];
    let adx = exp2(two_diff(a.x, d.x));
    let ady = exp2(two_diff(a.y, d.y));
    let bdx = exp2(two_diff(b.x, d.x));
    let bdy = exp2(two_diff(b.y, d.y));
    let cdx = exp2(two_diff(c.x, d.x));
    let cdy = exp2(two_diff(c.y, d.y));

    // Pairwise 2x2 minors.
    let minor = |px: &[f64], py: &[f64], qx: &[f64], qy: &[f64]| {
        let mut t2 = expansion_mul(py, qx);
        expansion_neg(&mut t2);
        expansion_sum(&expansion_mul(px, qy), &t2)
    };
    let bc = minor(&bdx, &bdy, &cdx, &cdy); // bdx·cdy − bdy·cdx
    let ca = minor(&cdx, &cdy, &adx, &ady); // cdx·ady − cdy·adx
    let ab = minor(&adx, &ady, &bdx, &bdy); // adx·bdy − ady·bdx

    let lift = |x: &[f64], y: &[f64]| expansion_sum(&expansion_mul(x, x), &expansion_mul(y, y));
    let alift = lift(&adx, &ady);
    let blift = lift(&bdx, &bdy);
    let clift = lift(&cdx, &cdy);

    let det = expansion_sum(
        &expansion_sum(&expansion_mul(&alift, &bc), &expansion_mul(&blift, &ca)),
        &expansion_mul(&clift, &ab),
    );
    expansion_sign(&det)
}

/// Returns a positive value when `d` lies strictly **inside** the
/// circumcircle of the counter-clockwise triangle `(a, b, c)`, negative when
/// strictly outside, and exactly `0.0` when the four points are cocircular.
/// The **sign** is always exact.
///
/// If `(a, b, c)` is clockwise the sign is inverted, matching the standard
/// determinant convention.
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = (10.0 + 96.0 * U) * U * permanent;
    if det > errbound || -det > errbound {
        return det;
    }
    incircle_exact(a, b, c, d) as f64
}

/// [`incircle`] reduced to its exact sign: `1` (inside), `-1` (outside) or
/// `0` (cocircular), for a CCW triangle `(a, b, c)`.
#[inline]
pub fn incircle_sign(a: Point, b: Point, c: Point, d: Point) -> i32 {
    let v = incircle(a, b, c, d);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orient2d_basic() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, -1.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)), 0.0);
    }

    #[test]
    fn orient2d_antisymmetry() {
        let (a, b, c) = (p(0.3, 0.7), p(-1.2, 4.5), p(2.2, -0.1));
        assert_eq!(orient2d_sign(a, b, c), -orient2d_sign(b, a, c));
        assert_eq!(orient2d_sign(a, b, c), orient2d_sign(b, c, a));
        assert_eq!(orient2d_sign(a, b, c), orient2d_sign(c, a, b));
    }

    #[test]
    fn orient2d_near_degenerate_is_exact() {
        // Classic adversarial case: points nearly collinear along y = x with
        // a perturbation of one ulp. Naive arithmetic misclassifies some of
        // these; the exact predicate must agree with rational arithmetic.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        // c exactly on the line:
        let c_on = p(24.0, 24.0);
        assert_eq!(orient2d_sign(a, b, c_on), 0);
        // c one ulp above:
        let c_above = p(24.0, f64::from_bits(24.0f64.to_bits() + 1));
        assert_eq!(orient2d_sign(a, b, c_above), 1);
        // c one ulp below:
        let c_below = p(24.0, f64::from_bits(24.0f64.to_bits() - 1));
        assert_eq!(orient2d_sign(a, b, c_below), -1);
    }

    #[test]
    fn orient2d_exact_matches_filter_on_easy_inputs() {
        let cases = [
            (p(0.0, 0.0), p(3.0, 1.0), p(1.0, 2.0)),
            (p(-5.0, 2.0), p(4.0, -3.0), p(0.5, 0.5)),
            (p(1e6, -1e6), p(-1e6, 1e6), p(10.0, 20.0)),
        ];
        for (a, b, c) in cases {
            let filt = orient2d_sign(a, b, c);
            let exact = orient2d_exact(a, b, c);
            assert_eq!(filt, exact, "disagreement on {a:?} {b:?} {c:?}");
        }
    }

    #[test]
    fn incircle_basic() {
        // Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        let (a, b, c) = (p(1.0, 0.0), p(0.0, 1.0), p(-1.0, 0.0));
        assert!(orient2d(a, b, c) > 0.0);
        assert!(incircle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, p(2.0, 2.0)) < 0.0);
        // (0,-1) is exactly cocircular.
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_flips_sign() {
        let (a, b, c) = (p(1.0, 0.0), p(0.0, 1.0), p(-1.0, 0.0));
        let inside = p(0.1, 0.1);
        assert!(incircle(a, b, c, inside) > 0.0);
        assert!(incircle(a, c, b, inside) < 0.0); // CW triangle
    }

    #[test]
    fn incircle_near_degenerate_is_exact() {
        // Four nearly-cocircular points on the unit circle; perturb by one ulp.
        let (a, b, c) = (p(1.0, 0.0), p(0.0, 1.0), p(-1.0, 0.0));
        let just_in = p(0.0, -f64::from_bits(1.0f64.to_bits() - 1));
        let just_out = p(0.0, -f64::from_bits(1.0f64.to_bits() + 1));
        assert_eq!(incircle_sign(a, b, c, just_in), 1);
        assert_eq!(incircle_sign(a, b, c, just_out), -1);
    }

    #[test]
    fn expansion_roundtrip() {
        // (hi, lo) of an inexact product must sum back exactly.
        let (hi, lo) = two_product(1.1, 2.2);
        assert_ne!(lo, 0.0);
        // Exactness check via 128-bit-ish reconstruction: hi + lo == 1.1*2.2
        // in exact arithmetic; verify the expansion sign machinery agrees.
        let e = expansion_sum(&[lo, hi], &[-hi, -lo]);
        assert_eq!(expansion_sign(&e), 0);
    }

    #[test]
    fn expansion_mul_sign() {
        let a = vec![1e-30, 1.0]; // 1 + 1e-30
        let b = vec![-1.0];
        let prod = expansion_mul(&a, &b);
        assert_eq!(expansion_sign(&prod), -1);
        let prod2 = expansion_mul(&prod, &b);
        assert_eq!(expansion_sign(&prod2), 1);
    }

    #[test]
    fn scale_expansion_exact() {
        // (1 + 2^-60) * 3 − 3 − 3·2^-60 == 0 exactly.
        let e = vec![2f64.powi(-60), 1.0];
        let scaled = scale_expansion(&e, 3.0);
        let minus = expansion_sum(&scaled, &[-3.0 * 2f64.powi(-60), -3.0]);
        assert_eq!(expansion_sign(&minus), 0);
    }

    #[test]
    fn random_agreement_with_naive_on_well_separated_points() {
        // Deterministic pseudo-random probe: for well-separated points the
        // filter path must agree with the naive determinant sign.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
        };
        for _ in 0..500 {
            let (a, b, c) = (p(next(), next()), p(next(), next()), p(next(), next()));
            let naive = ((b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)).signum() as i32;
            assert_eq!(orient2d_sign(a, b, c), naive);
        }
    }
}
