//! Allocation-free distance/dominance kernels over flat `f64` rows.
//!
//! Every algorithm in the paper bottoms out in the same two operations:
//! filling a distance vector from a candidate point to the anchors
//! `CHv(Q)` (Theorem 2) and testing one vector against another for
//! spatial dominance (§2.2). These kernels perform both over
//! caller-provided slices — typically rows of a structure-of-arrays
//! scratch arena — so the steady-state hot path never allocates.
//!
//! # Squared distances preserve dominance
//!
//! Dominance compares distances *to the same anchor* componentwise, and
//! `x ↦ x²` is strictly increasing on the non-negative reals, so
//! `D(a, qᵢ) ≤ D(b, qᵢ) ⇔ D(a, qᵢ)² ≤ D(b, qᵢ)²` for every anchor `qᵢ`
//! (and likewise for the strict comparison). A vector of squared
//! distances therefore induces **exactly** the same dominance relation
//! as the vector of true distances — the Euclidean fast path can skip
//! every `sqrt`, deferring it to result reporting (where nothing in this
//! repo ever needs it: skylines are reported as point ids). The same
//! argument makes the squared-distance *sum* a valid monotone ordering
//! key: if `a` dominates `b` then every squared component of `a` is `≤`
//! and at least one is `<`, so the sum is strictly smaller.

use crate::point::Point;

/// Writes the **squared** Euclidean distances from `p` to every anchor
/// into `out` (`out.len()` must equal `anchors.len()`).
// ssq-analyze: deny-alloc
#[inline]
pub fn fill_dist_sq_row(p: Point, anchors: &[Point], out: &mut [f64]) {
    debug_assert_eq!(anchors.len(), out.len(), "row width mismatch");
    for (slot, &q) in out.iter_mut().zip(anchors) {
        *slot = p.distance_sq(q);
    }
}

/// The sum of **squared** Euclidean distances from `p` to the anchors —
/// a monotone-under-dominance ordering key computed without `sqrt` and
/// without materializing the vector (see the module docs).
// ssq-analyze: deny-alloc
#[inline]
pub fn dist_sq_sum(p: Point, anchors: &[Point]) -> f64 {
    anchors.iter().map(|&q| p.distance_sq(q)).sum()
}

/// The sum of the entries of one row (the row's ordering key).
// ssq-analyze: deny-alloc
#[inline]
pub fn row_sum(row: &[f64]) -> f64 {
    row.iter().sum()
}

/// `true` when row `a` dominates row `b`: weakly smaller on every
/// component and strictly smaller on at least one, with an early exit on
/// the first component where `a` loses.
///
/// Valid for true distances, squared distances, or any componentwise
/// strictly-monotone transform of them (the relation is identical — see
/// the module docs). This is the single dominance loop shared by
/// `ssq-core`, `ssq-skyline`, and the shard merge.
// ssq-analyze: deny-alloc
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "vector arity mismatch");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn squared_rows_match_squared_scalar_distances() {
        let anchors = [p(0.0, 0.0), p(3.0, 0.0), p(0.0, 4.0)];
        let c = p(3.0, 4.0);
        let mut row = [0.0; 3];
        fill_dist_sq_row(c, &anchors, &mut row);
        for (i, &q) in anchors.iter().enumerate() {
            assert_eq!(row[i], c.distance(q) * c.distance(q));
        }
        assert_eq!(dist_sq_sum(c, &anchors), row_sum(&row));
    }

    #[test]
    fn dominance_needs_strictness_and_exits_early() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
        assert!(!dominates(&[2.0, 0.0], &[1.0, 9.0])); // early exit on [0]
    }

    #[test]
    fn squaring_preserves_the_dominance_relation() {
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let a: Vec<f64> = (0..4).map(|_| next() * 10.0).collect();
            let b: Vec<f64> = (0..4).map(|_| next() * 10.0).collect();
            let a2: Vec<f64> = a.iter().map(|x| x * x).collect();
            let b2: Vec<f64> = b.iter().map(|x| x * x).collect();
            assert_eq!(dominates(&a, &b), dominates(&a2, &b2));
            assert_eq!(dominates(&b, &a), dominates(&b2, &a2));
        }
    }
}
