//! Convex polygons: `CH(Q)`, Voronoi cells, and the hull-geometry queries
//! behind the paper's theorems.
//!
//! The SSQ algorithms interrogate convex polygons in a handful of ways:
//!
//! * *point containment* — Theorem 1 (every data point inside `CH(Q)` is a
//!   skyline point) and the B²S² shortcut for entries fully inside the hull;
//! * *rectangle containment / intersection* — the same shortcut applied to
//!   R-tree entries, and the VS² test "does this Voronoi cell intersect the
//!   pruning rectangle B";
//! * *convex–convex intersection* — Theorem 3 (a point whose Voronoi cell
//!   intersects `CH(Q)` is a skyline point);
//! * *tangents and the closer chain* — Lemma 5 (the dominance of `p`
//!   depends only on the hull vertices facing `p`);
//! * *visible regions* — Lemma 6 and the VCS² candidate regions (§5).

use crate::line::{HalfPlane, Segment};
use crate::point::Point;
use crate::predicates::orient2d_sign;
use crate::rect::Rect;

/// A convex polygon stored as counter-clockwise vertices.
///
/// Degenerate polygons are representable: zero vertices (empty), one vertex
/// (a point) and two vertices (a segment). All queries handle them; a
/// degenerate polygon has an empty interior, so e.g.
/// [`ConvexPolygon::contains_strict`] is always `false` for one.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Wraps a vertex list that is **already** convex, counter-clockwise and
    /// free of duplicate/collinear vertices. Debug builds verify the
    /// invariant; use [`crate::hull::convex_hull`] to build from arbitrary
    /// points.
    pub fn from_ccw_vertices(vertices: Vec<Point>) -> ConvexPolygon {
        #[cfg(debug_assertions)]
        {
            let n = vertices.len();
            if n >= 3 {
                for i in 0..n {
                    let a = vertices[i];
                    let b = vertices[(i + 1) % n];
                    let c = vertices[(i + 2) % n];
                    debug_assert_eq!(
                        orient2d_sign(a, b, c),
                        1,
                        "vertices must be strictly convex CCW: {a:?} {b:?} {c:?}"
                    );
                }
            }
        }
        ConvexPolygon { vertices }
    }

    /// The empty polygon.
    pub fn empty() -> ConvexPolygon {
        ConvexPolygon {
            vertices: Vec::new(),
        }
    }

    /// Builds a convex polygon from vertices that are **approximately** in
    /// counter-clockwise boundary order but may contain duplicates, tiny
    /// backward jogs from floating-point noise, or collinear runs — the
    /// typical output of tracing Voronoi-cell circumcenters. Cleans the
    /// ring by deduplicating within `tol` and repeatedly dropping vertices
    /// that do not make a strict left turn.
    ///
    /// The result is a valid (possibly degenerate) convex polygon whose
    /// vertices are a subset of the input.
    pub fn from_ccw_dirty(points: Vec<Point>, tol: f64) -> ConvexPolygon {
        let mut ring: Vec<Point> = Vec::with_capacity(points.len());
        for p in points {
            if ring.last().is_some_and(|&last| last.approx_eq(p, tol)) {
                continue;
            }
            ring.push(p);
        }
        // ssq-analyze: allow(no-panic-transitive): the `ring.len() >= 2` guard makes `last()` infallible
        while ring.len() >= 2 && ring[0].approx_eq(*ring.last().expect("nonempty"), tol) {
            ring.pop();
        }
        // Drop non-left-turn vertices until the ring is strictly convex.
        'outer: while ring.len() >= 3 {
            let n = ring.len();
            for i in 0..n {
                let a = ring[(i + n - 1) % n];
                let b = ring[i];
                let c = ring[(i + 1) % n];
                if orient2d_sign(a, b, c) <= 0 {
                    ring.remove(i);
                    continue 'outer;
                }
            }
            break;
        }
        if ring.len() == 2 && ring[0] == ring[1] {
            ring.pop();
        }
        ConvexPolygon { vertices: ring }
    }

    /// The vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// `true` when the polygon has fewer than three vertices and therefore
    /// an empty interior (point, segment or nothing).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.vertices.len() < 3
    }

    /// The edges as segments, in counter-clockwise order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..if n >= 3 { n } else { n.saturating_sub(1) })
            .map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Index of `p` among the vertices, if it is one.
    pub fn vertex_index(&self, p: Point) -> Option<usize> {
        self.vertices.iter().position(|&v| v == p)
    }

    /// `true` when `p` lies inside the polygon or on its boundary.
    pub fn contains(&self, p: Point) -> bool {
        match self.vertices.len() {
            0 => false,
            1 => self.vertices[0] == p,
            2 => {
                let (a, b) = (self.vertices[0], self.vertices[1]);
                orient2d_sign(a, b, p) == 0
                    && p.x >= a.x.min(b.x)
                    && p.x <= a.x.max(b.x)
                    && p.y >= a.y.min(b.y)
                    && p.y <= a.y.max(b.y)
            }
            n => {
                for i in 0..n {
                    if orient2d_sign(self.vertices[i], self.vertices[(i + 1) % n], p) < 0 {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// `true` when `p` lies strictly inside the polygon.
    pub fn contains_strict(&self, p: Point) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        for i in 0..n {
            if orient2d_sign(self.vertices[i], self.vertices[(i + 1) % n], p) <= 0 {
                return false;
            }
        }
        true
    }

    /// `true` when the whole rectangle lies inside the (closed) polygon.
    /// By convexity it suffices to test the four corners.
    pub fn contains_rect(&self, r: &Rect) -> bool {
        !r.is_empty() && r.corners().iter().all(|&c| self.contains(c))
    }

    /// `true` when the polygon and the rectangle share at least one point.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        if r.is_empty() || self.is_empty() {
            return false;
        }
        // Any polygon vertex inside the rect, or any rect corner inside the
        // polygon, or any pair of edges crossing.
        if self.vertices.iter().any(|&v| r.contains(v)) {
            return true;
        }
        if r.corners().iter().any(|&c| self.contains(c)) {
            return true;
        }
        let rc = r.corners();
        let redges: Vec<Segment> = (0..4)
            .map(|i| Segment::new(rc[i], rc[(i + 1) % 4]))
            .collect();
        self.edges()
            .any(|e| redges.iter().any(|re| e.intersects(re)))
    }

    /// `true` when the two convex polygons share at least one point
    /// (boundaries count). This is the Theorem 3 test: "the Voronoi cell of
    /// `p` intersects `CH(Q)`".
    pub fn intersects_convex(&self, other: &ConvexPolygon) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if self.vertices.iter().any(|&v| other.contains(v)) {
            return true;
        }
        if other.vertices.iter().any(|&v| self.contains(v)) {
            return true;
        }
        let other_edges: Vec<Segment> = other.edges().collect();
        self.edges()
            .any(|e| other_edges.iter().any(|oe| e.intersects(oe)))
    }

    /// Polygon area (0 for degenerate polygons).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut twice = 0.0;
        for i in 0..n {
            twice += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        twice / 2.0
    }

    /// The centroid (mean of vertices for degenerate polygons, area centroid
    /// otherwise).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        if n == 0 {
            return Point::ORIGIN;
        }
        if n < 3 {
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, &v| acc + v);
            return sum / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut twice_area = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let w = a.cross(b);
            twice_area += w;
            cx += (a.x + b.x) * w;
            cy += (a.y + b.y) * w;
        }
        Point::new(cx / (3.0 * twice_area), cy / (3.0 * twice_area))
    }

    /// The polygon's minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.vertices.iter().copied())
    }

    /// Minimum distance from `p` to the (closed) polygon: 0 when inside.
    pub fn distance(&self, p: Point) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        match self.vertices.len() {
            0 => f64::INFINITY,
            1 => self.vertices[0].distance(p),
            _ => self
                .edges()
                .map(|e| e.distance(p))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Clips the polygon to the closed half-plane (one Sutherland–Hodgman
    /// step). The result is again convex.
    pub fn clip_halfplane(&self, h: &HalfPlane) -> ConvexPolygon {
        let n = self.vertices.len();
        match n {
            0 => ConvexPolygon::empty(),
            1 => {
                if h.contains(self.vertices[0]) {
                    self.clone()
                } else {
                    ConvexPolygon::empty()
                }
            }
            _ => {
                let mut out: Vec<Point> = Vec::with_capacity(n + 1);
                // For a 2-vertex "polygon" (segment) walk it as an open
                // chain; for a real polygon walk the closed ring.
                let ring: Vec<Point> = if n == 2 {
                    self.vertices.clone()
                } else {
                    let mut v = self.vertices.clone();
                    v.push(self.vertices[0]);
                    v
                };
                for w in ring.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let (ia, ib) = (h.contains(a), h.contains(b));
                    if ia {
                        push_unique(&mut out, a);
                    }
                    if ia != ib {
                        if let Some(x) = h.boundary.intersect(&Segment::new(a, b).line()) {
                            // Clamp to the segment to guard against
                            // floating-point drift.
                            push_unique(&mut out, Segment::new(a, b).closest_point(x));
                        }
                    }
                }
                if n == 2 {
                    if let Some(&last) = ring.last() {
                        if h.contains(last) {
                            push_unique(&mut out, last);
                        }
                    }
                }
                dedup_ring(&mut out);
                ConvexPolygon { vertices: out }
            }
        }
    }

    /// Clips the polygon to a rectangle. The result is again convex.
    pub fn clip_rect(&self, r: &Rect) -> ConvexPolygon {
        if r.is_empty() {
            return ConvexPolygon::empty();
        }
        let c = r.corners();
        let mut poly = self.clone();
        for i in 0..4 {
            poly = poly.clip_halfplane(&HalfPlane::left_of(c[i], c[(i + 1) % 4]));
            if poly.is_empty() {
                break;
            }
        }
        poly
    }

    /// The *closer chain* `CHv⁺(Q)` of hull vertices seen from the external
    /// point `p` (Lemma 5): the vertices incident to at least one edge whose
    /// outside contains `p`. The dominance of `p` depends only on these
    /// vertices.
    ///
    /// Returns the vertex **indices** of the chain. For `p` inside the
    /// (closed) hull — where no edge is visible — the result is empty; for
    /// degenerate hulls every vertex is returned (conservative).
    pub fn closer_chain(&self, p: Point) -> Vec<usize> {
        let n = self.vertices.len();
        if n < 3 {
            return (0..n).collect();
        }
        let mut incident = vec![false; n];
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if orient2d_sign(a, b, p) < 0 {
                incident[i] = true;
                incident[(i + 1) % n] = true;
            }
        }
        (0..n).filter(|&i| incident[i]).collect()
    }

    /// The *visible region* of vertex `i` (paper Fig. 9 / Lemma 6): the
    /// union of the two half-planes bounded by the lines through the edges
    /// adjacent to vertex `i`, on the side **away** from the hull. A data
    /// point's dominance depends on query point `q = vertex i` exactly when
    /// the data point lies in this region.
    ///
    /// For degenerate hulls (fewer than 3 vertices) the whole plane is
    /// returned as a conservative over-approximation.
    pub fn visible_region(&self, i: usize) -> VisibleRegion {
        let n = self.vertices.len();
        if n < 3 {
            return VisibleRegion::WholePlane;
        }
        let prev = self.vertices[(i + n - 1) % n];
        let v = self.vertices[i];
        let next = self.vertices[(i + 1) % n];
        VisibleRegion::Wedges {
            e1: (prev, v),
            e2: (v, next),
        }
    }
}

/// The visible region of a convex-hull vertex — see
/// [`ConvexPolygon::visible_region`].
#[derive(Clone, Copy, Debug)]
pub enum VisibleRegion {
    /// Conservative fallback for degenerate hulls: every point is "visible".
    WholePlane,
    /// The union of the outsides of the two edges adjacent to the vertex
    /// (each edge stored as a CCW-directed pair, so "outside" is its right
    /// side).
    Wedges {
        /// The CCW edge entering the vertex.
        e1: (Point, Point),
        /// The CCW edge leaving the vertex.
        e2: (Point, Point),
    },
}

impl VisibleRegion {
    /// `true` when `p` lies in the (closed) visible region.
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            VisibleRegion::WholePlane => true,
            VisibleRegion::Wedges { e1, e2 } => {
                orient2d_sign(e1.0, e1.1, p) <= 0 || orient2d_sign(e2.0, e2.1, p) <= 0
            }
        }
    }
}

/// Pushes `p` unless it duplicates the last pushed vertex.
fn push_unique(out: &mut Vec<Point>, p: Point) {
    if out.last().is_none_or(|&last| !last.approx_eq(p, 1e-12)) {
        out.push(p);
    }
}

/// Removes a duplicated first/last vertex produced by clipping.
fn dedup_ring(out: &mut Vec<Point>) {
    while out.len() >= 2 {
        let first = out[0];
        // ssq-analyze: allow(no-panic-transitive): the `out.len() >= 2` loop condition makes `last()` infallible
        let last = *out.last().expect("nonempty");
        if first.approx_eq(last, 1e-12) {
            out.pop();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)])
    }

    fn triangle() -> ConvexPolygon {
        ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(6.0, 0.0), p(3.0, 6.0)])
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(sq.contains(p(2.0, 2.0)));
        assert!(sq.contains(p(0.0, 0.0))); // vertex
        assert!(sq.contains(p(2.0, 0.0))); // edge
        assert!(!sq.contains(p(5.0, 2.0)));
        assert!(sq.contains_strict(p(2.0, 2.0)));
        assert!(!sq.contains_strict(p(2.0, 0.0))); // edge is not strict
    }

    #[test]
    fn degenerate_containment() {
        let pt = ConvexPolygon::from_ccw_vertices(vec![p(1.0, 1.0)]);
        assert!(pt.contains(p(1.0, 1.0)));
        assert!(!pt.contains(p(1.0, 1.1)));
        assert!(!pt.contains_strict(p(1.0, 1.0)));

        let seg = ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(2.0, 2.0)]);
        assert!(seg.contains(p(1.0, 1.0)));
        assert!(!seg.contains(p(1.0, 1.5)));
        assert!(!seg.contains(p(3.0, 3.0))); // beyond the endpoint
        assert!(!seg.contains_strict(p(1.0, 1.0)));
    }

    #[test]
    fn rect_containment_and_intersection() {
        let sq = unit_square();
        let inside = Rect::from_corners(p(1.0, 1.0), p(2.0, 2.0));
        let overlapping = Rect::from_corners(p(3.0, 3.0), p(6.0, 6.0));
        let outside = Rect::from_corners(p(10.0, 10.0), p(12.0, 12.0));
        let surrounding = Rect::from_corners(p(-1.0, -1.0), p(5.0, 5.0));
        assert!(sq.contains_rect(&inside));
        assert!(!sq.contains_rect(&overlapping));
        assert!(sq.intersects_rect(&inside));
        assert!(sq.intersects_rect(&overlapping));
        assert!(!sq.intersects_rect(&outside));
        assert!(sq.intersects_rect(&surrounding)); // rect contains polygon
    }

    #[test]
    fn rect_crossing_without_contained_vertices() {
        // A thin rect slicing through the triangle: no vertex of either
        // shape is inside the other, only edges cross.
        let tri = triangle();
        let slab = Rect::from_corners(p(-10.0, 2.0), p(10.0, 2.5));
        // Triangle vertices: none inside slab; slab corners: outside triangle.
        assert!(tri.intersects_rect(&slab));
    }

    #[test]
    fn convex_convex_intersection() {
        let a = unit_square();
        let b = ConvexPolygon::from_ccw_vertices(vec![p(3.0, 3.0), p(7.0, 3.0), p(5.0, 7.0)]);
        let c = ConvexPolygon::from_ccw_vertices(vec![p(10.0, 10.0), p(12.0, 10.0), p(11.0, 12.0)]);
        assert!(a.intersects_convex(&b));
        assert!(b.intersects_convex(&a));
        assert!(!a.intersects_convex(&c));
        // Containment counts as intersection.
        let tiny = ConvexPolygon::from_ccw_vertices(vec![p(1.0, 1.0), p(1.5, 1.0), p(1.2, 1.4)]);
        assert!(a.intersects_convex(&tiny));
        assert!(tiny.intersects_convex(&a));
    }

    #[test]
    fn area_and_centroid() {
        assert_eq!(unit_square().area(), 16.0);
        assert_eq!(triangle().area(), 18.0);
        assert_eq!(unit_square().centroid(), p(2.0, 2.0));
        let c = triangle().centroid();
        assert!(c.approx_eq(p(3.0, 2.0), 1e-12));
    }

    #[test]
    fn mbr_covers_polygon() {
        let t = triangle();
        let m = t.mbr();
        assert_eq!(m, Rect::from_corners(p(0.0, 0.0), p(6.0, 6.0)));
    }

    #[test]
    fn distance_to_polygon() {
        let sq = unit_square();
        assert_eq!(sq.distance(p(2.0, 2.0)), 0.0);
        assert_eq!(sq.distance(p(6.0, 2.0)), 2.0);
        assert_eq!(sq.distance(p(7.0, 8.0)), 5.0); // corner 3-4-5
    }

    #[test]
    fn clip_halfplane_cuts_square() {
        let sq = unit_square();
        // Keep the left half x <= 2: half-plane left of the upward line
        // x = 2.
        let h = HalfPlane::left_of(p(2.0, -10.0), p(2.0, 10.0));
        let clipped = sq.clip_halfplane(&h);
        assert!((clipped.area() - 8.0).abs() < 1e-9);
        assert!(clipped.contains(p(1.0, 2.0)));
        assert!(!clipped.contains(p(3.0, 2.0)));
    }

    #[test]
    fn clip_halfplane_disjoint_gives_empty() {
        let sq = unit_square();
        let h = HalfPlane::left_of(p(10.0, 10.0), p(10.0, -10.0)); // x >= 10
        assert!(sq.clip_halfplane(&h).is_empty());
    }

    #[test]
    fn clip_rect_intersection_area() {
        let tri = triangle();
        let r = Rect::from_corners(p(0.0, 0.0), p(6.0, 3.0));
        let clipped = tri.clip_rect(&r);
        // The part of the triangle below y=3 is the full triangle minus the
        // similar top triangle with half the height: 18 - 18/4 = 13.5.
        assert!((clipped.area() - 13.5).abs() < 1e-9, "{}", clipped.area());
    }

    #[test]
    fn closer_chain_faces_the_point() {
        let sq = unit_square(); // vertices 0..4 CCW from (0,0)
                                // p to the right of the square sees edge (4,0)-(4,4): vertices 1,2.
        let chain = sq.closer_chain(p(10.0, 2.0));
        assert_eq!(chain, vec![1, 2]);
        // p at the lower-right corner direction sees two edges: 0-1 and 1-2.
        let chain = sq.closer_chain(p(10.0, -10.0));
        assert_eq!(chain, vec![0, 1, 2]);
        // inside: nothing visible.
        assert!(sq.closer_chain(p(2.0, 2.0)).is_empty());
    }

    #[test]
    fn visible_region_of_vertex() {
        let sq = unit_square();
        // Vertex 1 is (4,0); its adjacent edges are (0,0)->(4,0) and
        // (4,0)->(4,4). Points below y=0 or right of x=4 see it.
        let vr = sq.visible_region(1);
        assert!(vr.contains(p(2.0, -1.0)));
        assert!(vr.contains(p(5.0, 2.0)));
        assert!(vr.contains(p(10.0, -10.0)));
        assert!(!vr.contains(p(2.0, 2.0))); // interior
        assert!(!vr.contains(p(-1.0, 5.0))); // opposite side
    }

    #[test]
    fn visible_region_degenerate_is_whole_plane() {
        let seg = ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(1.0, 0.0)]);
        assert!(seg.visible_region(0).contains(p(100.0, 100.0)));
    }

    #[test]
    fn clip_segment_polygon() {
        let seg = ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(10.0, 0.0)]);
        let h = HalfPlane::left_of(p(4.0, -10.0), p(4.0, 10.0)); // x <= 4
        let clipped = seg.clip_halfplane(&h);
        assert_eq!(clipped.len(), 2);
        assert!(clipped.contains(p(2.0, 0.0)));
        assert!(!clipped.contains(p(6.0, 0.0)));
    }

    #[test]
    fn edges_iterate_ring() {
        let sq = unit_square();
        let edges: Vec<Segment> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, p(0.0, 0.0)); // closes the ring
        let seg = ConvexPolygon::from_ccw_vertices(vec![p(0.0, 0.0), p(1.0, 0.0)]);
        assert_eq!(seg.edges().count(), 1); // open chain, not a ring
    }
}
