//! Axis-aligned rectangles (minimum bounding rectangles).
//!
//! Rectangles are the currency of R-tree pruning. B²S² additionally
//! maintains a rectangle `B` — the intersection of the `MBR(SR(p, Q))`
//! boxes of the skyline points found so far — and discards any R-tree entry
//! disjoint from `B` (paper §4.1).

use crate::point::Point;

/// An axis-aligned rectangle, stored as its min and max corners.
///
/// The empty rectangle (used as the identity of [`Rect::intersection`]
/// chains that have run dry) is representable: any rect with
/// `min.x > max.x` or `min.y > max.y` is treated as empty.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// An empty rectangle: intersects nothing, contains nothing, and is the
    /// identity for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// The whole plane: contains everything and is the identity for
    /// [`Rect::intersection`]. B²S² initializes its pruning rectangle `B`
    /// to the data universe; `EVERYTHING` is the safe over-approximation.
    pub const EVERYTHING: Rect = Rect {
        min: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
        max: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
    };

    /// Creates a rectangle from two opposite corners (in any order).
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a degenerate rectangle containing exactly `p`.
    pub fn from_point(p: Point) -> Rect {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle containing every point of `pts`, or
    /// [`Rect::EMPTY`] if `pts` is empty.
    pub fn bounding(pts: impl IntoIterator<Item = Point>) -> Rect {
        pts.into_iter()
            .fold(Rect::EMPTY, |r, p| r.union(&Rect::from_point(p)))
    }

    /// `true` when the rectangle contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (0 for degenerate/empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (0 for degenerate/empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area (0 for empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Perimeter (0 for empty rectangles). Used by the R* split heuristic.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * (self.width() + self.height())
        }
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when `other` lies entirely inside `self` (boundaries may
    /// touch). The empty rectangle is contained in everything.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min.x >= self.min.x
                && other.max.x <= self.max.x
                && other.min.y >= self.min.y
                && other.max.y <= self.max.y)
    }

    /// `true` when the rectangles share at least one point (touching
    /// boundaries count).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection of the two rectangles (possibly empty).
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        }
    }

    /// The smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle (in place) to cover `p`.
    pub fn expand_to(&mut self, p: Point) {
        *self = self.union(&Rect::from_point(p));
    }

    /// The closest point of the rectangle to `p` (i.e. `p` clamped to the
    /// rectangle). Meaningless for empty rectangles.
    #[inline]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// `mindist(e, q)`: the minimum Euclidean distance from `p` to any point
    /// of the rectangle; 0 when `p` is inside.
    ///
    /// This is the classic R-tree lower bound used both for best-first NN
    /// search and for the SSQ dominance test on intermediate entries: an
    /// entry `e` is dominated by a skyline point `s` iff
    /// `mindist(e, q) > D(s, q)` for every hull vertex `q`, i.e. `e` misses
    /// every circle `C(q, D(s, q))` (paper §4.1).
    #[inline]
    pub fn mindist(&self, p: Point) -> f64 {
        self.mindist_sq(p).sqrt()
    }

    /// Squared [`Rect::mindist`], avoiding the `sqrt` in hot comparisons.
    #[inline]
    pub fn mindist_sq(&self, p: Point) -> f64 {
        self.clamp_point(p).distance_sq(p)
    }

    /// `maxdist(e, q)`: the maximum Euclidean distance from `p` to any point
    /// of the rectangle (attained at a corner).
    pub fn maxdist(&self, p: Point) -> f64 {
        self.maxdist_sq(p).sqrt()
    }

    /// Squared [`Rect::maxdist`].
    pub fn maxdist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Sum of [`Rect::mindist`] over a set of anchor points.
    ///
    /// This is the `mindist(e, CHv(Q))` monotone ordering key of B²S²
    /// (paper Fig. 5): the sum of minimum distances from the rectangle to
    /// each convex-hull vertex of the query set.
    pub fn mindist_sum(&self, anchors: &[Point]) -> f64 {
        anchors.iter().map(|&q| self.mindist(q)).sum()
    }

    /// Expands each side outward by `margin` (shrinks when negative).
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

impl From<(Point, Point)> for Rect {
    fn from((a, b): (Point, Point)) -> Self {
        Rect::from_corners(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_corners(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn from_corners_normalizes_order() {
        let r = Rect::from_corners(Point::new(3.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(r.min, Point::new(1.0, 1.0));
        assert_eq!(r.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn empty_semantics() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        let r = rect(0.0, 0.0, 1.0, 1.0);
        assert!(!Rect::EMPTY.intersects(&r));
        assert_eq!(Rect::EMPTY.union(&r), r);
        assert!(r.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn everything_is_intersection_identity() {
        let r = rect(-2.0, 3.0, 5.0, 7.0);
        assert_eq!(Rect::EVERYTHING.intersection(&r), r);
        assert!(Rect::EVERYTHING.contains_rect(&r));
    }

    #[test]
    fn area_and_perimeter() {
        let r = rect(0.0, 0.0, 3.0, 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.perimeter(), 14.0);
        assert_eq!(r.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = rect(0.0, 0.0, 10.0, 10.0);
        let b = rect(2.0, 2.0, 5.0, 5.0);
        let c = rect(9.0, 9.0, 12.0, 12.0);
        let d = rect(20.0, 20.0, 30.0, 30.0);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection(&c), rect(9.0, 9.0, 10.0, 10.0));
        assert!(a.intersection(&d).is_empty());
    }

    #[test]
    fn touching_rects_intersect() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn mindist_inside_is_zero() {
        let r = rect(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.mindist(Point::new(2.0, 2.0)), 0.0);
        assert_eq!(r.mindist(Point::new(0.0, 0.0)), 0.0); // boundary
    }

    #[test]
    fn mindist_outside() {
        let r = rect(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.mindist(Point::new(7.0, 2.0)), 3.0); // right side
        assert_eq!(r.mindist(Point::new(7.0, 8.0)), 5.0); // corner 3-4-5
    }

    #[test]
    fn maxdist_is_farthest_corner() {
        let r = rect(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.maxdist(Point::new(0.0, 0.0)), (32.0f64).sqrt());
        assert_eq!(r.maxdist(Point::new(2.0, 2.0)), (8.0f64).sqrt());
    }

    #[test]
    fn mindist_sum_matches_manual() {
        let r = rect(0.0, 0.0, 1.0, 1.0);
        let anchors = [Point::new(3.0, 0.5), Point::new(0.5, 5.0)];
        assert!((r.mindist_sum(&anchors) - (2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn bounding_covers_all_points() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 4.0),
            Point::new(0.0, -1.0),
        ];
        let r = Rect::bounding(pts);
        for p in pts {
            assert!(r.contains(p));
        }
        assert_eq!(r, rect(-3.0, -1.0, 1.0, 4.0));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = rect(0.0, 0.0, 2.0, 2.0).inflate(1.0);
        assert_eq!(r, rect(-1.0, -1.0, 3.0, 3.0));
    }

    #[test]
    fn corners_are_ccw() {
        let c = rect(0.0, 0.0, 2.0, 1.0).corners();
        // shoelace area positive => counter-clockwise
        let mut area2 = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            area2 += a.cross(b);
        }
        assert!(area2 > 0.0);
    }
}
