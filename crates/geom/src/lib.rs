//! # ssq-geom
//!
//! The 2-D computational-geometry substrate for the spatial skyline query
//! (SSQ) library, reproducing the geometric machinery of Sharifzadeh &
//! Shahabi, *The Spatial Skyline Queries*, VLDB 2006.
//!
//! The SSQ algorithms (B²S², VS², VCS²) lean on a small set of geometric
//! facts about points, rectangles, circles, perpendicular bisectors and the
//! convex hull of the query set. This crate provides exactly those
//! primitives, built from scratch:
//!
//! * [`Point`] — a point in `R²` with Euclidean vector arithmetic;
//! * [`Rect`] — axis-aligned rectangles with `mindist`/`maxdist`, the
//!   workhorse of R-tree pruning;
//! * [`Circle`] — the dominance circles `C(q, D(q, p))` of the paper;
//! * [`Line`], [`Segment`], [`HalfPlane`] — perpendicular bisectors and the
//!   half-plane reasoning behind the dominance lemmas;
//! * [`ConvexPolygon`] and the hull constructors in [`hull`] — `CH(Q)`, its
//!   tangents and visible regions (paper §5);
//! * adaptive-precision [`predicates`] (`orient2d`, `incircle`) in the style
//!   of Shewchuk, so the Delaunay substrate is robust against the
//!   floating-point degeneracies that plague naive implementations;
//! * [`Metric`] — pluggable distance metrics obeying the triangle
//!   inequality, as required by the paper's problem definition (§2.2);
//! * [`kernel`] — allocation-free distance/dominance kernels over flat
//!   `f64` rows, including the squared-distance fast path;
//! * [`simd`] — data-parallel tile kernels (lane-aligned AoSoA distance
//!   tiles, bitmask dominance sweeps) behind a runtime-detected
//!   scalar/tiled/SSE2/AVX2 dispatch table.
//!
//! All coordinates are `f64`. The predicates are exact for all `f64`
//! inputs; everything else uses ordinary floating-point arithmetic with
//! explicit, documented tolerance choices.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod circle;
pub mod convex;
pub mod hull;
pub mod kernel;
pub mod line;
pub mod metric;
pub mod point;
pub mod predicates;
pub mod rect;
pub mod simd;

pub use circle::Circle;
pub use convex::ConvexPolygon;
pub use hull::{convex_hull, graham_scan, monotone_chain, monotone_chain_into, HullScratch};
pub use line::{HalfPlane, Line, Segment};
pub use metric::{Chebyshev, Euclidean, Manhattan, Metric};
pub use point::Point;
pub use predicates::{incircle, orient2d, Orientation};
pub use rect::Rect;
