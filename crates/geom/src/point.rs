//! Points in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (equivalently, a vector) in `R²`.
///
/// `Point` is the coordinate type shared by every crate in the workspace:
/// data points `p ∈ P`, query points `q ∈ Q`, Voronoi vertices, rectangle
/// corners and so on. It is a plain `Copy` pair of `f64`s with the usual
/// vector arithmetic.
///
/// # Examples
///
/// ```
/// use ssq_geom::Point;
///
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.distance(Point::ORIGIN), 5.0);
/// assert_eq!((p + Point::new(1.0, -4.0)), Point::new(4.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// The x coordinate.
    pub x: f64,
    /// The y coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Comparing squared distances avoids the `sqrt` in hot paths; the
    /// ordering is identical because `sqrt` is monotone.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product, treating both points as vectors.
    ///
    /// Positive when `other` is counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Rotates the vector by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Returns the unit vector in the direction of `self`, or `None` for the
    /// zero vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`.
    ///
    /// Hull construction and canonicalization need a total order on points;
    /// `f64` only offers `PartialOrd`, so we expose the lexicographic order
    /// explicitly (callers must not pass NaN coordinates).
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x.total_cmp(&other.x).then(self.y.total_cmp(&other.y))
    }

    /// `true` when `self` and `other` coincide within `tol` in both
    /// coordinates.
    #[inline]
    pub fn approx_eq(self, other: Point, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol && (self.y - other.y).abs() <= tol
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_positive() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!(a.distance(b) > 0.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(0.5, -0.25);
        let b = Point::new(2.0, 7.0);
        assert!((a.distance(b).powi(2) - a.distance_sq(b)).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0); // CCW
        assert!(north.cross(east) < 0.0); // CW
        assert_eq!(east.cross(east), 0.0); // collinear
    }

    #[test]
    fn perp_rotates_ccw() {
        assert_eq!(Point::new(1.0, 0.0).perp(), Point::new(0.0, 1.0));
        assert_eq!(Point::new(0.0, 1.0).perp(), Point::new(-1.0, 0.0));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 8.0);
        assert_eq!(a.midpoint(b), Point::new(2.0, 4.0));
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering::*;
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 6.0);
        assert_eq!(a.lex_cmp(&b), Less);
        assert_eq!(b.lex_cmp(&a), Greater);
        assert_eq!(a.lex_cmp(&c), Less);
        assert_eq!(a.lex_cmp(&a), Equal);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }
}
