//! Distance metrics.
//!
//! The paper defines spatial dominance for any distance function `D(·,·)`
//! obeying the triangle inequality (§2.2) but develops the geometric
//! machinery (bisectors, circles, Voronoi diagrams) for the Euclidean
//! metric, which is also what the experiments use. We mirror that: the
//! [`Metric`] trait makes the *dominance definitions and the naive
//! algorithm* metric-generic, while the geometric algorithms (B²S², VS²,
//! VCS²) are Euclidean, as in the paper.

use crate::point::Point;

/// A distance metric on `R²` obeying the triangle inequality.
pub trait Metric: Copy + Send + Sync + 'static {
    /// The distance between two points.
    fn distance(&self, a: Point, b: Point) -> f64;

    /// A value that orders pairs identically to [`Metric::distance`]
    /// but may skip expensive operations (e.g. the square root of the
    /// Euclidean metric). Defaults to the distance itself.
    #[inline]
    fn distance_cmp(&self, a: Point, b: Point) -> f64 {
        self.distance(a, b)
    }
}

/// The Euclidean (`L2`) metric — the metric of the paper's algorithms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn distance(&self, a: Point, b: Point) -> f64 {
        a.distance(b)
    }

    #[inline]
    fn distance_cmp(&self, a: Point, b: Point) -> f64 {
        a.distance_sq(b)
    }
}

/// The Manhattan (`L1`) metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn distance(&self, a: Point, b: Point) -> f64 {
        (a.x - b.x).abs() + (a.y - b.y).abs()
    }
}

/// The Chebyshev (`L∞`) metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn distance(&self, a: Point, b: Point) -> f64 {
        (a.x - b.x).abs().max((a.y - b.y).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn euclidean_matches_point_distance() {
        assert_eq!(Euclidean.distance(p(0.0, 0.0), p(3.0, 4.0)), 5.0);
        assert_eq!(Euclidean.distance_cmp(p(0.0, 0.0), p(3.0, 4.0)), 25.0);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Manhattan.distance(p(0.0, 0.0), p(3.0, 4.0)), 7.0);
        assert_eq!(Chebyshev.distance(p(0.0, 0.0), p(3.0, 4.0)), 4.0);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let pts = [p(0.0, 0.0), p(2.5, -1.0), p(-3.0, 4.0)];
        fn check<M: Metric>(m: M, pts: &[Point; 3]) {
            let (a, b, c) = (pts[0], pts[1], pts[2]);
            assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-12);
        }
        check(Euclidean, &pts);
        check(Manhattan, &pts);
        check(Chebyshev, &pts);
    }

    #[test]
    fn metrics_are_symmetric_and_zero_on_diagonal() {
        fn check<M: Metric>(m: M) {
            let a = p(1.25, -7.5);
            let b = p(-0.5, 3.0);
            assert_eq!(m.distance(a, b), m.distance(b, a));
            assert_eq!(m.distance(a, a), 0.0);
        }
        check(Euclidean);
        check(Manhattan);
        check(Chebyshev);
    }
}
