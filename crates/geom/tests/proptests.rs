//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use ssq_geom::predicates::{incircle_sign, orient2d_sign};
use ssq_geom::{convex_hull, graham_scan, Circle, HalfPlane, Point, Rect};

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn pts(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn orient2d_antisymmetry_and_cyclicity(a in pt(), b in pt(), c in pt()) {
        let s = orient2d_sign(a, b, c);
        prop_assert_eq!(s, orient2d_sign(b, c, a));
        prop_assert_eq!(s, orient2d_sign(c, a, b));
        prop_assert_eq!(-s, orient2d_sign(b, a, c));
        prop_assert_eq!(-s, orient2d_sign(a, c, b));
    }

    #[test]
    fn orient2d_degenerate_duplicates(a in pt(), b in pt()) {
        prop_assert_eq!(orient2d_sign(a, a, b), 0);
        prop_assert_eq!(orient2d_sign(a, b, a), 0);
        prop_assert_eq!(orient2d_sign(b, a, a), 0);
    }

    #[test]
    fn incircle_symmetry_under_even_permutation(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s = incircle_sign(a, b, c, d);
        // Even permutations of (a, b, c) preserve the sign.
        prop_assert_eq!(s, incircle_sign(b, c, a, d));
        prop_assert_eq!(s, incircle_sign(c, a, b, d));
        // Odd permutations flip it.
        prop_assert_eq!(-s, incircle_sign(b, a, c, d));
    }

    #[test]
    fn hull_contains_inputs_and_is_convex(points in pts(40)) {
        let h = convex_hull(&points);
        for &p in &points {
            prop_assert!(h.contains(p), "input {:?} escaped hull", p);
        }
        let v = h.vertices();
        if v.len() >= 3 {
            for i in 0..v.len() {
                prop_assert_eq!(
                    orient2d_sign(v[i], v[(i + 1) % v.len()], v[(i + 2) % v.len()]),
                    1
                );
            }
        }
    }

    #[test]
    fn hull_is_idempotent(points in pts(30)) {
        let h1 = convex_hull(&points);
        let h2 = convex_hull(h1.vertices());
        prop_assert_eq!(h1.vertices(), h2.vertices());
    }

    #[test]
    fn graham_equals_monotone_chain(points in pts(30)) {
        let g = graham_scan(&points);
        let m = convex_hull(&points);
        prop_assert_eq!(g.vertices(), m.vertices());
    }

    #[test]
    fn hull_vertices_are_extreme(points in pts(25)) {
        // Removing any hull vertex must change the hull (vertices are
        // irredundant).
        let h = convex_hull(&points);
        for &v in h.vertices() {
            let rest: Vec<Point> = points.iter().copied().filter(|&p| p != v).collect();
            let h2 = convex_hull(&rest);
            prop_assert!(!h2.vertices().contains(&v));
        }
    }

    #[test]
    fn bisector_halfplane_matches_metric(a in pt(), b in pt(), probe in pt()) {
        prop_assume!(a != b);
        let h = HalfPlane::closer_to(a, b);
        let closer = probe.distance_sq(a) < probe.distance_sq(b);
        // On the exact bisector the closed test may differ; skip ties.
        prop_assume!((probe.distance_sq(a) - probe.distance_sq(b)).abs() > 1e-9);
        prop_assert_eq!(h.contains_strict(probe), closer);
    }

    #[test]
    fn rect_mindist_maxdist_bracket_true_distance(
        a in pt(), b in pt(), q in pt(), t in 0.0f64..1.0, u in 0.0f64..1.0,
    ) {
        let r = Rect::from_corners(a, b);
        // A point inside the rect by construction:
        let inside = Point::new(
            r.min.x + t * (r.max.x - r.min.x),
            r.min.y + u * (r.max.y - r.min.y),
        );
        let d = q.distance(inside);
        prop_assert!(r.mindist(q) <= d + 1e-9);
        prop_assert!(r.maxdist(q) >= d - 1e-9);
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in pt(), b in pt(), c in pt(), d in pt()) {
        let r1 = Rect::from_corners(a, b);
        let r2 = Rect::from_corners(c, d);
        let i = r1.intersection(&r2);
        if !i.is_empty() {
            prop_assert!(r1.contains_rect(&i));
            prop_assert!(r2.contains_rect(&i));
            prop_assert!(r1.intersects(&r2));
        } else {
            prop_assert!(!r1.intersects(&r2) || i.area() == 0.0);
        }
    }

    #[test]
    fn circle_rect_tests_agree_with_sampling(center in pt(), radius in 0.1f64..50.0, a in pt(), b in pt()) {
        let c = Circle::new(center, radius);
        let r = Rect::from_corners(a, b);
        if c.contains_rect(&r) {
            // All corners inside.
            for corner in r.corners() {
                prop_assert!(c.contains(corner));
            }
            prop_assert!(c.intersects_rect(&r));
        }
        if !c.intersects_rect(&r) {
            // No corner inside, and center's clamp is outside the circle.
            for corner in r.corners() {
                prop_assert!(!c.contains(corner));
            }
        }
    }

    #[test]
    fn clip_halfplane_shrinks_area(points in pts(20), a in pt(), b in pt()) {
        prop_assume!(a != b);
        let h = convex_hull(&points);
        prop_assume!(!h.is_degenerate());
        let clipped = h.clip_halfplane(&HalfPlane::left_of(a, b));
        prop_assert!(clipped.area() <= h.area() + 1e-6);
        // Every clipped vertex is in the original hull (within tolerance)
        // and in the half-plane.
        for &v in clipped.vertices() {
            prop_assert!(h.distance(v) < 1e-6);
        }
    }

    #[test]
    fn closer_chain_is_contiguous_and_nonempty_outside(points in pts(20), q in pt()) {
        let h = convex_hull(&points);
        prop_assume!(!h.is_degenerate());
        prop_assume!(!h.contains(q));
        let chain = h.closer_chain(q);
        prop_assert!(!chain.is_empty(), "external point must see some edge");
        // The chain indices are sorted and form a contiguous run on the
        // hull ring (possibly wrapping).
        let n = h.len();
        let in_chain: Vec<bool> = (0..n).map(|i| chain.contains(&i)).collect();
        let transitions = (0..n)
            .filter(|&i| in_chain[i] != in_chain[(i + 1) % n])
            .count();
        prop_assert!(transitions <= 2, "chain must be one contiguous arc");
    }
}
