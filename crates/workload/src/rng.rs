//! Deterministic PRNG for workload generation.
//!
//! The generator itself lives in the dependency-free [`ssq_rng`] crate so
//! that leaf crates (`ssq-geom`, `ssq-rtree`, `ssq-delaunay`) can share it
//! in their randomized test suites; this module re-exports it under the
//! historical `ssq_workload::rng` path.

pub use ssq_rng::Xoshiro256;
