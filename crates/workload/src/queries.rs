//! Query-set generators.
//!
//! The paper's experiments vary two query parameters (§7, Fig. 12):
//! the number of query points `|Q|` (2–10) and the area covered by
//! `MBR(Q)` as a fraction of the universe (0.01%–0.7%). A query set is a
//! batch of points placed inside a randomly positioned box of the target
//! area.

use ssq_geom::{Point, Rect};

use crate::rng::Xoshiro256;

/// Parameters of a random query set.
#[derive(Clone, Copy, Debug)]
pub struct QueryConfig {
    /// Number of query points `|Q|`.
    pub count: usize,
    /// Area of `MBR(Q)` as a fraction of the universe area (e.g. `0.001`
    /// for the paper's 0.1%).
    pub mbr_area_fraction: f64,
    /// The universe rectangle the query box is placed in.
    pub universe: Rect,
    /// RNG seed.
    pub seed: u64,
}

impl QueryConfig {
    /// The paper's default setting: `MBR(Q)` covering 0.1% of the unit
    /// universe.
    pub fn paper_default(count: usize, seed: u64) -> QueryConfig {
        QueryConfig {
            count,
            mbr_area_fraction: 0.001,
            universe: Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            seed,
        }
    }
}

/// Draws a random query set: a square box of the target area placed
/// uniformly inside the universe, then `count` points uniform in the box,
/// with the first two nudged to opposite corners so the realized `MBR(Q)`
/// actually attains (approximately) the target area.
pub fn random_query_set(config: &QueryConfig) -> Vec<Point> {
    assert!(config.count >= 1, "a query set needs at least one point");
    assert!(
        config.mbr_area_fraction > 0.0 && config.mbr_area_fraction <= 1.0,
        "area fraction must be in (0, 1]"
    );
    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let u = config.universe;
    let side = (u.area() * config.mbr_area_fraction).sqrt();
    let side = side.min(u.width()).min(u.height());

    let ox = u.min.x + rng.f64() * (u.width() - side);
    let oy = u.min.y + rng.f64() * (u.height() - side);
    let boxx = Rect::from_corners(Point::new(ox, oy), Point::new(ox + side, oy + side));

    let mut q: Vec<Point> = Vec::with_capacity(config.count);
    let mut seen = std::collections::HashSet::new();
    while q.len() < config.count {
        let p = if q.is_empty() {
            boxx.min
        } else if q.len() == 1 {
            boxx.max
        } else {
            Point::new(ox + rng.f64() * side, oy + rng.f64() * side)
        };
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            q.push(p);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_count_and_area() {
        for count in [1, 2, 4, 8, 16] {
            let cfg = QueryConfig::paper_default(count, 7);
            let q = random_query_set(&cfg);
            assert_eq!(q.len(), count);
            let mbr = Rect::bounding(q.iter().copied());
            if count >= 2 {
                let frac = mbr.area() / cfg.universe.area();
                assert!(
                    (frac - cfg.mbr_area_fraction).abs() < 0.2 * cfg.mbr_area_fraction,
                    "count {count}: got area fraction {frac}"
                );
            }
            for p in &q {
                assert!(cfg.universe.contains(*p));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QueryConfig::paper_default(5, 42);
        assert_eq!(random_query_set(&cfg), random_query_set(&cfg));
        let other = QueryConfig::paper_default(5, 43);
        assert_ne!(random_query_set(&cfg), random_query_set(&other));
    }

    #[test]
    fn area_sweep_produces_growing_boxes() {
        let mut last = 0.0;
        for frac in [0.0001, 0.0005, 0.001, 0.003, 0.007] {
            let cfg = QueryConfig {
                count: 6,
                mbr_area_fraction: frac,
                universe: Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                seed: 1,
            };
            let q = random_query_set(&cfg);
            let area = Rect::bounding(q.iter().copied()).area();
            assert!(area > last, "areas must grow along the sweep");
            last = area;
        }
    }

    #[test]
    fn points_are_distinct() {
        let q = random_query_set(&QueryConfig::paper_default(50, 3));
        let mut keys: Vec<_> = q.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 50);
    }
}
