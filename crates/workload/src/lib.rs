//! # ssq-workload
//!
//! Synthetic datasets, query generators and moving-object streams for the
//! SSQ experiments (paper §7).
//!
//! The paper evaluates on a USGS extract of business locations (Table 5)
//! plus synthetically moving query objects. The real extract is not
//! redistributable, so [`usgs`] generates a statistically similar
//! substitute: the same eight category labels with a skewed mix, placed in
//! Gaussian population clusters over a unit universe — the properties
//! (skew, clustering, density variation) that actually drive the
//! algorithms' relative costs. [`queries`] draws query sets with a
//! controlled `MBR(Q)` area fraction, matching the paper's 0.01%–0.7%
//! sweeps, and [`motion`] produces the random-waypoint streams used by the
//! continuous (VCS²) experiments.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod motion;
pub mod queries;
pub mod rng;
pub mod usgs;

pub use motion::{MotionConfig, MovingQuerySet};
pub use queries::{random_query_set, QueryConfig};
pub use usgs::{synthetic_usgs, Category, UsgsConfig, CATEGORY_MIX};
