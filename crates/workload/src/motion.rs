//! Moving-object streams for the continuous SSQ (VCS²) experiments.
//!
//! Section 5/7 of the paper evaluates VCS² on "synthetically moving
//! objects": the query points are mobile agents that report location
//! updates one at a time, and each update moves a *single* query point
//! (the stream model of §5: "Arrival of each new location causes an update
//! to a single point of Q"). [`MovingQuerySet`] reproduces that: a
//! random-waypoint walk per object, emitting `(object index, new location)`
//! update events.

use ssq_geom::{Point, Rect};

use crate::rng::Xoshiro256;

/// Parameters of a moving query-object simulation.
#[derive(Clone, Copy, Debug)]
pub struct MotionConfig {
    /// Number of moving objects (`|Q|`).
    pub count: usize,
    /// Maximum step length per update, as a fraction of the universe side.
    /// The paper's updates are frequent relative to object speed, so steps
    /// are small; `0.01` (1% of the universe side) is the default.
    pub step: f64,
    /// The universe the objects roam in (they bounce off its walls).
    pub universe: Rect,
    /// Side of the starting box the objects are packed into, as a fraction
    /// of the universe side (so the initial `MBR(Q)` is realistic).
    pub start_box: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            count: 5,
            step: 0.01,
            universe: Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            start_box: 0.05,
            seed: 0xB0B,
        }
    }
}

/// One location update: object `index` moved to `location`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Update {
    /// Which query object moved.
    pub index: usize,
    /// Its new location.
    pub location: Point,
}

/// A deterministic stream of single-object location updates.
///
/// Objects take random-direction steps of random length up to
/// [`MotionConfig::step`]; each call to [`MovingQuerySet::next_update`]
/// moves one object (round-robin with jitter, so consecutive updates
/// usually concern different objects, like interleaved GPS reports).
#[derive(Clone, Debug)]
pub struct MovingQuerySet {
    positions: Vec<Point>,
    config: MotionConfig,
    rng: Xoshiro256,
    ticks: u64,
}

impl MovingQuerySet {
    /// Creates the stream and places the objects in a random start box.
    pub fn new(config: MotionConfig) -> MovingQuerySet {
        assert!(config.count >= 1);
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let u = config.universe;
        let side = (u.width().min(u.height()) * config.start_box).max(f64::MIN_POSITIVE);
        let ox = u.min.x + rng.f64() * (u.width() - side).max(0.0);
        let oy = u.min.y + rng.f64() * (u.height() - side).max(0.0);
        let positions = (0..config.count)
            .map(|_| Point::new(ox + rng.f64() * side, oy + rng.f64() * side))
            .collect();
        MovingQuerySet {
            positions,
            config,
            rng,
            ticks: 0,
        }
    }

    /// Current positions of all objects (the current query set `Q`).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Advances the simulation by one update: moves one object and returns
    /// the event.
    pub fn next_update(&mut self) -> Update {
        let index = if self.config.count == 1 {
            0
        } else {
            // Mostly round-robin, occasionally a random object, so the
            // stream is not perfectly periodic.
            if self.rng.f64() < 0.85 {
                (self.ticks % self.config.count as u64) as usize
            } else {
                self.rng.range_usize(self.config.count)
            }
        };
        self.ticks += 1;

        let u = self.config.universe;
        let max_step = u.width().min(u.height()) * self.config.step;
        let angle = self.rng.f64() * std::f64::consts::TAU;
        let len = self.rng.f64() * max_step;
        let p = self.positions[index];
        let mut np = Point::new(p.x + angle.cos() * len, p.y + angle.sin() * len);
        // Bounce off the walls by clamping (reflective boundary).
        np.x = np.x.clamp(u.min.x, u.max.x);
        np.y = np.y.clamp(u.min.y, u.max.y);
        self.positions[index] = np;
        Update {
            index,
            location: np,
        }
    }

    /// Convenience: collects the next `n` updates.
    pub fn take_updates(&mut self, n: usize) -> Vec<Update> {
        (0..n).map(|_| self.next_update()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_stay_in_universe_and_are_small() {
        let cfg = MotionConfig {
            count: 4,
            step: 0.02,
            ..MotionConfig::default()
        };
        let mut m = MovingQuerySet::new(cfg);
        let mut prev = m.positions().to_vec();
        for _ in 0..500 {
            let up = m.next_update();
            assert!(cfg.universe.contains(up.location));
            let moved = prev[up.index].distance(up.location);
            assert!(moved <= 0.02 + 1e-12, "step too large: {moved}");
            prev[up.index] = up.location;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MotionConfig::default();
        let mut a = MovingQuerySet::new(cfg);
        let mut b = MovingQuerySet::new(cfg);
        assert_eq!(a.take_updates(100), b.take_updates(100));
    }

    #[test]
    fn all_objects_eventually_move() {
        let mut m = MovingQuerySet::new(MotionConfig {
            count: 7,
            ..MotionConfig::default()
        });
        let ups = m.take_updates(100);
        let moved: std::collections::HashSet<usize> = ups.iter().map(|u| u.index).collect();
        assert_eq!(moved.len(), 7);
    }

    #[test]
    fn positions_track_updates() {
        let mut m = MovingQuerySet::new(MotionConfig::default());
        for _ in 0..50 {
            let up = m.next_update();
            assert_eq!(m.positions()[up.index], up.location);
        }
    }

    #[test]
    fn start_box_packs_objects() {
        let cfg = MotionConfig {
            count: 10,
            start_box: 0.03,
            ..MotionConfig::default()
        };
        let m = MovingQuerySet::new(cfg);
        let mbr = Rect::bounding(m.positions().iter().copied());
        assert!(mbr.width() <= 0.03 + 1e-12);
        assert!(mbr.height() <= 0.03 + 1e-12);
    }
}
