//! A synthetic substitute for the paper's USGS business-location dataset.
//!
//! Table 5 of the paper lists eight point categories (hospital, church,
//! building, school, summit, populated place, cemetery, institution) with
//! a heavily skewed size mix. The real extract from geonames.usgs.gov is
//! not bundled here; instead we generate a set with the same labels, a
//! similar skew, and the clustered geography of real businesses: points
//! are drawn from a mixture of Gaussian "population centres" (plus a thin
//! uniform background), inside the unit-square universe. The SSQ
//! algorithms only see coordinates, so matching skew + clustering is what
//! preserves their relative behaviour. The substitution is documented in
//! DESIGN.md §5.

use ssq_geom::{Point, Rect};

use crate::rng::Xoshiro256;

/// The eight point categories of the paper's Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Hospitals — the rarest category.
    Hospital,
    /// Churches.
    Church,
    /// Buildings.
    Building,
    /// Schools.
    School,
    /// Summits.
    Summit,
    /// Populated places — the largest category.
    PopulatedPlace,
    /// Cemeteries.
    Cemetery,
    /// Institutions.
    Institution,
}

/// The category mix used by [`synthetic_usgs`], as fractions summing to 1.
///
/// The OCR of Table 5 lost most digits ("Hospital 0.%", "Summit 7%",
/// "Populated place 8%", …); the values below keep what is legible and
/// fill the rest with a plausible skew of the real GNIS category sizes.
pub const CATEGORY_MIX: [(Category, f64); 8] = [
    (Category::Hospital, 0.005),
    (Category::Church, 0.12),
    (Category::Building, 0.115),
    (Category::School, 0.16),
    (Category::Summit, 0.17),
    (Category::PopulatedPlace, 0.28),
    (Category::Cemetery, 0.10),
    (Category::Institution, 0.05),
];

/// Configuration for the synthetic USGS generator.
#[derive(Clone, Copy, Debug)]
pub struct UsgsConfig {
    /// Total number of points.
    pub n: usize,
    /// Number of Gaussian population clusters.
    pub clusters: usize,
    /// Standard deviation of each cluster, as a fraction of the universe
    /// side. Smaller values mean denser clusters.
    pub cluster_sigma: f64,
    /// Fraction of points drawn uniformly instead of from a cluster
    /// (rural background noise).
    pub background: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for UsgsConfig {
    fn default() -> Self {
        UsgsConfig {
            n: 10_000,
            clusters: 40,
            cluster_sigma: 0.02,
            background: 0.15,
            seed: 0x5567_5347, // "USGS"
        }
    }
}

/// One generated point with its category.
#[derive(Clone, Copy, Debug)]
pub struct UsgsPoint {
    /// Location inside the unit square.
    pub location: Point,
    /// Category label (Table 5).
    pub category: Category,
}

/// The unit-square universe all workloads live in.
pub fn universe() -> Rect {
    Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
}

/// Generates the synthetic USGS-like dataset.
///
/// Points are deduplicated (the Delaunay substrate requires distinct
/// points), so the result can be marginally shorter than `config.n` in
/// pathological configurations; in practice duplicates essentially never
/// occur with continuous coordinates.
pub fn synthetic_usgs(config: &UsgsConfig) -> Vec<UsgsPoint> {
    let mut rng = Xoshiro256::seed_from_u64(config.seed);

    // Cluster centres and relative weights (Zipf-ish: big cities dominate).
    let centres: Vec<(Point, f64)> = (0..config.clusters.max(1))
        .map(|k| {
            let c = Point::new(rng.f64(), rng.f64());
            let w = 1.0 / (k as f64 + 1.0);
            (c, w)
        })
        .collect();
    let total_w: f64 = centres.iter().map(|&(_, w)| w).sum();

    let pick_category = {
        let mix = CATEGORY_MIX;
        move |r: &mut Xoshiro256| {
            let mut t = r.f64();
            for &(cat, frac) in &mix {
                if t < frac {
                    return cat;
                }
                t -= frac;
            }
            Category::PopulatedPlace
        }
    };

    let mut out: Vec<UsgsPoint> = Vec::with_capacity(config.n);
    let mut seen = std::collections::HashSet::with_capacity(config.n);
    while out.len() < config.n {
        let location = if rng.f64() < config.background {
            Point::new(rng.f64(), rng.f64())
        } else {
            // Pick a cluster by weight, then a Gaussian offset (Box–Muller).
            let mut t = rng.f64() * total_w;
            let mut centre = centres[0].0;
            for &(c, w) in &centres {
                if t < w {
                    centre = c;
                    break;
                }
                t -= w;
            }
            let (g1, g2) = rng.gaussian_pair();
            Point::new(
                (centre.x + g1 * config.cluster_sigma).clamp(0.0, 1.0),
                (centre.y + g2 * config.cluster_sigma).clamp(0.0, 1.0),
            )
        };
        // Exact-duplicate guard for the Delaunay substrate.
        let key = (location.x.to_bits(), location.y.to_bits());
        if !seen.insert(key) {
            continue;
        }
        out.push(UsgsPoint {
            location,
            category: pick_category(&mut rng),
        });
    }
    out
}

/// Convenience: just the coordinates of [`synthetic_usgs`].
pub fn synthetic_usgs_points(config: &UsgsConfig) -> Vec<Point> {
    synthetic_usgs(config).iter().map(|u| u.location).collect()
}

/// Uniform points in the unit square (the paper's synthetic baseline
/// distribution for density experiments).
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while out.len() < n {
        let p = Point::new(rng.f64(), rng.f64());
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_inside_universe() {
        let cfg = UsgsConfig {
            n: 2000,
            ..UsgsConfig::default()
        };
        let pts = synthetic_usgs(&cfg);
        assert_eq!(pts.len(), 2000);
        let u = universe();
        for p in &pts {
            assert!(u.contains(p.location));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = UsgsConfig {
            n: 500,
            ..UsgsConfig::default()
        };
        let a = synthetic_usgs(&cfg);
        let b = synthetic_usgs(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.location, y.location);
            assert_eq!(x.category, y.category);
        }
        let other = synthetic_usgs(&UsgsConfig { seed: 999, ..cfg });
        assert!(a.iter().zip(&other).any(|(x, y)| x.location != y.location));
    }

    #[test]
    fn category_mix_sums_to_one_and_is_respected() {
        let total: f64 = CATEGORY_MIX.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);

        let cfg = UsgsConfig {
            n: 20_000,
            ..UsgsConfig::default()
        };
        let pts = synthetic_usgs(&cfg);
        for &(cat, frac) in &CATEGORY_MIX {
            let count = pts.iter().filter(|p| p.category == cat).count();
            let got = count as f64 / pts.len() as f64;
            assert!(
                (got - frac).abs() < 0.02,
                "{cat:?}: expected ≈{frac}, got {got}"
            );
        }
    }

    #[test]
    fn points_are_distinct() {
        let pts = synthetic_usgs_points(&UsgsConfig {
            n: 5000,
            ..UsgsConfig::default()
        });
        let mut keys: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5000);
    }

    #[test]
    fn clustering_is_visible() {
        // Clustered data must have much higher local density variance than
        // uniform data: compare occupancy of a coarse grid.
        let clustered = synthetic_usgs_points(&UsgsConfig {
            n: 5000,
            background: 0.0,
            ..UsgsConfig::default()
        });
        let uniform = uniform_points(5000, 42);
        let var = |pts: &[Point]| {
            let mut grid = [0usize; 100];
            for p in pts {
                let gx = (p.x * 10.0).min(9.0) as usize;
                let gy = (p.y * 10.0).min(9.0) as usize;
                grid[gy * 10 + gx] += 1;
            }
            let mean = pts.len() as f64 / 100.0;
            grid.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / 100.0
        };
        assert!(
            var(&clustered) > 4.0 * var(&uniform),
            "clustered variance {} vs uniform {}",
            var(&clustered),
            var(&uniform)
        );
    }

    #[test]
    fn uniform_points_distinct_and_in_box() {
        let pts = uniform_points(1000, 7);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            assert!(universe().contains(*p));
        }
    }
}
