//! Measures the materialized skyline diagram against the planner it
//! short-circuits.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin diagram_bench [-- n distinct repeats]
//! cargo run --release -p ssq-bench --bin diagram_bench -- --smoke
//! ```
//!
//! Three sections, all written to `BENCH_DIAGRAM.json`:
//!
//! 1. **Hit vs planner** — the same hot shapes, repeated, through two
//!    engines: one without a diagram (the planner path, context cache
//!    warm) and one whose diagram has materialized the shapes. Every
//!    measured diagram response is asserted to be a diagram hit.
//! 2. **Build cost** — wall-clock cost of `rebuild_diagram` and the
//!    cell count it produced, from the engine's own metrics.
//! 3. **Warm vs cold restart** — two fresh diagram engines serve the
//!    same first pass of hot shapes; one was seeded via `warm_start`
//!    (the `serve --warm` path) before any traffic, the other starts
//!    cold. The warm engine's first-pass p99 must not show the cold
//!    planner spike.
//!
//! `--smoke` shrinks the dataset and repeat counts to CI scale; it
//! still writes the JSON artifact and exits nonzero on non-finite
//! measurements or a measured pass that never hit the diagram.

use std::time::Instant;

use ssq_core::QueryKey;
use ssq_engine::{DiagramConfig, Engine, EngineConfig, QueryRequest, ServedBy};
use ssq_geom::{Point, Rect};
use ssq_workload::usgs::{synthetic_usgs_points, UsgsConfig};
use ssq_workload::{random_query_set, QueryConfig};

const QUANTUM: f64 = 1e-9;

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Hot query shapes inside the dataset MBR: a mix of 1-, 2-, and
/// 3-anchor sets so both the point-location grid and the per-key cells
/// are exercised.
fn hot_shapes(universe: Rect, distinct: usize, seed: u64) -> Vec<Vec<Point>> {
    (0..distinct)
        .map(|i| {
            random_query_set(&QueryConfig {
                count: 1 + i % 3,
                mbr_area_fraction: 0.01,
                universe,
                seed: seed.wrapping_add(i as u64),
            })
        })
        .collect()
}

/// Submits every shape `repeats` times and returns the sorted
/// per-request latencies in microseconds plus how many responses were
/// diagram hits.
fn measure(engine: &Engine, shapes: &[Vec<Point>], repeats: usize) -> (Vec<f64>, usize) {
    let mut lat_us = Vec::with_capacity(shapes.len() * repeats);
    let mut hits = 0usize;
    for _ in 0..repeats {
        for q in shapes {
            let t0 = Instant::now();
            let resp = engine.submit(QueryRequest::new(q.clone())).wait();
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
            if resp.served_by == ServedBy::Diagram {
                hits += 1;
            }
        }
    }
    lat_us.sort_by(f64::total_cmp);
    (lat_us, hits)
}

struct Report {
    dataset_points: usize,
    distinct: usize,
    repeats: usize,
    planner_p50_us: f64,
    planner_p99_us: f64,
    diagram_p50_us: f64,
    diagram_p99_us: f64,
    build_ms: f64,
    cells: u64,
    warmed: u64,
    cold_first_pass_p99_us: f64,
    warm_first_pass_p99_us: f64,
}

impl Report {
    fn json(&self) -> String {
        format!(
            "{{\n  \"dataset_points\": {},\n  \"distinct_shapes\": {},\n  \
             \"repeats\": {},\n  \"planner\": {{\"p50_us\": {:.3}, \"p99_us\": {:.3}}},\n  \
             \"diagram\": {{\"p50_us\": {:.3}, \"p99_us\": {:.3}}},\n  \
             \"speedup_p99\": {:.2},\n  \
             \"build\": {{\"cells\": {}, \"build_ms\": {:.3}, \"warmed_keys\": {}}},\n  \
             \"restart\": {{\"cold_first_pass_p99_us\": {:.3}, \
             \"warm_first_pass_p99_us\": {:.3}}}\n}}\n",
            self.dataset_points,
            self.distinct,
            self.repeats,
            self.planner_p50_us,
            self.planner_p99_us,
            self.diagram_p50_us,
            self.diagram_p99_us,
            self.planner_p99_us / self.diagram_p99_us.max(1e-9),
            self.cells,
            self.build_ms,
            self.warmed,
            self.cold_first_pass_p99_us,
            self.warm_first_pass_p99_us,
        )
    }

    fn finite(&self) -> bool {
        [
            self.planner_p50_us,
            self.planner_p99_us,
            self.diagram_p50_us,
            self.diagram_p99_us,
            self.build_ms,
            self.cold_first_pass_p99_us,
            self.warm_first_pass_p99_us,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (n, distinct, repeats) = if smoke {
        (400, 6, 20)
    } else {
        (
            positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10_000),
            positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(12),
            positional
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(200),
        )
    };

    println!("# skyline-diagram bench: {n} points, {distinct} hot shapes x {repeats} repeats");
    let points = synthetic_usgs_points(&UsgsConfig {
        n,
        seed: 0xD1AB,
        ..UsgsConfig::default()
    });
    let universe = Rect::bounding(points.iter().copied());
    let shapes = hot_shapes(universe, distinct, 0xD1AC);
    let keys: Vec<QueryKey> = shapes
        .iter()
        .map(|q| QueryKey::canonical(q, QUANTUM))
        .collect();

    // Planner baseline: no diagram, context cache warm after the first
    // pass — exactly the path a hot repeated query takes today.
    let planner = Engine::new(&points, EngineConfig::default()).expect("planner engine");
    for q in &shapes {
        planner.submit(QueryRequest::new(q.clone())).wait();
    }
    let (planner_lat, planner_hits) = measure(&planner, &shapes, repeats);
    assert_eq!(planner_hits, 0, "planner engine must have no diagram");
    planner.shutdown();

    // Diagram engine: probe once to record the shapes as hot, rebuild
    // (timed), then every measured response must be a diagram hit.
    let config = DiagramConfig::default();
    let engine =
        Engine::new(&points, EngineConfig::default().with_diagram(config)).expect("diagram engine");
    for q in &shapes {
        engine.submit(QueryRequest::new(q.clone())).wait();
    }
    let t0 = Instant::now();
    engine.rebuild_diagram().expect("rebuild diagram");
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (diagram_lat, diagram_hits) = measure(&engine, &shapes, repeats);
    let m = engine.metrics();
    if diagram_hits < shapes.len() * repeats {
        eprintln!(
            "# FATAL: only {diagram_hits}/{} measured responses hit the diagram",
            shapes.len() * repeats
        );
        std::process::exit(1);
    }
    engine.shutdown();

    // Restart comparison: same shapes, two fresh engines — one seeded
    // through warm_start before any traffic, one cold.
    let cold = Engine::new(&points, EngineConfig::default().with_diagram(config)).expect("cold");
    let (cold_lat, _) = measure(&cold, &shapes, 1);
    cold.shutdown();
    let warm = Engine::new(&points, EngineConfig::default().with_diagram(config)).expect("warm");
    let warmed = warm.warm_start(&keys).expect("warm start");
    let (warm_lat, warm_hits) = measure(&warm, &shapes, 1);
    warm.shutdown();

    let report = Report {
        dataset_points: n,
        distinct,
        repeats,
        planner_p50_us: percentile(&planner_lat, 0.50),
        planner_p99_us: percentile(&planner_lat, 0.99),
        diagram_p50_us: percentile(&diagram_lat, 0.50),
        diagram_p99_us: percentile(&diagram_lat, 0.99),
        build_ms: rebuild_ms,
        cells: m.diagram.cells,
        warmed: warmed as u64,
        cold_first_pass_p99_us: percentile(&cold_lat, 0.99),
        warm_first_pass_p99_us: percentile(&warm_lat, 0.99),
    };

    println!("{:>10} {:>10} {:>10}", "path", "p50(us)", "p99(us)");
    println!(
        "{:>10} {:>10.1} {:>10.1}",
        "planner", report.planner_p50_us, report.planner_p99_us
    );
    println!(
        "{:>10} {:>10.1} {:>10.1}",
        "diagram", report.diagram_p50_us, report.diagram_p99_us
    );
    println!(
        "# build: {} cells in {:.2}ms; warm_start seeded {} keys ({} first-pass hits)",
        report.cells, report.build_ms, warmed, warm_hits
    );
    println!(
        "# restart first-pass p99: cold {:.1}us vs warm {:.1}us",
        report.cold_first_pass_p99_us, report.warm_first_pass_p99_us
    );

    if !report.finite() {
        eprintln!("# FATAL: non-finite measurement in diagram bench");
        std::process::exit(1);
    }
    std::fs::write("BENCH_DIAGRAM.json", report.json()).expect("write BENCH_DIAGRAM.json");
    println!("# wrote BENCH_DIAGRAM.json");
    if report.diagram_p99_us >= report.planner_p99_us {
        println!("# WARNING: diagram hit path did not beat the planner p99 on this run");
    }
    if report.warm_first_pass_p99_us >= report.cold_first_pass_p99_us {
        println!("# NOTE: warm restart did not beat the cold first pass on this run");
    }
}
