//! Records engine throughput as the worker pool grows, then as the
//! dataset is sharded.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin throughput_scaling [-- n requests distinct]
//! cargo run --release -p ssq-bench --bin throughput_scaling -- --smoke
//! ```
//!
//! One synthetic USGS dataset, one randomized request stream (repeats
//! drawn from a fixed set of query sets so the context cache engages).
//! Sections:
//!
//! 1. **Kernel hot path** — scalar vs scratch-arena kernels per
//!    algorithm, written to `BENCH_hotpath.json` (latency percentiles,
//!    queries/sec, distance computations/sec, allocations/query).
//! 2. **Worker ladder** — pools of 1, 2, 4, ... workers up to the core
//!    count; the single-thread row is the baseline — plus one batched
//!    row showing amortized submission.
//! 3. **Shard ladder** — the same stream through a `ShardedEngine` with
//!    1, 2, 4, 8 shards (grid policy), concurrent clients driving it.
//! 4. **Corner workload** — query sets crowded into one corner of the
//!    universe, where the dominance bound prunes far shards; the pruned
//!    column must be nonzero here.
//! 5. **Swap under load** — the dataset is replaced mid-stream, once as
//!    a live snapshot-catalog swap and once as a drain-and-rebuild cold
//!    restart; latencies are client-observed, so the restart stall shows
//!    up in p99/max where the live swap stays flat.
//!
//! `--smoke` runs only the hot-path section on a tiny dataset — the CI
//! gate: it still writes `BENCH_hotpath.json` and exits nonzero if any
//! measurement comes back non-finite.

use ssq_bench::{
    corner_query_sets, dist_per_sec_of, hotpath_json, mean_allocs, mean_qps, mean_simd_qps,
    run_hotpath, run_sharded_throughput, run_throughput, sharded_scaling, swap_comparison,
    throughput_scaling, uniform_query_sets, validate_rows, Fixture, HotpathRow,
};

fn print_sharded(rows: &[ssq_bench::ShardedThroughputRow]) {
    let base = rows.first().map_or(1.0, |r| r.reqs_per_sec);
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "shards", "req/s", "speedup", "p50(us)", "p99(us)", "fanout", "prune%", "pruned"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>8.2} {:>7.1}% {:>8}",
            r.shards,
            r.reqs_per_sec,
            r.reqs_per_sec / base,
            r.p50_us,
            r.p99_us,
            r.mean_fanout,
            r.prune_rate * 100.0,
            r.shards_pruned
        );
    }
}

fn print_hotpath(rows: &[HotpathRow]) {
    println!(
        "{:>8} {:>8} {:>6} {:>10} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "path", "isa", "algo", "p50(us)", "p99(us)", "q/s", "dist/s", "allocs/q", "dom/q"
    );
    for r in rows {
        println!(
            "{:>8} {:>8} {:>6} {:>10.1} {:>10.1} {:>12.1} {:>14.1} {:>12.3} {:>10.1}",
            r.path,
            r.kernel_path,
            r.algo,
            r.p50_us,
            r.p99_us,
            r.qps,
            r.dist_per_sec,
            r.allocs_per_query,
            r.dominance_per_query
        );
    }
}

/// Runs the scalar-vs-kernel microbench, prints it, writes the JSON
/// artifact, and dies loudly on non-finite measurements.
fn hotpath_section(fix: &Fixture, distinct: usize, repeats: usize, seed: u64) {
    let sets = uniform_query_sets(&fix.points, distinct.clamp(4, 16), 5, seed);
    let rows = run_hotpath(fix, &sets, repeats);
    if let Err(e) = validate_rows(&rows) {
        eprintln!("# FATAL: non-finite hot-path measurement: {e}");
        std::process::exit(1);
    }
    print_hotpath(&rows);
    let (sa, ka) = mean_allocs(&rows);
    let (sq, kq) = mean_qps(&rows);
    let simd_q = mean_simd_qps(&rows);
    let total_queries: usize = rows.iter().map(|r| r.queries).sum();
    println!(
        "# allocations/query: scalar {sa:.2} vs kernel {ka:.2} ({:.0}x fewer)",
        sa / ka.max(1.0 / total_queries.max(1) as f64)
    );
    println!("# mean q/s: scalar {sq:.0} vs kernel {kq:.0} vs simd {simd_q:.0}");
    let json = hotpath_json(fix.points.len(), &rows);
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("# wrote BENCH_hotpath.json");
    if ka * 2.0 > sa {
        println!("# WARNING: kernel path is not 2x below scalar on allocations/query");
    }
    // The SIMD-vs-scalar distance-throughput gate: the tiled arena and
    // the dispatched tile kernels must keep the naive scan's distance
    // pipeline at least at scalar parity.
    let scalar_naive = dist_per_sec_of(&rows, "scalar", "naive").unwrap_or(0.0);
    for path in ["kernel", "simd"] {
        let got = dist_per_sec_of(&rows, path, "naive").unwrap_or(0.0);
        if got < scalar_naive {
            println!("# WARNING: {path} naive dist/s {got:.0} below scalar {scalar_naive:.0}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let n: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let requests: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let distinct: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);

    if smoke {
        // CI gate: tiny dataset, hot-path section only. Any panic or
        // non-finite number exits nonzero; otherwise the JSON artifact
        // is refreshed and the run is quick enough for every CI pass.
        println!("# kernel hot path (smoke: 400 points)");
        let fix = Fixture::usgs(400, 42);
        hotpath_section(&fix, 6, 2, 42);
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut ladder = vec![1usize];
    while ladder.last().copied().unwrap_or(1) * 2 <= cores {
        ladder.push(ladder.last().unwrap() * 2);
    }

    println!("# engine throughput scaling");
    println!("# dataset: {n} synthetic USGS points; {requests} requests over {distinct} query sets; {cores} cores");
    let fix = Fixture::usgs(n, 42);

    println!();
    println!("# kernel hot path (scalar vs scratch-arena kernels)");
    hotpath_section(&fix, distinct, 4, 42);

    println!();
    let rows = throughput_scaling(&fix.points, &ladder, requests, distinct, 0, 42);
    let base = rows.first().map_or(1.0, |r| r.reqs_per_sec);
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "threads", "req/s", "speedup", "p50(us)", "p99(us)", "hit%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>7.1}%",
            r.threads,
            r.reqs_per_sec,
            r.reqs_per_sec / base,
            r.p50_us,
            r.p99_us,
            r.cache_hit_rate * 100.0
        );
    }
    let max_threads = ladder.last().copied().unwrap_or(1);
    let batched = run_throughput(&fix.points, max_threads, requests, distinct, 5, 32, 42);
    println!(
        "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>7.1}%  (batch=32)",
        batched.threads,
        batched.reqs_per_sec,
        batched.reqs_per_sec / base,
        batched.p50_us,
        batched.p99_us,
        batched.cache_hit_rate * 100.0
    );

    let clients = cores.clamp(2, 8);
    println!();
    println!("# sharded scaling (grid policy, {clients} clients, uniform workload)");
    let sharded = sharded_scaling(&fix.points, &[1, 2, 4, 8], clients, requests, distinct, 42);
    print_sharded(&sharded);

    println!();
    println!("# sharded corner workload (8 shards — dominance bound prunes far shards)");
    let corner = corner_query_sets(&fix.points, distinct, 5, 42);
    let row = run_sharded_throughput(&fix.points, 8, clients, &corner, requests, 42);
    print_sharded(std::slice::from_ref(&row));
    if row.shards_pruned == 0 {
        println!("# WARNING: corner workload pruned no shards");
    }

    println!();
    println!("# swap under load ({clients} clients — live catalog swap vs cold restart, client-observed latency)");
    let next = Fixture::usgs(n, 43);
    let (live, cold) = swap_comparison(
        &fix.points,
        &next.points,
        cores,
        clients,
        requests,
        distinct,
        42,
    );
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "mode", "req/s", "p50(us)", "p99(us)", "max(ms)", "swap(ms)"
    );
    for r in [&live, &cold] {
        println!(
            "{:>14} {:>12.1} {:>10.1} {:>10.1} {:>12.2} {:>10.1}",
            if r.cold_restart {
                "cold restart"
            } else {
                "live swap"
            },
            r.reqs_per_sec,
            r.p50_us,
            r.p99_us,
            r.max_stall_ms,
            r.swap_ms
        );
    }
    if cold.max_stall_ms <= live.max_stall_ms {
        println!("# NOTE: cold restart did not stall worse than the live swap on this run");
    }
}
