//! Records engine throughput as the worker pool grows.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin throughput_scaling [-- n requests distinct]
//! ```
//!
//! One synthetic USGS dataset, one randomized request stream (repeats
//! drawn from a fixed set of query sets so the context cache engages),
//! served by pools of 1, 2, 4, ... workers up to the core count. The
//! single-thread row is the baseline the multi-thread rows are judged
//! against.

use ssq_bench::{throughput_scaling, Fixture};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let requests: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let distinct: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut ladder = vec![1usize];
    while ladder.last().copied().unwrap_or(1) * 2 <= cores {
        ladder.push(ladder.last().unwrap() * 2);
    }

    println!("# engine throughput scaling");
    println!("# dataset: {n} synthetic USGS points; {requests} requests over {distinct} query sets; {cores} cores");
    let fix = Fixture::usgs(n, 42);
    let rows = throughput_scaling(&fix.points, &ladder, requests, distinct, 42);
    let base = rows.first().map_or(1.0, |r| r.reqs_per_sec);
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "threads", "req/s", "speedup", "p50(us)", "p99(us)", "hit%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>7.1}%",
            r.threads,
            r.reqs_per_sec,
            r.reqs_per_sec / base,
            r.p50_us,
            r.p99_us,
            r.cache_hit_rate * 100.0
        );
    }
}
