//! Records engine throughput as the worker pool grows, then as the
//! dataset is sharded.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin throughput_scaling [-- n requests distinct]
//! ```
//!
//! One synthetic USGS dataset, one randomized request stream (repeats
//! drawn from a fixed set of query sets so the context cache engages).
//! Three sections:
//!
//! 1. **Worker ladder** — pools of 1, 2, 4, ... workers up to the core
//!    count; the single-thread row is the baseline.
//! 2. **Shard ladder** — the same stream through a `ShardedEngine` with
//!    1, 2, 4, 8 shards (grid policy), concurrent clients driving it.
//! 3. **Corner workload** — query sets crowded into one corner of the
//!    universe, where the dominance bound prunes far shards; the pruned
//!    column must be nonzero here.
//! 4. **Swap under load** — the dataset is replaced mid-stream, once as
//!    a live snapshot-catalog swap and once as a drain-and-rebuild cold
//!    restart; latencies are client-observed, so the restart stall shows
//!    up in p99/max where the live swap stays flat.

use ssq_bench::{
    corner_query_sets, run_sharded_throughput, sharded_scaling, swap_comparison,
    throughput_scaling, Fixture,
};

fn print_sharded(rows: &[ssq_bench::ShardedThroughputRow]) {
    let base = rows.first().map_or(1.0, |r| r.reqs_per_sec);
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "shards", "req/s", "speedup", "p50(us)", "p99(us)", "fanout", "prune%", "pruned"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>8.2} {:>7.1}% {:>8}",
            r.shards,
            r.reqs_per_sec,
            r.reqs_per_sec / base,
            r.p50_us,
            r.p99_us,
            r.mean_fanout,
            r.prune_rate * 100.0,
            r.shards_pruned
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let requests: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let distinct: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut ladder = vec![1usize];
    while ladder.last().copied().unwrap_or(1) * 2 <= cores {
        ladder.push(ladder.last().unwrap() * 2);
    }

    println!("# engine throughput scaling");
    println!("# dataset: {n} synthetic USGS points; {requests} requests over {distinct} query sets; {cores} cores");
    let fix = Fixture::usgs(n, 42);
    let rows = throughput_scaling(&fix.points, &ladder, requests, distinct, 42);
    let base = rows.first().map_or(1.0, |r| r.reqs_per_sec);
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "threads", "req/s", "speedup", "p50(us)", "p99(us)", "hit%"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>10.1} {:>10.1} {:>7.1}%",
            r.threads,
            r.reqs_per_sec,
            r.reqs_per_sec / base,
            r.p50_us,
            r.p99_us,
            r.cache_hit_rate * 100.0
        );
    }

    let clients = cores.clamp(2, 8);
    println!();
    println!("# sharded scaling (grid policy, {clients} clients, uniform workload)");
    let sharded = sharded_scaling(&fix.points, &[1, 2, 4, 8], clients, requests, distinct, 42);
    print_sharded(&sharded);

    println!();
    println!("# sharded corner workload (8 shards — dominance bound prunes far shards)");
    let corner = corner_query_sets(&fix.points, distinct, 5, 42);
    let row = run_sharded_throughput(&fix.points, 8, clients, &corner, requests, 42);
    print_sharded(std::slice::from_ref(&row));
    if row.shards_pruned == 0 {
        println!("# WARNING: corner workload pruned no shards");
    }

    println!();
    println!("# swap under load ({clients} clients — live catalog swap vs cold restart, client-observed latency)");
    let next = Fixture::usgs(n, 43);
    let (live, cold) = swap_comparison(
        &fix.points,
        &next.points,
        cores,
        clients,
        requests,
        distinct,
        42,
    );
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "mode", "req/s", "p50(us)", "p99(us)", "max(ms)", "swap(ms)"
    );
    for r in [&live, &cold] {
        println!(
            "{:>14} {:>12.1} {:>10.1} {:>10.1} {:>12.2} {:>10.1}",
            if r.cold_restart {
                "cold restart"
            } else {
                "live swap"
            },
            r.reqs_per_sec,
            r.p50_us,
            r.p99_us,
            r.max_stall_ms,
            r.swap_ms
        );
    }
    if cold.max_stall_ms <= live.max_stall_ms {
        println!("# NOTE: cold restart did not stall worse than the live swap on this run");
    }
}
