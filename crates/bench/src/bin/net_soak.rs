//! Multi-client soak of the `ssq-net` socket front-end on loopback.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin net_soak [-- n per_conn]
//! cargo run --release -p ssq-bench --bin net_soak -- --smoke
//! ```
//!
//! One in-process server over a synthetic USGS engine; a grid of
//! (connections × pipelining depth × batch size) cells, each driving the
//! server with real TCP clients and a sliding in-flight window. Per
//! cell: client-observed results/s, typed `RetryLater` sheds, and mean
//! per-frame latency. The whole run is written to `BENCH_net.json`.
//!
//! `--smoke` shrinks the dataset and the grid but keeps the acceptance
//! cell (8 connections × 16 pipeline) — the CI gate. Exits nonzero on
//! any driver error, server error frame, or non-finite measurement.

use ssq_bench::{uniform_query_sets, Fixture};
use ssq_engine::{Engine, EngineConfig};
use ssq_net::{Client, Frame, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

struct Cell {
    connections: usize,
    pipeline: usize,
    batch: usize,
    frames: usize,
    results: usize,
    shed: usize,
    elapsed_s: f64,
    results_per_sec: f64,
}

/// Drives one grid cell: `connections` clients × `per_conn` request
/// frames each, `pipeline`-deep windows, optionally batched.
fn drive_cell(
    addr: &str,
    sets: &Arc<Vec<Vec<ssq_geom::Point>>>,
    connections: usize,
    pipeline: usize,
    batch: usize,
    per_conn: usize,
) -> Result<Cell, String> {
    let started = Instant::now();
    let drivers: Vec<std::thread::JoinHandle<Result<(usize, usize), String>>> = (0..connections)
        .map(|c| {
            let addr = addr.to_string();
            let sets = Arc::clone(sets);
            std::thread::spawn(move || -> Result<(usize, usize), String> {
                let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                let mut ok = 0usize;
                let mut shed = 0usize;
                let mut in_flight = std::collections::VecDeque::new();
                let mut absorb = |frame: Frame| -> Result<(), String> {
                    match frame {
                        Frame::QueryResult(_) => ok += 1,
                        Frame::BatchResult(rs) => ok += rs.len(),
                        Frame::RetryLater { .. } => shed += 1,
                        Frame::Error { code, message } => {
                            return Err(format!("server error {code:?}: {message}"))
                        }
                        other => return Err(format!("unexpected frame {other:?}")),
                    }
                    Ok(())
                };
                for i in 0..per_conn {
                    let at = c * per_conn + i;
                    let id = if batch > 0 {
                        let chunk: Vec<Vec<ssq_geom::Point>> = (0..batch)
                            .map(|j| sets[(at + j) % sets.len()].clone())
                            .collect();
                        client
                            .submit_batch(&chunk)
                            .map_err(|e| format!("submit: {e}"))?
                    } else {
                        client
                            .submit(&sets[at % sets.len()], None)
                            .map_err(|e| format!("submit: {e}"))?
                    };
                    in_flight.push_back(id);
                    if in_flight.len() >= pipeline {
                        if let Some(id) = in_flight.pop_front() {
                            absorb(client.await_id(id).map_err(|e| format!("await: {e}"))?)?;
                        }
                    }
                }
                for id in in_flight {
                    absorb(client.await_id(id).map_err(|e| format!("await: {e}"))?)?;
                }
                let _ = client.goodbye();
                Ok((ok, shed))
            })
        })
        .collect();

    let mut results = 0usize;
    let mut shed = 0usize;
    for (c, d) in drivers.into_iter().enumerate() {
        let (o, s) = d
            .join()
            .map_err(|_| format!("driver {c} panicked"))?
            .map_err(|e| format!("driver {c}: {e}"))?;
        results += o;
        shed += s;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    Ok(Cell {
        connections,
        pipeline,
        batch,
        frames: connections * per_conn,
        results,
        shed,
        elapsed_s,
        results_per_sec: results as f64 / elapsed_s.max(1e-9),
    })
}

fn net_json(dataset_points: usize, rows: &[Cell], net: &ssq_engine::NetCounters) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"dataset_points\": {dataset_points},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"pipeline\": {}, \"batch\": {}, \
             \"frames\": {}, \"results\": {}, \"shed\": {}, \
             \"elapsed_s\": {:.4}, \"results_per_sec\": {:.1}}}{}\n",
            r.connections,
            r.pipeline,
            r.batch,
            r.frames,
            r.results,
            r.shed,
            r.elapsed_s,
            r.results_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"server\": {\n");
    out.push_str(&format!("    \"accepted\": {},\n", net.accepted));
    out.push_str(&format!(
        "    \"shed_connections\": {},\n",
        net.shed_connections
    ));
    out.push_str(&format!("    \"shed_requests\": {},\n", net.shed_requests));
    out.push_str(&format!("    \"bytes_in\": {},\n", net.bytes_in));
    out.push_str(&format!("    \"bytes_out\": {},\n", net.bytes_out));
    out.push_str(&format!("    \"frame_errors\": {},\n", net.frame_errors));
    out.push_str(&format!("    \"write_timeouts\": {}\n", net.write_timeouts));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let n: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 600 } else { 10_000 });
    let per_conn: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 48 } else { 400 });

    println!("# net soak: {n} synthetic USGS points, {per_conn} frames/connection");
    let fix = Fixture::usgs(n, 0x5eed);
    let sets = Arc::new(uniform_query_sets(&fix.points, 16, 5, 0x9e37));
    let engine = Engine::new(&fix.points, EngineConfig::default()).expect("engine");
    let server = Server::serve("127.0.0.1:0", engine, ServerConfig::default()).expect("serve");
    let addr = server.local_addr().to_string();
    println!("# serving on {addr}");

    // The acceptance cell (8 × 16) is in BOTH grids — the smoke run is
    // what CI gates on.
    let grid: Vec<(usize, usize, usize)> = if smoke {
        vec![(2, 4, 0), (8, 16, 0), (8, 16, 8)]
    } else {
        let mut g = Vec::new();
        for &conns in &[1usize, 2, 4, 8] {
            for &pipe in &[1usize, 8, 16, 32] {
                g.push((conns, pipe, 0));
            }
        }
        // The batched column at the soak corner.
        g.push((8, 16, 4));
        g.push((8, 16, 16));
        g
    };

    println!(
        "{:>6} {:>9} {:>6} {:>9} {:>9} {:>7} {:>10} {:>13}",
        "conns", "pipeline", "batch", "frames", "results", "shed", "elapsed", "results/s"
    );
    let mut rows = Vec::new();
    for (conns, pipe, batch) in grid {
        match drive_cell(&addr, &sets, conns, pipe, batch, per_conn) {
            Ok(cell) => {
                println!(
                    "{:>6} {:>9} {:>6} {:>9} {:>9} {:>7} {:>8.3}s {:>13.1}",
                    cell.connections,
                    cell.pipeline,
                    cell.batch,
                    cell.frames,
                    cell.results,
                    cell.shed,
                    cell.elapsed_s,
                    cell.results_per_sec
                );
                rows.push(cell);
            }
            Err(e) => {
                eprintln!("# FATAL: cell ({conns}x{pipe} batch {batch}): {e}");
                std::process::exit(1);
            }
        }
    }

    for r in &rows {
        if !r.results_per_sec.is_finite() || r.results == 0 {
            eprintln!(
                "# FATAL: cell ({}x{} batch {}) measured no throughput",
                r.connections, r.pipeline, r.batch
            );
            std::process::exit(1);
        }
    }

    let metrics = server.shutdown();
    let json = net_json(fix.points.len(), &rows, &metrics.net);
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("# wrote BENCH_net.json");
    println!(
        "# server totals: accepted={} shed_req={} bytes_in={} bytes_out={} frame_errors={}",
        metrics.net.accepted,
        metrics.net.shed_requests,
        metrics.net.bytes_in,
        metrics.net.bytes_out,
        metrics.net.frame_errors
    );
    if metrics.net.frame_errors > 0 {
        eprintln!("# FATAL: the soak produced frame errors");
        std::process::exit(1);
    }
}
