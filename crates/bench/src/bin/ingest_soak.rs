//! Streaming-ingest soak: delta publish cost vs full rebuilds, then a
//! sustained updates × queries mix.
//!
//! ```text
//! cargo run --release -p ssq-bench --bin ingest_soak [-- n batch_ops soak_batches]
//! cargo run --release -p ssq-bench --bin ingest_soak -- --smoke
//! ```
//!
//! Two sections, both written to `BENCH_INGEST.json`:
//!
//! 1. **Publish cost** — on `n` synthetic USGS points (default 100 000),
//!    a timed full `Snapshot::build` against the mean publish cost of
//!    [`Engine::apply_delta`] for constant-size batches of `batch_ops`
//!    mixed inserts/deletes (default 0.2% of the dataset, well under the
//!    1% acceptance bound). The run **exits nonzero unless the delta
//!    publish is at least 10× cheaper than the full rebuild** — this is
//!    the PR's acceptance gate, so the smoke mode measures the very same
//!    100k-point cell.
//! 2. **Sustained soak** — a producer thread streams `soak_batches`
//!    batches through the bounded [`Engine::ingest`] queue while client
//!    threads keep querying; the record is updates/sec, queries/sec, and
//!    the *client-observed* query latency (p50/p99), which is where a
//!    stop-the-world index rebuild would show up.
//!
//! Exits nonzero on any ingest error, non-finite measurement, zero
//! throughput, or a publish speedup below 10×.

use ssq_bench::{uniform_query_sets, Fixture};
use ssq_core::UpdateBatch;
use ssq_engine::{Engine, EngineConfig, QueryRequest, Snapshot};
use ssq_geom::{Point, Rect};
use ssq_workload::rng::Xoshiro256;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The publish-cost section of the record.
struct PublishCost {
    dataset_points: usize,
    batch_ops: usize,
    batches: usize,
    full_build_ms: f64,
    delta_mean_ms: f64,
    delta_p99_ms: f64,
    speedup: f64,
    incremental: usize,
}

/// The sustained-soak section of the record.
struct Soak {
    dataset_points: usize,
    batches: usize,
    ops_per_batch: usize,
    clients: usize,
    updates_per_sec: f64,
    queries_per_sec: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    generations: u64,
    shed: u64,
}

/// A constant-size delta: `ops / 2` fresh uniform inserts plus `ops / 2`
/// distinct random deletes, so the dataset never drifts in cardinality
/// and delete ids stay valid for every queued batch.
fn random_batch(rng: &mut Xoshiro256, universe: &Rect, n: usize, ops: usize) -> UpdateBatch {
    let half = (ops / 2).max(1);
    let inserts: Vec<Point> = (0..half)
        .map(|_| {
            Point::new(
                rng.range_f64(universe.min.x, universe.max.x),
                rng.range_f64(universe.min.y, universe.max.y),
            )
        })
        .collect();
    let mut deletes: Vec<u32> = Vec::with_capacity(half);
    while deletes.len() < half {
        let id = rng.range_usize(n) as u32;
        if !deletes.contains(&id) {
            deletes.push(id);
        }
    }
    UpdateBatch { inserts, deletes }
}

/// Times one full `Snapshot::build` and `batches` delta publishes of
/// `batch_ops` mixed operations each, on the same dataset.
fn publish_cost(points: &[Point], batch_ops: usize, batches: usize) -> Result<PublishCost, String> {
    let t0 = Instant::now();
    let snapshot = Snapshot::build(0, points).map_err(|e| format!("full build: {e}"))?;
    let full_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let universe = snapshot.universe();
    let engine = Engine::with_snapshot(Arc::new(snapshot), EngineConfig::default())
        .map_err(|e| format!("engine: {e}"))?;
    let mut rng = Xoshiro256::seed_from_u64(0xD311A);
    // One untimed warm-up publish, mirroring the hot-path bench: the
    // first delta pays one-off costs (allocator growth, cold index
    // pages) that steady-state streaming never sees again.
    let warmup = random_batch(&mut rng, &universe, points.len(), batch_ops);
    engine
        .apply_delta(&warmup)
        .map_err(|e| format!("warm-up delta: {e}"))?;
    let mut publish_ms: Vec<f64> = Vec::with_capacity(batches);
    let mut incremental = 0usize;
    for b in 0..batches {
        let batch = random_batch(&mut rng, &universe, points.len(), batch_ops);
        let t = Instant::now();
        let report = engine
            .apply_delta(&batch)
            .map_err(|e| format!("delta {b}: {e}"))?;
        publish_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if report.stats.incremental {
            incremental += 1;
        }
    }
    engine.shutdown();
    publish_ms.sort_unstable_by(f64::total_cmp);
    let mean = publish_ms.iter().sum::<f64>() / publish_ms.len().max(1) as f64;
    let p99 = publish_ms[(publish_ms.len() * 99 / 100).min(publish_ms.len() - 1)];
    Ok(PublishCost {
        dataset_points: points.len(),
        batch_ops,
        batches,
        full_build_ms,
        delta_mean_ms: mean,
        delta_p99_ms: p99,
        speedup: full_build_ms / mean.max(1e-9),
        incremental,
    })
}

/// Streams `batches` deltas through the bounded ingest queue while
/// `clients` threads query; all latencies are client-observed.
fn soak(
    points: &[Point],
    ops_per_batch: usize,
    batches: usize,
    clients: usize,
    seed: u64,
) -> Result<Soak, String> {
    let engine =
        Arc::new(Engine::new(points, EngineConfig::default()).map_err(|e| format!("engine: {e}"))?);
    let universe = engine.snapshot().universe();
    let sets = Arc::new(uniform_query_sets(points, 12, 5, seed));
    let done = Arc::new(AtomicBool::new(false));

    let queriers: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let sets = Arc::clone(&sets);
            let done = Arc::clone(&done);
            std::thread::spawn(move || -> Vec<f64> {
                let mut lat_us = Vec::new();
                let mut i = c;
                while !done.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let r = engine
                        .submit(QueryRequest::new(sets[i % sets.len()].clone()))
                        .wait();
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                    std::hint::black_box(&r.skyline);
                    i += 1;
                }
                lat_us
            })
        })
        .collect();

    // The producer: pipelined submission through the bounded queue, so
    // the ingestor thread is never starved waiting on this loop. The
    // constant-size batches keep every delete id in range no matter how
    // deep the queue runs.
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x1261);
    let t0 = Instant::now();
    let mut handles = std::collections::VecDeque::new();
    let mut last_generation = 0u64;
    for b in 0..batches {
        let batch = random_batch(&mut rng, &universe, points.len(), ops_per_batch);
        handles.push_back(
            engine
                .ingest(batch)
                .map_err(|e| format!("ingest {b}: {e}"))?,
        );
        while handles.len() >= 8 {
            if let Some(h) = handles.pop_front() {
                let report = h.wait().map_err(|e| format!("publish: {e}"))?;
                last_generation = report.generation;
            }
        }
    }
    for h in handles {
        let report = h.wait().map_err(|e| format!("publish: {e}"))?;
        last_generation = report.generation;
    }
    let ingest_elapsed = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Relaxed);

    let mut lat_us: Vec<f64> = Vec::new();
    for (c, q) in queriers.into_iter().enumerate() {
        lat_us.extend(q.join().map_err(|_| format!("client {c} panicked"))?);
    }
    if lat_us.is_empty() {
        return Err("no queries completed during the soak".into());
    }
    lat_us.sort_unstable_by(f64::total_cmp);
    let queries = lat_us.len();
    let metrics = engine.metrics();
    if let Ok(engine) = Arc::try_unwrap(engine) {
        engine.shutdown();
    }
    Ok(Soak {
        dataset_points: points.len(),
        batches,
        ops_per_batch,
        clients,
        updates_per_sec: (batches * ops_per_batch) as f64 / ingest_elapsed.max(1e-9),
        queries_per_sec: queries as f64 / ingest_elapsed.max(1e-9),
        query_p50_us: lat_us[queries / 2],
        query_p99_us: lat_us[(queries * 99 / 100).min(queries - 1)],
        generations: last_generation,
        shed: metrics.ingest.shed,
    })
}

fn ingest_json(cost: &PublishCost, soak: &Soak) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"publish_cost\": {\n");
    out.push_str(&format!(
        "    \"dataset_points\": {},\n",
        cost.dataset_points
    ));
    out.push_str(&format!("    \"batch_ops\": {},\n", cost.batch_ops));
    out.push_str(&format!("    \"batches\": {},\n", cost.batches));
    out.push_str(&format!(
        "    \"full_build_ms\": {:.3},\n",
        cost.full_build_ms
    ));
    out.push_str(&format!(
        "    \"delta_mean_ms\": {:.3},\n",
        cost.delta_mean_ms
    ));
    out.push_str(&format!(
        "    \"delta_p99_ms\": {:.3},\n",
        cost.delta_p99_ms
    ));
    out.push_str(&format!("    \"speedup\": {:.1},\n", cost.speedup));
    out.push_str(&format!("    \"incremental\": {}\n", cost.incremental));
    out.push_str("  },\n");
    out.push_str("  \"soak\": {\n");
    out.push_str(&format!(
        "    \"dataset_points\": {},\n",
        soak.dataset_points
    ));
    out.push_str(&format!("    \"batches\": {},\n", soak.batches));
    out.push_str(&format!("    \"ops_per_batch\": {},\n", soak.ops_per_batch));
    out.push_str(&format!("    \"clients\": {},\n", soak.clients));
    out.push_str(&format!(
        "    \"updates_per_sec\": {:.1},\n",
        soak.updates_per_sec
    ));
    out.push_str(&format!(
        "    \"queries_per_sec\": {:.1},\n",
        soak.queries_per_sec
    ));
    out.push_str(&format!(
        "    \"query_p50_us\": {:.1},\n",
        soak.query_p50_us
    ));
    out.push_str(&format!(
        "    \"query_p99_us\": {:.1},\n",
        soak.query_p99_us
    ));
    out.push_str(&format!("    \"generations\": {},\n", soak.generations));
    out.push_str(&format!("    \"shed\": {}\n", soak.shed));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let n: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let batch_ops: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(n / 500);
    let soak_batches: usize = positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 24 } else { 150 });

    assert!(
        batch_ops * 100 <= n,
        "the acceptance bound is a batch of at most 1% of the dataset"
    );

    // Section 1: the acceptance cell. Smoke runs the same dataset size —
    // the criterion is about the 100k-point regime, so shrinking it
    // would gate nothing.
    let cost_batches = if smoke { 4 } else { 16 };
    println!(
        "# publish cost: {n} points, {cost_batches} delta batches of {batch_ops} ops \
         ({:.2}% of the dataset)",
        batch_ops as f64 * 100.0 / n as f64
    );
    let fix = Fixture::usgs(n, 0x5eed);
    let cost = match publish_cost(&fix.points, batch_ops, cost_batches) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("# FATAL: publish cost: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# full build {:.1}ms vs delta mean {:.1}ms (p99 {:.1}ms) -> {:.1}x cheaper; \
         {}/{} incremental",
        cost.full_build_ms,
        cost.delta_mean_ms,
        cost.delta_p99_ms,
        cost.speedup,
        cost.incremental,
        cost.batches
    );

    // Section 2: sustained mix on a smaller dataset, so the soak stays
    // seconds long while still crossing many generations.
    let soak_n = if smoke { 5_000 } else { 20_000 };
    let soak_ops = (soak_n / 200).max(2);
    let clients = std::thread::available_parallelism()
        .map_or(2, |c| c.get())
        .clamp(2, 6);
    println!(
        "# soak: {soak_n} points, {soak_batches} batches of {soak_ops} ops, {clients} query clients"
    );
    let soak_fix = Fixture::usgs(soak_n, 0xCAFE);
    let soak = match soak(&soak_fix.points, soak_ops, soak_batches, clients, 0x9e37) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("# FATAL: soak: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# {:.0} updates/s alongside {:.0} queries/s; query p50 {:.0}us p99 {:.0}us; \
         {} generations, {} shed",
        soak.updates_per_sec,
        soak.queries_per_sec,
        soak.query_p50_us,
        soak.query_p99_us,
        soak.generations,
        soak.shed
    );

    for (name, v) in [
        ("full_build_ms", cost.full_build_ms),
        ("delta_mean_ms", cost.delta_mean_ms),
        ("speedup", cost.speedup),
        ("updates_per_sec", soak.updates_per_sec),
        ("queries_per_sec", soak.queries_per_sec),
        ("query_p99_us", soak.query_p99_us),
    ] {
        if !v.is_finite() || v <= 0.0 {
            eprintln!("# FATAL: {name} measured {v}");
            std::process::exit(1);
        }
    }

    let json = ingest_json(&cost, &soak);
    std::fs::write("BENCH_INGEST.json", &json).expect("write BENCH_INGEST.json");
    println!("# wrote BENCH_INGEST.json");

    if cost.speedup < 10.0 {
        eprintln!(
            "# FATAL: delta publish is only {:.1}x cheaper than a full rebuild (acceptance: 10x)",
            cost.speedup
        );
        std::process::exit(1);
    }
}
