//! Regenerates every table and figure of §7 of *The Spatial Skyline
//! Queries* (plus the §6 mixed experiment) as text tables.
//!
//! ```text
//! cargo run -p ssq-bench --release --bin reproduce -- --all
//! cargo run -p ssq-bench --release --bin reproduce -- --fig12a --n 50000
//! ```
//!
//! Flags: `--table5 --fig12a --fig12b --fig12c --fig12d --fig12e --fig12f
//! --cardinality --density --continuous --mixed --all`, plus `--n <size>`
//! (dataset size, default 30000), `--batch <k>` (queries per setting,
//! default 20) and `--quick` (small sizes for smoke runs).

use ssq_bench::{run_batch, run_continuous, run_mixed, table5, Algo, Fixture};
use ssq_workload::usgs::{synthetic_usgs, UsgsConfig};

struct Opts {
    n: usize,
    batch: usize,
    which: Vec<String>,
}

fn parse_args() -> Opts {
    let mut n = 30_000;
    let mut batch = 20;
    let mut which: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().expect("--n SIZE").parse().expect("size"),
            "--batch" => batch = args.next().expect("--batch K").parse().expect("batch"),
            "--quick" => {
                n = 3_000;
                batch = 5;
            }
            "--all" => which.push("all".into()),
            flag if flag.starts_with("--") => which.push(flag[2..].to_string()),
            other => panic!("unknown argument {other}"),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    Opts { n, batch, which }
}

fn wants(opts: &Opts, name: &str) -> bool {
    opts.which.iter().any(|w| w == name || w == "all")
}

const QCOUNTS: [usize; 5] = [2, 4, 6, 8, 10];
const AREAS: [(f64, &str); 5] = [
    (0.0001, "0.01%"),
    (0.0005, "0.05%"),
    (0.001, "0.10%"),
    (0.003, "0.30%"),
    (0.007, "0.70%"),
];

fn fig12_query_sweep(fix: &Fixture, opts: &Opts, metric: &str) {
    println!(
        "\n|Q| sweep (MBR(Q) = 0.1% of universe, |P| = {}, {} queries/setting)",
        fix.points.len(),
        opts.batch
    );
    println!("{:>5}  {:>12}  {:>12}  {:>12}", "|Q|", "BBS", "B2S2", "VS2");
    for count in QCOUNTS {
        let rows: Vec<f64> = [Algo::Bbs, Algo::B2s2, Algo::Vs2]
            .iter()
            .map(|&a| {
                let c = run_batch(fix, a, count, 0.001, opts.batch, 42 + count as u64);
                match metric {
                    "time" => c.time_ms,
                    "dom" => c.dominance_checks,
                    "io" => c.node_accesses,
                    _ => unreachable!(),
                }
            })
            .collect();
        println!(
            "{:>5}  {:>12.3}  {:>12.3}  {:>12.3}",
            count, rows[0], rows[1], rows[2]
        );
    }
}

fn fig12_area_sweep(fix: &Fixture, opts: &Opts, metric: &str) {
    println!(
        "\nMBR(Q) sweep (|Q| = 6, |P| = {}, {} queries/setting)",
        fix.points.len(),
        opts.batch
    );
    println!(
        "{:>7}  {:>12}  {:>12}  {:>12}",
        "MBR(Q)", "BBS", "B2S2", "VS2"
    );
    for (frac, label) in AREAS {
        let rows: Vec<f64> = [Algo::Bbs, Algo::B2s2, Algo::Vs2]
            .iter()
            .map(|&a| {
                let c = run_batch(fix, a, 6, frac, opts.batch, 137 + (frac * 1e6) as u64);
                match metric {
                    "time" => c.time_ms,
                    "dom" => c.dominance_checks,
                    "io" => c.node_accesses,
                    _ => unreachable!(),
                }
            })
            .collect();
        println!(
            "{:>7}  {:>12.3}  {:>12.3}  {:>12.3}",
            label, rows[0], rows[1], rows[2]
        );
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "spatial-skyline reproduction harness (|P| = {}, batch = {})",
        opts.n, opts.batch
    );

    if wants(&opts, "table5") {
        println!("\n== Table 5: synthetic USGS dataset composition ==");
        println!(
            "{:<16} {:>8} {:>10} {:>10}",
            "category", "count", "fraction", "target"
        );
        for (name, count, target) in table5(opts.n, 0x5567_5347) {
            println!(
                "{:<16} {:>8} {:>9.2}% {:>9.2}%",
                name,
                count,
                100.0 * count as f64 / opts.n as f64,
                100.0 * target
            );
        }
    }

    let needs_fixture = [
        "fig12a",
        "fig12b",
        "fig12c",
        "fig12d",
        "fig12e",
        "fig12f",
        "continuous",
        "mixed",
    ]
    .iter()
    .any(|f| wants(&opts, f));
    let fix = if needs_fixture {
        eprintln!("building indexes over {} points ...", opts.n);
        Some(Fixture::usgs(opts.n, 0x5567_5347))
    } else {
        None
    };

    if let Some(fix) = &fix {
        if wants(&opts, "fig12a") {
            println!("\n== Figure 12a: CPU time (ms) vs |Q| ==");
            fig12_query_sweep(fix, &opts, "time");
        }
        if wants(&opts, "fig12b") {
            println!("\n== Figure 12b: dominance checks vs |Q| ==");
            fig12_query_sweep(fix, &opts, "dom");
        }
        if wants(&opts, "fig12c") {
            println!("\n== Figure 12c: index node/page accesses vs |Q| ==");
            fig12_query_sweep(fix, &opts, "io");
        }
        if wants(&opts, "fig12d") {
            println!("\n== Figure 12d: CPU time (ms) vs MBR(Q) area ==");
            fig12_area_sweep(fix, &opts, "time");
        }
        if wants(&opts, "fig12e") {
            println!("\n== Figure 12e: dominance checks vs MBR(Q) area ==");
            fig12_area_sweep(fix, &opts, "dom");
        }
        if wants(&opts, "fig12f") {
            println!("\n== Figure 12f: index node/page accesses vs MBR(Q) area ==");
            fig12_area_sweep(fix, &opts, "io");
        }
    }

    if wants(&opts, "cardinality") {
        println!("\n== Cardinality sweep: CPU time (ms) vs |P| (|Q| = 6, MBR 0.1%) ==");
        println!("{:>8}  {:>12}  {:>12}  {:>12}", "|P|", "BBS", "B2S2", "VS2");
        let sizes = [5_000usize, 10_000, 20_000, 40_000, 80_000];
        for n in sizes {
            if n > opts.n * 4 && opts.n <= 3_000 {
                // --quick: cap the sweep
                continue;
            }
            let f = Fixture::usgs(n, 0x5567_5347 + n as u64);
            let rows: Vec<f64> = [Algo::Bbs, Algo::B2s2, Algo::Vs2]
                .iter()
                .map(|&a| run_batch(&f, a, 6, 0.001, opts.batch, n as u64).time_ms)
                .collect();
            println!(
                "{:>8}  {:>12.3}  {:>12.3}  {:>12.3}",
                n, rows[0], rows[1], rows[2]
            );
        }
    }

    if wants(&opts, "density") {
        println!(
            "\n== Density sweep: CPU time (ms) vs cluster σ (|P| = {}, |Q| = 6) ==",
            opts.n
        );
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}  {:>10}",
            "sigma", "BBS", "B2S2", "VS2", "|skyline|"
        );
        for sigma in [0.005, 0.01, 0.02, 0.05, 0.1] {
            let points: Vec<_> = synthetic_usgs(&UsgsConfig {
                n: opts.n,
                cluster_sigma: sigma,
                seed: 0xD05,
                ..UsgsConfig::default()
            })
            .iter()
            .map(|u| u.location)
            .collect();
            let f = Fixture::from_points(points);
            let mut sky = 0.0;
            let rows: Vec<f64> = [Algo::Bbs, Algo::B2s2, Algo::Vs2]
                .iter()
                .map(|&a| {
                    let c = run_batch(&f, a, 6, 0.001, opts.batch, (sigma * 1e4) as u64);
                    sky = c.skyline_size;
                    c.time_ms
                })
                .collect();
            println!(
                "{:>8.3}  {:>12.3}  {:>12.3}  {:>12.3}  {:>10.1}",
                sigma, rows[0], rows[1], rows[2], sky
            );
        }
    }

    if let Some(fix) = &fix {
        if wants(&opts, "continuous") {
            println!("\n== Continuous SSQ (VCS², §5): outcome mix and speedup vs |Q| ==");
            println!(
                "{:>5}  {:>10} {:>12} {:>11}  {:>9} {:>9} {:>9} {:>8}",
                "|Q|",
                "unchanged",
                "incremental",
                "recomputed",
                "VCS2 ms",
                "fast ms",
                "VS2 ms",
                "speedup"
            );
            let updates = if opts.n <= 3_000 { 100 } else { 300 };
            for count in 3..=10usize {
                let row = run_continuous(fix, count, updates, 0.005, 7_000 + count as u64);
                println!(
                    "{:>5}  {:>9.1}% {:>11.1}% {:>10.1}%  {:>9.3} {:>9.3} {:>9.3} {:>7.2}x",
                    row.query_count,
                    100.0 * row.unchanged_frac,
                    100.0 * row.incremental_frac,
                    100.0 * row.recomputed_frac,
                    row.vcs2_ms,
                    row.vcs2_fast_ms,
                    row.vs2_ms,
                    row.vs2_ms / row.vcs2_fast_ms.max(1e-9),
                );
            }
        }

        if wants(&opts, "mixed") {
            println!("\n== Mixed skylines S(A, Q) (§6) ==");
            println!(
                "{:>4}  {:>7} {:>7} {:>8}  {:>10} {:>10} {:>10}",
                "|A|", "|S(A)|", "|S(Q)|", "|S(A,Q)|", "naive ms", "B2S2 ms", "VS2 ms"
            );
            for attr_count in [1usize, 2] {
                let row = run_mixed(fix, attr_count, 31 + attr_count as u64);
                println!(
                    "{:>4}  {:>7} {:>7} {:>8}  {:>10.3} {:>10.3} {:>10.3}",
                    row.attr_count,
                    row.static_size,
                    row.spatial_size,
                    row.mixed_size,
                    row.naive_ms,
                    row.b2s2_ms,
                    row.vs2_ms
                );
            }
        }
    }

    println!("\ndone.");
}
