//! Kernel-path microbenchmark: scalar query paths vs the zero-allocation
//! scratch-arena kernels, on identical query streams.
//!
//! For each of the three single-query algorithms (naive scan, VS², B²S²)
//! the same prebuilt contexts are run through three paths:
//!
//! * **scalar** — the scalar entry point (one `Vec<f64>` distance
//!   vector per candidate);
//! * **kernel** — the scratch-arena kernel entry point with the SIMD
//!   dispatch pinned to the scalar-oracle tile kernels
//!   ([`simd::set_force_scalar`]), isolating the arena/tiling win;
//! * **simd** — the same kernel entry point under the process's
//!   runtime-detected dispatch (AVX2/SSE2 on x86-64), isolating the
//!   data-parallel win on top.
//!
//! Every row records which tile-kernel path served it (`kernel_path`),
//! so the JSON artifact is attributable to an ISA. All paths are warmed
//! first, so the record shows steady-state behaviour — the regime the
//! arena is built for.
//!
//! [`hotpath_json`] renders the rows as the `BENCH_hotpath.json`
//! artifact; [`validate_rows`] rejects non-finite numbers so the CI smoke
//! step fails loudly instead of committing NaNs.

use std::time::Instant;

use crate::Fixture;
use ssq_core::{
    b2s2, b2s2_kernel, naive_sorted, naive_sorted_kernel, vs2_kernel, vs2_with, DistanceScratch,
    QueryContext, SkylineResult, VsExpansion,
};
use ssq_geom::simd;
use ssq_geom::Point;

/// The minimum measured queries per row: below this, `p99_us` is a
/// max-of-a-handful and the SIMD-vs-scalar comparison is noise.
/// [`run_hotpath`] raises its repeat count until every row reaches it.
pub const MIN_HOTPATH_SAMPLES: usize = 200;

/// One (path, algorithm) cell of the hot-path record.
#[derive(Clone, Copy, Debug)]
pub struct HotpathRow {
    /// `"scalar"`, `"kernel"` (arena with forced-scalar tile kernels),
    /// or `"simd"` (arena under the detected dispatch).
    pub path: &'static str,
    /// The tile-kernel dispatch that served this row —
    /// `"none"` for the scalar path (it never touches the tile
    /// kernels), `"scalar"`/`"tiled"`/`"sse2"`/`"avx2"` otherwise.
    pub kernel_path: &'static str,
    /// `"naive"`, `"vs2"`, or `"b2s2"`.
    pub algo: &'static str,
    /// Queries measured (query sets × repeats).
    pub queries: usize,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
    /// Queries per second over the whole measured run.
    pub qps: f64,
    /// Distance computations per second at the median per-query
    /// latency. Deriving the rate from `p50_us` instead of the total
    /// wall clock keeps the SIMD-vs-scalar gate stable on shared hosts,
    /// where a single scheduler preemption inside a 200-sample run
    /// would otherwise swing the mean by 2x.
    pub dist_per_sec: f64,
    /// Heap allocations per query, as counted by
    /// [`QueryStats::allocations`](ssq_core::QueryStats) (scalar paths
    /// count each materialized distance vector; kernel paths count arena
    /// growth events, which a warm arena no longer has).
    pub allocs_per_query: f64,
    /// Dominance tests per query.
    pub dominance_per_query: f64,
}

fn measure(
    path: &'static str,
    kernel_path: &'static str,
    algo: &'static str,
    ctxs: &[QueryContext],
    repeats: usize,
    mut run: impl FnMut(&QueryContext) -> SkylineResult,
) -> HotpathRow {
    let mut lat_us: Vec<f64> = Vec::with_capacity(ctxs.len() * repeats);
    let (mut dist, mut allocs, mut dom) = (0u64, 0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..repeats {
        for ctx in ctxs {
            let t = Instant::now();
            let r = run(ctx);
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            dist += r.stats.distance_computations;
            allocs += r.stats.allocations;
            dom += r.stats.dominance_checks;
            std::hint::black_box(&r);
        }
    }
    let total = t0.elapsed().as_secs_f64().max(1e-9);
    lat_us.sort_unstable_by(f64::total_cmp);
    let q = lat_us.len();
    let p50_us = lat_us[q / 2];
    HotpathRow {
        path,
        kernel_path,
        algo,
        queries: q,
        p50_us,
        p99_us: lat_us[(q * 99 / 100).min(q - 1)],
        qps: q as f64 / total,
        dist_per_sec: (dist as f64 / q as f64) * (1e6 / p50_us.max(1e-3)),
        allocs_per_query: allocs as f64 / q as f64,
        dominance_per_query: dom as f64 / q as f64,
    }
}

/// Runs the scalar-vs-kernel-vs-simd comparison over `query_sets`, each
/// repeated at least `repeats` times (raised until every row measures
/// [`MIN_HOTPATH_SAMPLES`] queries), and returns one row per
/// (path, algorithm) cell.
///
/// One warm-up pass per variant runs before any timing so the kernel
/// arena has grown to the workload's shape and both paths start from a
/// hot index. The kernel rows pin the tile dispatch to the scalar
/// oracle via [`simd::set_force_scalar`]; the simd rows restore the
/// detected dispatch — so one process measures both sides of the ISA
/// comparison.
pub fn run_hotpath(fix: &Fixture, query_sets: &[Vec<Point>], repeats: usize) -> Vec<HotpathRow> {
    assert!(!query_sets.is_empty(), "hotpath needs at least one query");
    assert!(repeats > 0, "hotpath needs at least one repeat");
    let repeats = repeats.max(MIN_HOTPATH_SAMPLES.div_ceil(query_sets.len()));
    let ctxs: Vec<QueryContext> = query_sets.iter().map(|q| QueryContext::new(q)).collect();
    let detected = simd::detected_dispatch().path().name();
    let mut scratch = DistanceScratch::new();
    for forced in [true, false] {
        simd::set_force_scalar(forced);
        for ctx in &ctxs {
            std::hint::black_box(naive_sorted(&fix.points, ctx));
            std::hint::black_box(vs2_with(&fix.voronoi, ctx, VsExpansion::Safe, None));
            std::hint::black_box(b2s2(&fix.rtree, ctx));
            std::hint::black_box(naive_sorted_kernel(&fix.points, ctx, &mut scratch));
            std::hint::black_box(vs2_kernel(&fix.voronoi, ctx, &mut scratch));
            std::hint::black_box(b2s2_kernel(&fix.rtree, ctx, &mut scratch));
        }
    }
    let mut rows = Vec::with_capacity(9);
    {
        let mut cell =
            |path, kernel_path, algo, run: &mut dyn FnMut(&QueryContext) -> SkylineResult| {
                rows.push(measure(path, kernel_path, algo, &ctxs, repeats, run));
            };
        cell("scalar", "none", "naive", &mut |ctx| {
            naive_sorted(&fix.points, ctx)
        });
        simd::set_force_scalar(true);
        cell("kernel", "scalar", "naive", &mut |ctx| {
            naive_sorted_kernel(&fix.points, ctx, &mut scratch)
        });
        simd::set_force_scalar(false);
        cell("simd", detected, "naive", &mut |ctx| {
            naive_sorted_kernel(&fix.points, ctx, &mut scratch)
        });
        cell("scalar", "none", "vs2", &mut |ctx| {
            vs2_with(&fix.voronoi, ctx, VsExpansion::Safe, None)
        });
        simd::set_force_scalar(true);
        cell("kernel", "scalar", "vs2", &mut |ctx| {
            vs2_kernel(&fix.voronoi, ctx, &mut scratch)
        });
        simd::set_force_scalar(false);
        cell("simd", detected, "vs2", &mut |ctx| {
            vs2_kernel(&fix.voronoi, ctx, &mut scratch)
        });
        cell("scalar", "none", "b2s2", &mut |ctx| b2s2(&fix.rtree, ctx));
        simd::set_force_scalar(true);
        cell("kernel", "scalar", "b2s2", &mut |ctx| {
            b2s2_kernel(&fix.rtree, ctx, &mut scratch)
        });
        simd::set_force_scalar(false);
        cell("simd", detected, "b2s2", &mut |ctx| {
            b2s2_kernel(&fix.rtree, ctx, &mut scratch)
        });
    }
    rows
}

/// Mean of `field` over the rows of one path.
fn mean_of(rows: &[HotpathRow], path: &str, field: impl Fn(&HotpathRow) -> f64) -> f64 {
    let picked: Vec<f64> = rows.iter().filter(|r| r.path == path).map(&field).collect();
    picked.iter().sum::<f64>() / picked.len().max(1) as f64
}

/// Mean allocations/query of `(scalar, kernel)` rows.
pub fn mean_allocs(rows: &[HotpathRow]) -> (f64, f64) {
    (
        mean_of(rows, "scalar", |r| r.allocs_per_query),
        mean_of(rows, "kernel", |r| r.allocs_per_query),
    )
}

/// Mean queries/sec of `(scalar, kernel)` rows.
pub fn mean_qps(rows: &[HotpathRow]) -> (f64, f64) {
    (
        mean_of(rows, "scalar", |r| r.qps),
        mean_of(rows, "kernel", |r| r.qps),
    )
}

/// Mean queries/sec of the `simd` rows.
pub fn mean_simd_qps(rows: &[HotpathRow]) -> f64 {
    mean_of(rows, "simd", |r| r.qps)
}

/// The `dist_per_sec` of one (path, algo) row, if present.
pub fn dist_per_sec_of(rows: &[HotpathRow], path: &str, algo: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.path == path && r.algo == algo)
        .map(|r| r.dist_per_sec)
}

/// Rejects rows containing non-finite numbers (a NaN here means a broken
/// kernel, and must fail CI rather than be serialized).
pub fn validate_rows(rows: &[HotpathRow]) -> Result<(), String> {
    for r in rows {
        let fields = [
            ("p50_us", r.p50_us),
            ("p99_us", r.p99_us),
            ("qps", r.qps),
            ("dist_per_sec", r.dist_per_sec),
            ("allocs_per_query", r.allocs_per_query),
            ("dominance_per_query", r.dominance_per_query),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return Err(format!("{}/{}: {name} is {v}", r.path, r.algo));
            }
        }
    }
    Ok(())
}

/// Renders the hot-path record as the `BENCH_hotpath.json` document.
///
/// Hand-rolled writer (the workspace is std-only); call [`validate_rows`]
/// first — non-finite values are not representable in JSON.
pub fn hotpath_json(dataset_points: usize, rows: &[HotpathRow]) -> String {
    let (scalar_allocs, kernel_allocs) = mean_allocs(rows);
    let (scalar_qps, kernel_qps) = mean_qps(rows);
    let simd_qps = mean_simd_qps(rows);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"dataset_points\": {dataset_points},\n"));
    out.push_str(&format!(
        "  \"kernel_path\": \"{}\",\n",
        simd::detected_dispatch().path().name()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"kernel_path\": \"{}\", \"algo\": \"{}\", \
             \"queries\": {}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"qps\": {:.1}, \
             \"dist_per_sec\": {:.1}, \"allocs_per_query\": {:.3}, \
             \"dominance_per_query\": {:.3}}}{}\n",
            r.path,
            r.kernel_path,
            r.algo,
            r.queries,
            r.p50_us,
            r.p99_us,
            r.qps,
            r.dist_per_sec,
            r.allocs_per_query,
            r.dominance_per_query,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"scalar_allocs_per_query\": {scalar_allocs:.3},\n"
    ));
    out.push_str(&format!(
        "    \"kernel_allocs_per_query\": {kernel_allocs:.3},\n"
    ));
    // A fully warm kernel path allocates exactly zero; floor the
    // denominator at one allocation over the whole measured run so the
    // ratio stays a meaningful "at least this many times fewer" instead
    // of exploding on the zero.
    let total_queries: usize = rows.iter().map(|r| r.queries).sum();
    let floor = 1.0 / total_queries.max(1) as f64;
    out.push_str(&format!(
        "    \"alloc_improvement\": {:.1},\n",
        scalar_allocs / kernel_allocs.max(floor)
    ));
    out.push_str(&format!("    \"scalar_qps\": {scalar_qps:.1},\n"));
    out.push_str(&format!("    \"kernel_qps\": {kernel_qps:.1},\n"));
    out.push_str(&format!("    \"simd_qps\": {simd_qps:.1}\n"));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_query_sets;

    #[test]
    fn hotpath_rows_are_finite_and_kernel_allocates_less() {
        let fix = Fixture::usgs(500, 14);
        let sets = uniform_query_sets(&fix.points, 6, 4, 43);
        let rows = run_hotpath(&fix, &sets, 2);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.queries >= MIN_HOTPATH_SAMPLES,
                "{}/{}: {} samples",
                r.path,
                r.algo,
                r.queries
            );
        }
        validate_rows(&rows).expect("finite rows");
        let (scalar, kernel) = mean_allocs(&rows);
        assert!(
            kernel * 2.0 <= scalar,
            "warm kernel path should allocate at least 2x less \
             (scalar {scalar:.2}/query vs kernel {kernel:.2}/query)"
        );
        // Every simd row ran the detected dispatch; every kernel row was
        // pinned to the scalar tile kernels.
        let detected = simd::detected_dispatch().path().name();
        for r in &rows {
            match r.path {
                "scalar" => assert_eq!(r.kernel_path, "none"),
                "kernel" => assert_eq!(r.kernel_path, "scalar"),
                "simd" => assert_eq!(r.kernel_path, detected),
                other => panic!("unexpected path {other}"),
            }
        }
        let json = hotpath_json(500, &rows);
        assert!(json.contains("\"alloc_improvement\""));
        assert!(json.contains("\"path\": \"kernel\""));
        assert!(json.contains("\"path\": \"simd\""));
        assert!(json.contains("\"kernel_path\""));
        assert!(json.contains("\"simd_qps\""));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn validation_catches_non_finite_fields() {
        let mut row = HotpathRow {
            path: "scalar",
            kernel_path: "none",
            algo: "naive",
            queries: 1,
            p50_us: 1.0,
            p99_us: 1.0,
            qps: 1.0,
            dist_per_sec: 1.0,
            allocs_per_query: 1.0,
            dominance_per_query: 1.0,
        };
        assert!(validate_rows(&[row]).is_ok());
        row.qps = f64::NAN;
        assert!(validate_rows(&[row]).is_err());
    }
}
