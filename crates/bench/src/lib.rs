//! # ssq-bench
//!
//! The experiment harness reproducing §7 of *The Spatial Skyline Queries*.
//!
//! Each experiment of the paper maps to one function here; the `reproduce`
//! binary prints them as tables, and the Criterion benches under
//! `benches/` wrap the timing-sensitive ones. Absolute numbers differ
//! from the 2006 testbed; the comparisons (who wins, by what factor, in
//! which direction each curve moves) are the reproduction target — see
//! EXPERIMENTS.md.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

pub mod hotpath;

pub use hotpath::{
    dist_per_sec_of, hotpath_json, mean_allocs, mean_qps, mean_simd_qps, run_hotpath,
    validate_rows, HotpathRow, MIN_HOTPATH_SAMPLES,
};

use std::time::Instant;

use ssq_core::mixed::{mixed_b2s2, mixed_naive, mixed_vs2, MixedContext};
use ssq_core::{
    b2s2, bbs, vs2_with, ContinuousSkyline, QueryContext, RTreeIndex, VoronoiIndex, VsExpansion,
};
use ssq_geom::Point;
use ssq_workload::motion::{MotionConfig, MovingQuerySet};
use ssq_workload::queries::{random_query_set, QueryConfig};
use ssq_workload::rng::Xoshiro256;
use ssq_workload::usgs::{synthetic_usgs, UsgsConfig, CATEGORY_MIX};

/// Which algorithm a measurement row belongss to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The BBS competitor baseline.
    Bbs,
    /// B²S².
    B2s2,
    /// VS² (safe expansion).
    Vs2,
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algo::Bbs => write!(f, "BBS"),
            Algo::B2s2 => write!(f, "B2S2"),
            Algo::Vs2 => write!(f, "VS2"),
        }
    }
}

/// Averaged costs of one algorithm at one experiment setting.
#[derive(Clone, Copy, Debug, Default)]
pub struct Costs {
    /// Mean wall-clock time per query, milliseconds.
    pub time_ms: f64,
    /// Mean dominance checks per query.
    pub dominance_checks: f64,
    /// Mean index node/page accesses per query.
    pub node_accesses: f64,
    /// Mean skyline size.
    pub skyline_size: f64,
}

/// The shared experimental fixture: one dataset with both physical
/// designs built over it.
pub struct Fixture {
    /// The data points.
    pub points: Vec<Point>,
    /// R*-tree (BBS, B²S²).
    pub rtree: RTreeIndex,
    /// Delaunay graph + paged adjacency (VS², VCS²).
    pub voronoi: VoronoiIndex,
}

impl Fixture {
    /// Builds the fixture over the synthetic USGS dataset of size `n`.
    pub fn usgs(n: usize, seed: u64) -> Fixture {
        let points: Vec<Point> = synthetic_usgs(&UsgsConfig {
            n,
            seed,
            ..UsgsConfig::default()
        })
        .iter()
        .map(|u| u.location)
        .collect();
        Self::from_points(points)
    }

    /// Builds the fixture over an explicit point set.
    pub fn from_points(points: Vec<Point>) -> Fixture {
        let rtree = RTreeIndex::new(&points);
        let voronoi = VoronoiIndex::new(&points).expect("distinct points");
        Fixture {
            points,
            rtree,
            voronoi,
        }
    }
}

/// Runs `algo` once and returns `(time_ms, stats, skyline_len)`.
pub fn run_once(
    fix: &Fixture,
    algo: Algo,
    ctx: &QueryContext,
) -> (f64, ssq_core::QueryStats, usize) {
    let t0 = Instant::now();
    let result = match algo {
        Algo::Bbs => bbs(&fix.rtree, ctx),
        Algo::B2s2 => b2s2(&fix.rtree, ctx),
        Algo::Vs2 => vs2_with(&fix.voronoi, ctx, VsExpansion::Safe, None),
    };
    let dt = t0.elapsed().as_secs_f64() * 1e3;
    (dt, result.stats, result.skyline.len())
}

/// Averages `algo` over a batch of random query sets.
pub fn run_batch(
    fix: &Fixture,
    algo: Algo,
    count: usize,
    mbr_area_fraction: f64,
    batch: usize,
    seed: u64,
) -> Costs {
    let mut acc = Costs::default();
    for k in 0..batch {
        let q = random_query_set(&QueryConfig {
            count,
            mbr_area_fraction,
            universe: ssq_workload::usgs::universe(),
            seed: seed.wrapping_add(k as u64 * 7919),
        });
        let ctx = QueryContext::new(&q);
        let (t, stats, len) = run_once(fix, algo, &ctx);
        acc.time_ms += t;
        acc.dominance_checks += stats.dominance_checks as f64;
        acc.node_accesses += stats.node_accesses as f64;
        acc.skyline_size += len as f64;
    }
    let b = batch as f64;
    Costs {
        time_ms: acc.time_ms / b,
        dominance_checks: acc.dominance_checks / b,
        node_accesses: acc.node_accesses / b,
        skyline_size: acc.skyline_size / b,
    }
}

/// One row of the continuous (VCS²) experiment.
#[derive(Clone, Copy, Debug)]
pub struct ContinuousRow {
    /// Number of moving query objects.
    pub query_count: usize,
    /// Fraction of updates with outcome Unchanged (pattern I).
    pub unchanged_frac: f64,
    /// Fraction handled incrementally (patterns II-V).
    pub incremental_frac: f64,
    /// Fraction that required a full VS² recomputation.
    pub recomputed_frac: f64,
    /// Mean VCS² update time (ms), over all updates.
    pub vcs2_ms: f64,
    /// Mean VCS² update time (ms) over the *non-recompute* updates only —
    /// the population the paper's "factor of 3" speedup claim refers to
    /// ("For the other 97% of movements, VCS² outperforms VS²...").
    pub vcs2_fast_ms: f64,
    /// Mean fresh-VS² recomputation time (ms) on the same states.
    pub vs2_ms: f64,
}

/// Runs the continuous experiment for one `|Q|`: streams `updates`
/// movements, measuring VCS² update cost and, every few steps, the cost a
/// from-scratch VS² would have paid.
pub fn run_continuous(
    fix: &Fixture,
    query_count: usize,
    updates: usize,
    step: f64,
    seed: u64,
) -> ContinuousRow {
    let mut team = MovingQuerySet::new(MotionConfig {
        count: query_count,
        step,
        start_box: 0.05,
        seed,
        ..MotionConfig::default()
    });
    let mut cont = ContinuousSkyline::new(&fix.voronoi, team.positions());

    let mut vcs2_time = 0.0;
    let mut vcs2_fast_time = 0.0;
    let mut fast_updates = 0usize;
    let mut vs2_time = 0.0;
    let mut vs2_samples = 0usize;
    for i in 0..updates {
        let up = team.next_update();
        let t0 = Instant::now();
        let (outcome, _) = cont.update(up.index, up.location);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        vcs2_time += dt;
        if outcome != ssq_core::UpdateOutcome::Recomputed {
            vcs2_fast_time += dt;
            fast_updates += 1;
        }

        // Sample the rerun cost on a subset of states (it is the slow
        // side; sampling keeps the harness fast without biasing the mean).
        if i % 5 == 0 {
            let ctx = QueryContext::new(team.positions());
            let t1 = Instant::now();
            let _ = vs2_with(&fix.voronoi, &ctx, VsExpansion::Safe, None);
            vs2_time += t1.elapsed().as_secs_f64() * 1e3;
            vs2_samples += 1;
        }
    }
    let counts = cont.counts();
    let total = counts.total() as f64;
    ContinuousRow {
        query_count,
        unchanged_frac: counts.unchanged as f64 / total,
        incremental_frac: counts.incremental as f64 / total,
        recomputed_frac: counts.recomputed as f64 / total,
        vcs2_ms: vcs2_time / updates as f64,
        vcs2_fast_ms: vcs2_fast_time / fast_updates.max(1) as f64,
        vs2_ms: vs2_time / vs2_samples.max(1) as f64,
    }
}

/// One row of the mixed-skyline experiment.
#[derive(Clone, Copy, Debug)]
pub struct MixedRow {
    /// Number of static attributes.
    pub attr_count: usize,
    /// |S(A)|.
    pub static_size: usize,
    /// |S(Q)|.
    pub spatial_size: usize,
    /// |S(A, Q)|.
    pub mixed_size: usize,
    /// Naive oracle time (ms).
    pub naive_ms: f64,
    /// Mixed B²S² time (ms).
    pub b2s2_ms: f64,
    /// Mixed VS² time (ms).
    pub vs2_ms: f64,
}

/// Runs the §6 mixed-skyline experiment for one attribute arity.
pub fn run_mixed(fix: &Fixture, attr_count: usize, seed: u64) -> MixedRow {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let attrs: Vec<Vec<f64>> = (0..fix.points.len())
        .map(|_| (0..attr_count).map(|_| rng.f64()).collect())
        .collect();
    let q = random_query_set(&QueryConfig::paper_default(5, seed ^ 0xABCD));
    let ctx = QueryContext::new(&q);
    let mctx = MixedContext::new(&fix.points, &attrs, &ctx);

    let t0 = Instant::now();
    let naive = mixed_naive(&fix.points, &mctx);
    let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let rb = mixed_b2s2(&fix.rtree, &mctx);
    let b2s2_ms = t1.elapsed().as_secs_f64() * 1e3;
    let t2 = Instant::now();
    let rv = mixed_vs2(&fix.voronoi, &mctx);
    let vs2_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        naive.skyline, rb.skyline,
        "mixed B2S2 disagrees with oracle"
    );
    assert_eq!(naive.skyline, rv.skyline, "mixed VS2 disagrees with oracle");

    let spatial = b2s2(&fix.rtree, &ctx);
    MixedRow {
        attr_count,
        static_size: mctx.static_skyline().len(),
        spatial_size: spatial.skyline.len(),
        mixed_size: naive.skyline.len(),
        naive_ms,
        b2s2_ms,
        vs2_ms,
    }
}

/// One row of the engine throughput-scaling experiment: the same request
/// stream pushed through [`ssq_engine::Engine`] pools of different sizes.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRow {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Requests served.
    pub requests: usize,
    /// Wall-clock service rate.
    pub reqs_per_sec: f64,
    /// Median per-query latency, microseconds (bucketed upper bound).
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds (bucketed upper bound).
    pub p99_us: f64,
    /// Context-cache hit rate over the run.
    pub cache_hit_rate: f64,
}

/// Serves `requests` queries (drawn from `distinct` random query sets of
/// `count` points, so repeats hit the context cache) through an engine
/// with `threads` workers, and reports the aggregate rates.
///
/// `batch == 0` submits every request individually
/// ([`ssq_engine::Engine::submit`], one queue hop per query); `batch > 0`
/// chunks the stream into [`ssq_engine::Engine::submit_batch`] calls of
/// that size, amortizing the queue hop, snapshot pin, and cache probe
/// across each chunk. Chunks are pool jobs, so they still spread over the
/// workers.
#[allow(clippy::too_many_arguments)]
pub fn run_throughput(
    points: &[Point],
    threads: usize,
    requests: usize,
    distinct: usize,
    count: usize,
    batch: usize,
    seed: u64,
) -> ThroughputRow {
    use ssq_engine::{Engine, EngineConfig, QueryRequest};

    let universe = ssq_geom::Rect::bounding(points.iter().copied());
    let query_sets: Vec<Vec<Point>> = (0..distinct)
        .map(|i| {
            random_query_set(&QueryConfig {
                count,
                mbr_area_fraction: 0.001,
                universe,
                seed: seed.wrapping_add(i as u64 * 131),
            })
        })
        .collect();
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBEEF);
    let mut stream: Vec<QueryRequest> = (0..requests)
        .map(|_| QueryRequest::new(query_sets[rng.range_usize(distinct)].clone()))
        .collect();

    let config = EngineConfig::default().with_workers(threads);
    let engine = Engine::new(points, config).expect("distinct points");
    let t0 = Instant::now();
    if batch == 0 {
        let handles: Vec<_> = stream.into_iter().map(|r| engine.submit(r)).collect();
        for h in handles {
            h.wait();
        }
    } else {
        let mut tickets = Vec::new();
        while !stream.is_empty() {
            let rest = stream.split_off(batch.min(stream.len()));
            tickets.push(engine.submit_batch(stream));
            stream = rest;
        }
        for t in tickets {
            t.wait();
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let m = engine.metrics();
    let row = ThroughputRow {
        threads,
        requests,
        reqs_per_sec: requests as f64 / elapsed,
        p50_us: m.latency.percentile(0.50).as_nanos() as f64 / 1e3,
        p99_us: m.latency.percentile(0.99).as_nanos() as f64 / 1e3,
        cache_hit_rate: m.cache_hit_rate(),
    };
    engine.shutdown();
    row
}

/// [`run_throughput`] over a ladder of pool sizes — the single- vs
/// multi-thread scaling record. `batch` is forwarded to every rung.
pub fn throughput_scaling(
    points: &[Point],
    threads: &[usize],
    requests: usize,
    distinct: usize,
    batch: usize,
    seed: u64,
) -> Vec<ThroughputRow> {
    threads
        .iter()
        .map(|&t| run_throughput(points, t, requests, distinct, 5, batch, seed))
        .collect()
}

/// One row of the sharded scaling ladder: the same stream served by a
/// [`ssq_shard::ShardedEngine`] with a given shard count.
#[derive(Clone, Copy, Debug)]
pub struct ShardedThroughputRow {
    /// Target shard count.
    pub shards: usize,
    /// Requests served.
    pub requests: usize,
    /// Wall-clock service rate.
    pub reqs_per_sec: f64,
    /// Median end-to-end latency, microseconds (bucketed upper bound).
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds (bucketed upper bound).
    pub p99_us: f64,
    /// Mean shards executed per query.
    pub mean_fanout: f64,
    /// Fraction of shard visits skipped by the dominance bound.
    pub prune_rate: f64,
    /// Total shard visits skipped over the run.
    pub shards_pruned: u64,
}

/// `distinct` small-MBR query sets placed uniformly in the data universe.
pub fn uniform_query_sets(
    points: &[Point],
    distinct: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Point>> {
    let universe = ssq_geom::Rect::bounding(points.iter().copied());
    (0..distinct)
        .map(|i| {
            random_query_set(&QueryConfig {
                count,
                mbr_area_fraction: 0.001,
                universe,
                seed: seed.wrapping_add(i as u64 * 131),
            })
        })
        .collect()
}

/// `distinct` query sets crowded into the low corner of the universe
/// (a box covering ~1% of each axis) — the workload where the shard
/// router's dominance bound prunes most aggressively, since the corner
/// shard's skyline dominates every far shard's best-possible vectors.
pub fn corner_query_sets(
    points: &[Point],
    distinct: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Point>> {
    let universe = ssq_geom::Rect::bounding(points.iter().copied());
    let corner = ssq_geom::Rect::from_corners(
        universe.min,
        Point::new(
            universe.min.x + universe.width() * 0.01,
            universe.min.y + universe.height() * 0.01,
        ),
    );
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC04E);
    (0..distinct)
        .map(|_| {
            (0..count)
                .map(|_| {
                    Point::new(
                        rng.range_f64(corner.min.x, corner.max.x),
                        rng.range_f64(corner.min.y, corner.max.y),
                    )
                })
                .collect()
        })
        .collect()
}

/// Serves `requests` queries (sampled from `query_sets`) through a
/// sharded engine with `shards` shards, driven by `clients` concurrent
/// client threads, and reports rates plus routing behaviour.
pub fn run_sharded_throughput(
    points: &[Point],
    shards: usize,
    clients: usize,
    query_sets: &[Vec<Point>],
    requests: usize,
    seed: u64,
) -> ShardedThroughputRow {
    use ssq_shard::{PartitionPolicy, ShardConfig, ShardedEngine};

    let config = ShardConfig::default()
        .with_shards(shards)
        .with_policy(PartitionPolicy::Grid);
    let engine = ShardedEngine::new(points, config).expect("valid sharded config");
    let clients = clients.max(1);

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let engine = &engine;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                // Every client replays the same deterministic sample
                // stream and serves the indices congruent to it.
                scope.spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBEEF);
                    for i in 0..requests {
                        let q = &query_sets[rng.range_usize(query_sets.len())];
                        if i % clients == c {
                            engine.query(q).expect("sharded query failed");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let m = engine.metrics();
    let row = ShardedThroughputRow {
        shards,
        requests,
        reqs_per_sec: requests as f64 / elapsed,
        p50_us: m.latency.percentile(0.50).as_nanos() as f64 / 1e3,
        p99_us: m.latency.percentile(0.99).as_nanos() as f64 / 1e3,
        mean_fanout: m.mean_fanout(),
        prune_rate: m.prune_rate(),
        shards_pruned: m.shards_pruned,
    };
    engine.shutdown();
    row
}

/// [`run_sharded_throughput`] over a ladder of shard counts — the
/// sharded counterpart of [`throughput_scaling`].
pub fn sharded_scaling(
    points: &[Point],
    shard_counts: &[usize],
    clients: usize,
    requests: usize,
    distinct: usize,
    seed: u64,
) -> Vec<ShardedThroughputRow> {
    let query_sets = uniform_query_sets(points, distinct, 5, seed);
    shard_counts
        .iter()
        .map(|&s| run_sharded_throughput(points, s, clients, &query_sets, requests, seed))
        .collect()
}

/// One row of the swap-under-load experiment: the same mid-stream
/// dataset replacement served either as a **live** snapshot-catalog swap
/// ([`ssq_engine::Engine::reindex`]) or as a **cold restart**
/// (drain every in-flight query, drop the engine, rebuild from scratch,
/// then resume). Latencies are *client-observed* — measured around
/// `submit` + `wait` at the call site — because the engine's own
/// histogram excludes queue wait and any restart stall, which is exactly
/// the cost this experiment exists to show.
#[derive(Clone, Copy, Debug)]
pub struct SwapRow {
    /// `true` for the cold-restart arm, `false` for the live swap.
    pub cold_restart: bool,
    /// Requests served across the run (the swap lands halfway).
    pub requests: usize,
    /// Wall-clock service rate.
    pub reqs_per_sec: f64,
    /// Median client-observed latency, microseconds (bucketed upper
    /// bound).
    pub p50_us: f64,
    /// 99th-percentile client-observed latency, microseconds.
    pub p99_us: f64,
    /// The single worst client-observed latency, milliseconds — the
    /// stall a user at the wrong moment actually ate.
    pub max_stall_ms: f64,
    /// How long the dataset replacement itself took, milliseconds.
    pub swap_ms: f64,
}

/// Serves `requests` queries from `clients` concurrent client threads
/// and replaces the dataset with `new_points` halfway through — live
/// catalog swap when `cold_restart` is false, drain-and-rebuild when
/// true. In both arms every response's skyline ids are checked against
/// the dataset size of the generation it reports.
#[allow(clippy::too_many_arguments)]
pub fn run_swap_under_load(
    old_points: &[Point],
    new_points: &[Point],
    threads: usize,
    clients: usize,
    requests: usize,
    distinct: usize,
    seed: u64,
    cold_restart: bool,
) -> SwapRow {
    use ssq_engine::{Engine, EngineConfig, LatencyHistogram, QueryRequest};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::RwLock;

    let universe = ssq_geom::Rect::bounding(old_points.iter().chain(new_points).copied());
    let query_sets: Vec<Vec<Point>> = (0..distinct)
        .map(|i| {
            random_query_set(&QueryConfig {
                count: 5,
                mbr_area_fraction: 0.001,
                universe,
                seed: seed.wrapping_add(i as u64 * 131),
            })
        })
        .collect();
    let config = EngineConfig::default().with_workers(threads.max(1));
    // Both arms go through the same slot so the client code path is
    // identical; only the replacement strategy differs. The live arm
    // never takes the write lock — reindex works through `&Engine`.
    let slot = RwLock::new(Engine::new(old_points, config.clone()).expect("distinct points"));
    let observed = LatencyHistogram::new();
    let started = AtomicUsize::new(0);
    let max_nanos = AtomicU64::new(0);
    let swap_at = requests / 2;
    let clients = clients.max(1);

    let t0 = Instant::now();
    let swap_ms = std::thread::scope(|scope| {
        let slot = &slot;
        let observed = &observed;
        let started = &started;
        let max_nanos = &max_nanos;
        let query_sets = &query_sets;
        for c in 0..clients {
            scope.spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x53_57 ^ c as u64);
                loop {
                    if started.fetch_add(1, Ordering::Relaxed) >= requests {
                        break;
                    }
                    let q = query_sets[rng.range_usize(query_sets.len())].clone();
                    let t = Instant::now();
                    let r = {
                        let engine = slot.read().unwrap();
                        engine.submit(QueryRequest::new(q)).wait()
                    };
                    let dt = t.elapsed();
                    observed.record(dt);
                    let nanos = u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
                    max_nanos.fetch_max(nanos, Ordering::Relaxed);
                    let limit = if r.generation == 0 {
                        old_points.len()
                    } else {
                        new_points.len()
                    };
                    assert!(
                        r.skyline.iter().all(|&i| (i as usize) < limit),
                        "response ids exceed generation {} dataset",
                        r.generation
                    );
                }
            });
        }
        while started.load(Ordering::Relaxed) < swap_at {
            std::thread::yield_now();
        }
        let ts = Instant::now();
        if cold_restart {
            // Write lock = drain: acquired only once every in-flight
            // query (read lock) finishes; clients then block until the
            // rebuilt engine is published. The replacement starts at
            // generation 1 so responses keep reporting which dataset
            // they were answered against.
            let replacement = ssq_engine::Snapshot::build(1, new_points).expect("distinct points");
            let mut engine = slot.write().unwrap();
            let old = std::mem::replace(
                &mut *engine,
                Engine::with_snapshot(std::sync::Arc::new(replacement), config.clone())
                    .expect("valid config"),
            );
            old.shutdown();
        } else {
            let engine = slot.read().unwrap();
            engine.reindex(new_points).expect("reindex failed");
        }
        ts.elapsed().as_secs_f64() * 1e3
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = observed.snapshot();
    SwapRow {
        cold_restart,
        requests,
        reqs_per_sec: requests as f64 / elapsed,
        p50_us: snap.percentile(0.50).as_nanos() as f64 / 1e3,
        p99_us: snap.percentile(0.99).as_nanos() as f64 / 1e3,
        max_stall_ms: max_nanos.load(Ordering::Relaxed) as f64 / 1e6,
        swap_ms,
    }
}

/// Both arms of the swap experiment on the same datasets and stream:
/// `(live, cold)`.
#[allow(clippy::too_many_arguments)]
pub fn swap_comparison(
    old_points: &[Point],
    new_points: &[Point],
    threads: usize,
    clients: usize,
    requests: usize,
    distinct: usize,
    seed: u64,
) -> (SwapRow, SwapRow) {
    let live = run_swap_under_load(
        old_points, new_points, threads, clients, requests, distinct, seed, false,
    );
    let cold = run_swap_under_load(
        old_points, new_points, threads, clients, requests, distinct, seed, true,
    );
    (live, cold)
}

/// Prints the Table 5 substitute: the synthetic dataset's category mix.
pub fn table5(n: usize, seed: u64) -> Vec<(String, usize, f64)> {
    let data = synthetic_usgs(&UsgsConfig {
        n,
        seed,
        ..UsgsConfig::default()
    });
    CATEGORY_MIX
        .iter()
        .map(|&(cat, target)| {
            let count = data.iter().filter(|u| u.category == cat).count();
            (format!("{cat:?}"), count, target)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_runner_produces_consistent_costs() {
        let fix = Fixture::usgs(800, 1);
        for algo in [Algo::Bbs, Algo::B2s2, Algo::Vs2] {
            let c = run_batch(&fix, algo, 4, 0.001, 3, 99);
            assert!(c.time_ms >= 0.0);
            assert!(c.skyline_size >= 1.0, "{algo}: empty skylines");
        }
    }

    #[test]
    fn algorithms_agree_inside_the_harness() {
        let fix = Fixture::usgs(600, 2);
        let q = random_query_set(&QueryConfig::paper_default(5, 7));
        let ctx = QueryContext::new(&q);
        let a = bbs(&fix.rtree, &ctx);
        let b = b2s2(&fix.rtree, &ctx);
        let c = vs2_with(&fix.voronoi, &ctx, VsExpansion::Safe, None);
        assert_eq!(a.skyline, b.skyline);
        assert_eq!(a.skyline, c.skyline);
    }

    #[test]
    fn continuous_runner_smoke() {
        let fix = Fixture::usgs(500, 3);
        let row = run_continuous(&fix, 4, 40, 0.01, 11);
        let total = row.unchanged_frac + row.incremental_frac + row.recomputed_frac;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_runner_smoke() {
        let fix = Fixture::usgs(300, 4);
        let row = run_mixed(&fix, 2, 21);
        assert!(row.mixed_size >= row.static_size.max(row.spatial_size));
    }

    #[test]
    fn throughput_runner_smoke() {
        let fix = Fixture::usgs(600, 6);
        let row = run_throughput(&fix.points, 2, 64, 8, 5, 0, 31);
        assert_eq!(row.threads, 2);
        assert_eq!(row.requests, 64);
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p99_us >= row.p50_us);
        // 64 requests over 8 distinct query sets must produce hits.
        assert!(row.cache_hit_rate > 0.0);
    }

    #[test]
    fn batched_throughput_runner_smoke() {
        let fix = Fixture::usgs(600, 6);
        let row = run_throughput(&fix.points, 2, 64, 8, 5, 16, 31);
        assert_eq!(row.requests, 64);
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p99_us >= row.p50_us);
        // The batch memo answers repeats inside a chunk as cache hits,
        // so the hit rate stays observable.
        assert!(row.cache_hit_rate > 0.0);
    }

    #[test]
    fn multi_thread_throughput_beats_single_thread() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            // Scaling cannot be observed without real parallelism; the
            // smoke test above still covers correctness.
            return;
        }
        let fix = Fixture::usgs(2500, 8);
        // Warm-up build pass keeps page-cache noise out of the record.
        run_throughput(&fix.points, 1, 50, 4, 5, 0, 17);
        let single = run_throughput(&fix.points, 1, 1200, 16, 5, 0, 17);
        let multi = run_throughput(&fix.points, 4, 1200, 16, 5, 0, 17);
        assert!(
            multi.reqs_per_sec > single.reqs_per_sec,
            "4 workers ({:.0} req/s) not faster than 1 ({:.0} req/s)",
            multi.reqs_per_sec,
            single.reqs_per_sec
        );
    }

    #[test]
    fn sharded_runner_smoke() {
        let fix = Fixture::usgs(800, 9);
        let sets = uniform_query_sets(&fix.points, 8, 5, 23);
        let row = run_sharded_throughput(&fix.points, 4, 2, &sets, 64, 23);
        assert_eq!(row.shards, 4);
        assert_eq!(row.requests, 64);
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p99_us >= row.p50_us);
        assert!(row.mean_fanout >= 1.0 && row.mean_fanout <= 4.0);
    }

    #[test]
    fn corner_workload_makes_pruning_observable() {
        let fix = Fixture::usgs(1200, 10);
        let sets = corner_query_sets(&fix.points, 8, 4, 29);
        let row = run_sharded_throughput(&fix.points, 8, 2, &sets, 48, 29);
        assert!(
            row.shards_pruned > 0,
            "corner queries pruned nothing (fan-out {:.2})",
            row.mean_fanout
        );
        assert!(row.prune_rate > 0.0);
    }

    #[test]
    fn sharded_ladder_covers_requested_counts() {
        let fix = Fixture::usgs(600, 11);
        let rows = sharded_scaling(&fix.points, &[1, 2, 4], 2, 32, 6, 37);
        let shards: Vec<usize> = rows.iter().map(|r| r.shards).collect();
        assert_eq!(shards, vec![1, 2, 4]);
        for r in &rows {
            assert!(r.reqs_per_sec > 0.0);
        }
    }

    #[test]
    fn swap_under_load_smoke() {
        let old = Fixture::usgs(500, 12).points;
        let new = Fixture::usgs(700, 13).points;
        let live = run_swap_under_load(&old, &new, 2, 2, 80, 8, 41, false);
        assert!(!live.cold_restart);
        assert_eq!(live.requests, 80);
        assert!(live.reqs_per_sec > 0.0);
        assert!(live.p99_us >= live.p50_us);
        assert!(live.swap_ms > 0.0);
        let cold = run_swap_under_load(&old, &new, 2, 2, 80, 8, 41, true);
        assert!(cold.cold_restart);
        assert!(cold.max_stall_ms > 0.0);
    }

    #[test]
    fn table5_counts_sum_to_n() {
        let rows = table5(1000, 5);
        let total: usize = rows.iter().map(|r| r.1).sum();
        assert_eq!(total, 1000);
    }
}
