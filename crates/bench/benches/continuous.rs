//! Criterion bench for the continuous experiment (§5/§7): the per-update
//! cost of VCS² against re-running VS² from scratch on the same stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssq_bench::Fixture;
use ssq_core::{vs2_with, ContinuousSkyline, QueryContext, VsExpansion};
use ssq_workload::motion::{MotionConfig, MovingQuerySet};

fn continuous(c: &mut Criterion) {
    let fix = Fixture::usgs(10_000, 0xC0171);
    let mut group = c.benchmark_group("continuous");
    group.sample_size(10);
    for count in [4usize, 8] {
        let cfg = MotionConfig {
            count,
            step: 0.005,
            start_box: 0.05,
            seed: 9 + count as u64,
            ..MotionConfig::default()
        };

        // VCS²: maintain the skyline across a burst of updates.
        group.bench_with_input(BenchmarkId::new("VCS2", count), &cfg, |b, cfg| {
            b.iter(|| {
                let mut team = MovingQuerySet::new(*cfg);
                let mut cont = ContinuousSkyline::new(&fix.voronoi, team.positions());
                for _ in 0..50 {
                    let up = team.next_update();
                    cont.update(up.index, up.location);
                }
                cont.skyline().len()
            })
        });

        // Strawman: fresh VS² after every update.
        group.bench_with_input(BenchmarkId::new("VS2-rerun", count), &cfg, |b, cfg| {
            b.iter(|| {
                let mut team = MovingQuerySet::new(*cfg);
                let mut total = 0usize;
                for _ in 0..50 {
                    let up = team.next_update();
                    let _ = up;
                    let ctx = QueryContext::new(team.positions());
                    total += vs2_with(&fix.voronoi, &ctx, VsExpansion::Safe, None)
                        .skyline
                        .len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, continuous);
criterion_main!(benches);
