//! Criterion bench for the §7 dataset-cardinality experiment: query cost
//! vs |P| at fixed |Q| and MBR(Q).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssq_bench::{run_once, Algo, Fixture};
use ssq_core::QueryContext;
use ssq_workload::queries::{random_query_set, QueryConfig};

fn cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("cardinality");
    group.sample_size(15);
    for n in [2_000usize, 8_000, 32_000] {
        let fix = Fixture::usgs(n, n as u64);
        let q = random_query_set(&QueryConfig::paper_default(6, 42));
        let ctx = QueryContext::new(&q);
        for algo in [Algo::Bbs, Algo::B2s2, Algo::Vs2] {
            group.bench_with_input(BenchmarkId::new(algo.to_string(), n), &ctx, |b, ctx| {
                b.iter(|| run_once(&fix, algo, ctx))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, cardinality);
criterion_main!(benches);
