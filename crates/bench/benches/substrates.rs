//! Substrate micro-benches: construction costs of the two physical
//! designs (§7's preprocessing), the convex hull, and the robust
//! predicates. Not a paper figure — these quantify the substrates the
//! paper takes as given.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssq_delaunay::{DelaunayGraph, Triangulation};
use ssq_geom::predicates::{incircle, orient2d};
use ssq_geom::{convex_hull, graham_scan, Point};
use ssq_rtree::{RTree, RTreeConfig};
use ssq_workload::usgs::{synthetic_usgs_points, UsgsConfig};

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_construction");
    group.sample_size(10);
    for n in [2_000usize, 10_000] {
        let pts = synthetic_usgs_points(&UsgsConfig {
            n,
            seed: n as u64,
            ..UsgsConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("delaunay", n), &pts, |b, pts| {
            b.iter(|| Triangulation::new(pts).unwrap().triangles().count())
        });
        group.bench_with_input(BenchmarkId::new("delaunay_graph", n), &pts, |b, pts| {
            b.iter(|| DelaunayGraph::new(pts).unwrap().edge_count())
        });
        group.bench_with_input(BenchmarkId::new("rtree_bulk_load", n), &pts, |b, pts| {
            b.iter(|| RTree::<u32>::bulk_load_points(pts, RTreeConfig::default()).height())
        });
    }
    group.finish();
}

fn hulls(c: &mut Criterion) {
    let pts = synthetic_usgs_points(&UsgsConfig {
        n: 10_000,
        seed: 3,
        ..UsgsConfig::default()
    });
    let mut group = c.benchmark_group("substrate_hull");
    group.bench_function("monotone_chain_10k", |b| b.iter(|| convex_hull(&pts).len()));
    group.bench_function("graham_scan_10k", |b| b.iter(|| graham_scan(&pts).len()));
    group.finish();
}

fn predicates(c: &mut Criterion) {
    let a = Point::new(0.1, 0.2);
    let b_ = Point::new(0.9, 0.7);
    let d = Point::new(0.3, 0.8);
    let easy = Point::new(0.5, 0.9);
    // Nearly collinear probe: exercises the exact fallback.
    let hard = Point::new(0.5, 0.45 + 1e-17);
    let mut group = c.benchmark_group("substrate_predicates");
    group.bench_function("orient2d_filter_path", |bch| {
        bch.iter(|| orient2d(a, b_, std::hint::black_box(easy)))
    });
    group.bench_function("orient2d_exact_path", |bch| {
        bch.iter(|| orient2d(a, b_, std::hint::black_box(hard)))
    });
    group.bench_function("incircle_filter_path", |bch| {
        bch.iter(|| incircle(a, b_, d, std::hint::black_box(easy)))
    });
    group.finish();
}

criterion_group!(benches, construction, hulls, predicates);
criterion_main!(benches);
