//! Criterion benches for Figure 12: query cost vs |Q| (a-c) and vs the
//! area of MBR(Q) (d-f), for BBS, B²S² and VS².
//!
//! Criterion measures the wall-clock side (Fig. 12a/d); the dominance
//! check and I/O counter series are printed by the `reproduce` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssq_bench::{run_once, Algo, Fixture};
use ssq_core::QueryContext;
use ssq_workload::queries::{random_query_set, QueryConfig};

const N: usize = 10_000;

fn query_count_sweep(c: &mut Criterion) {
    let fix = Fixture::usgs(N, 0xF12);
    let mut group = c.benchmark_group("fig12_query_count");
    group.sample_size(20);
    for count in [2usize, 4, 6, 8, 10] {
        let q = random_query_set(&QueryConfig::paper_default(count, 42 + count as u64));
        let ctx = QueryContext::new(&q);
        for algo in [Algo::Bbs, Algo::B2s2, Algo::Vs2] {
            group.bench_with_input(BenchmarkId::new(algo.to_string(), count), &ctx, |b, ctx| {
                b.iter(|| run_once(&fix, algo, ctx))
            });
        }
    }
    group.finish();
}

fn mbr_area_sweep(c: &mut Criterion) {
    let fix = Fixture::usgs(N, 0xF12);
    let mut group = c.benchmark_group("fig12_mbr_area");
    group.sample_size(20);
    for (frac, label) in [
        (0.0001, "0.01pct"),
        (0.0005, "0.05pct"),
        (0.001, "0.10pct"),
        (0.003, "0.30pct"),
        (0.007, "0.70pct"),
    ] {
        let q = random_query_set(&QueryConfig {
            count: 6,
            mbr_area_fraction: frac,
            universe: ssq_workload::usgs::universe(),
            seed: 137,
        });
        let ctx = QueryContext::new(&q);
        for algo in [Algo::Bbs, Algo::B2s2, Algo::Vs2] {
            group.bench_with_input(BenchmarkId::new(algo.to_string(), label), &ctx, |b, ctx| {
                b.iter(|| run_once(&fix, algo, ctx))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, query_count_sweep, mbr_area_sweep);
criterion_main!(benches);
