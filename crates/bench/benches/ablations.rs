//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * B²S² vs BBS — the value of the whole §3 geometric foundation
//!   (anchors + Theorem-1 passes + rectangle B) on the R-tree side;
//! * VS² `Safe` vs `Paper` expansion — the cost of the provably-exact
//!   expansion policy relative to the paper's gated one;
//! * `naive_sorted` vs `naive_full` — what the monotone sort alone buys
//!   without any index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssq_bench::Fixture;
use ssq_core::{b2s2, bbs, naive_full, naive_sorted, vs2_with, QueryContext, VsExpansion};
use ssq_workload::queries::{random_query_set, QueryConfig};

fn foundation_ablation(c: &mut Criterion) {
    let fix = Fixture::usgs(10_000, 0xAB1A);
    let q = random_query_set(&QueryConfig::paper_default(6, 77));
    let ctx = QueryContext::new(&q);
    let mut group = c.benchmark_group("ablation_foundation");
    group.sample_size(20);
    group.bench_function("BBS_no_geometry", |b| b.iter(|| bbs(&fix.rtree, &ctx)));
    group.bench_function("B2S2_full_geometry", |b| b.iter(|| b2s2(&fix.rtree, &ctx)));
    group.finish();
}

fn expansion_ablation(c: &mut Criterion) {
    let fix = Fixture::usgs(10_000, 0xAB1B);
    let q = random_query_set(&QueryConfig::paper_default(6, 78));
    let ctx = QueryContext::new(&q);
    let mut group = c.benchmark_group("ablation_vs2_expansion");
    group.sample_size(20);
    for (label, mode) in [("paper", VsExpansion::Paper), ("safe", VsExpansion::Safe)] {
        group.bench_with_input(BenchmarkId::new("VS2", label), &mode, |b, &mode| {
            b.iter(|| vs2_with(&fix.voronoi, &ctx, mode, None))
        });
    }
    group.finish();
}

fn naive_ablation(c: &mut Criterion) {
    let fix = Fixture::usgs(2_000, 0xAB1C);
    let q = random_query_set(&QueryConfig::paper_default(5, 79));
    let ctx = QueryContext::new(&q);
    let mut group = c.benchmark_group("ablation_naive");
    group.sample_size(10);
    group.bench_function("naive_full_quadratic", |b| {
        b.iter(|| naive_full(&fix.points, &ctx))
    });
    group.bench_function("naive_sorted", |b| {
        b.iter(|| naive_sorted(&fix.points, &ctx))
    });
    group.finish();
}

fn start_index_ablation(c: &mut Criterion) {
    // The §4.2 Φ(|P|) analysis: O(log n) kd-tree start vs the index-free
    // O(√n) greedy Delaunay walk.
    let pts = ssq_workload::usgs::synthetic_usgs_points(&ssq_workload::usgs::UsgsConfig {
        n: 10_000,
        seed: 0xAB1D,
        ..Default::default()
    });
    let with_kd = ssq_core::VoronoiIndex::new(&pts).unwrap();
    let greedy = ssq_core::VoronoiIndex::without_start_index(&pts).unwrap();
    let q = random_query_set(&QueryConfig::paper_default(6, 80));
    let ctx = QueryContext::new(&q);
    let mut group = c.benchmark_group("ablation_vs2_start_index");
    group.sample_size(20);
    group.bench_function("kdtree_start", |b| {
        b.iter(|| vs2_with(&with_kd, &ctx, VsExpansion::Safe, None))
    });
    group.bench_function("greedy_walk_start", |b| {
        b.iter(|| vs2_with(&greedy, &ctx, VsExpansion::Safe, None))
    });
    group.finish();
}

criterion_group!(
    benches,
    foundation_ablation,
    expansion_ablation,
    naive_ablation,
    start_index_ablation
);
criterion_main!(benches);
