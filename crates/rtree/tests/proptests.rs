//! Property-based tests for the R*-tree.

use proptest::prelude::*;
use ssq_geom::{Point, Rect};
use ssq_rtree::{RTree, RTreeConfig};

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn small_tree_configs() -> impl Strategy<Value = RTreeConfig> {
    (4usize..12).prop_map(RTreeConfig::with_max_entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_insert_preserves_invariants_and_queries(
        points in prop::collection::vec(pt(), 1..150),
        qa in pt(),
        qb in pt(),
        config in small_tree_configs(),
    ) {
        let mut tree = RTree::with_config(config);
        for (i, &p) in points.iter().enumerate() {
            tree.insert(Rect::from_point(p), i as u32);
        }
        tree.check_invariants();

        let query = Rect::from_corners(qa, qb);
        let mut got = tree.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| query.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_incremental_queries(
        points in prop::collection::vec(pt(), 1..200),
        qa in pt(),
        qb in pt(),
    ) {
        let config = RTreeConfig::with_max_entries(6);
        let bulk = RTree::<u32>::bulk_load_points(
            &points,
            config,
        );
        bulk.check_invariants();
        let query = Rect::from_corners(qa, qb);
        let mut got = bulk.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| query.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_is_exact(points in prop::collection::vec(pt(), 1..120), q in pt()) {
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(5));
        let got = tree.nearest(q).unwrap();
        let best = points
            .iter()
            .map(|p| p.distance_sq(q))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(points[got as usize].distance_sq(q), best);
    }

    #[test]
    fn tree_mbr_covers_everything(points in prop::collection::vec(pt(), 1..100)) {
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(8));
        let mbr = tree.mbr();
        for &p in &points {
            prop_assert!(mbr.contains(p));
        }
    }

    #[test]
    fn height_is_logarithmic(n in 1usize..400) {
        let points: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 20) as f64, (i / 20) as f64 + (i as f64) * 1e-6))
            .collect();
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(8));
        tree.check_invariants();
        // ceil(log_2-of-fanout bound): generous upper bound for min fill 3.
        let bound = ((n as f64).ln() / 2.0f64.ln()).ceil() as usize + 2;
        prop_assert!(tree.height() <= bound);
    }
}
