//! Randomized property tests for the R*-tree (deterministic, hermetic:
//! cases come from the in-repo `ssq_rng` generator, so failures replay
//! exactly by case number).

use ssq_geom::{Point, Rect};
use ssq_rng::Xoshiro256;
use ssq_rtree::{RTree, RTreeConfig};

fn pt(rng: &mut Xoshiro256) -> Point {
    Point::new(rng.range_f64(-100.0, 100.0), rng.range_f64(-100.0, 100.0))
}

fn pts(rng: &mut Xoshiro256, lo: usize, hi: usize) -> Vec<Point> {
    let n = lo + rng.range_usize(hi - lo);
    (0..n).map(|_| pt(rng)).collect()
}

#[test]
fn incremental_insert_preserves_invariants_and_queries() {
    let mut rng = Xoshiro256::seed_from_u64(0x7501);
    for case in 0..48 {
        let points = pts(&mut rng, 1, 150);
        let (qa, qb) = (pt(&mut rng), pt(&mut rng));
        let config = RTreeConfig::with_max_entries(4 + rng.range_usize(8));
        let mut tree = RTree::with_config(config);
        for (i, &p) in points.iter().enumerate() {
            tree.insert(Rect::from_point(p), i as u32);
        }
        tree.check_invariants();

        let query = Rect::from_corners(qa, qb);
        let mut got = tree.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| query.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn bulk_load_equals_incremental_queries() {
    let mut rng = Xoshiro256::seed_from_u64(0x7502);
    for case in 0..48 {
        let points = pts(&mut rng, 1, 200);
        let (qa, qb) = (pt(&mut rng), pt(&mut rng));
        let bulk = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(6));
        bulk.check_invariants();
        let query = Rect::from_corners(qa, qb);
        let mut got = bulk.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| query.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn nearest_is_exact() {
    let mut rng = Xoshiro256::seed_from_u64(0x7503);
    for case in 0..48 {
        let points = pts(&mut rng, 1, 120);
        let q = pt(&mut rng);
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(5));
        let got = tree.nearest(q).unwrap();
        let best = points
            .iter()
            .map(|p| p.distance_sq(q))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(points[got as usize].distance_sq(q), best, "case {case}");
    }
}

#[test]
fn tree_mbr_covers_everything() {
    let mut rng = Xoshiro256::seed_from_u64(0x7504);
    for case in 0..48 {
        let points = pts(&mut rng, 1, 100);
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(8));
        let mbr = tree.mbr();
        for &p in &points {
            assert!(mbr.contains(p), "case {case}");
        }
    }
}

#[test]
fn height_is_logarithmic() {
    let mut rng = Xoshiro256::seed_from_u64(0x7505);
    for _ in 0..48 {
        let n = 1 + rng.range_usize(399);
        let points: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 20) as f64, (i / 20) as f64 + (i as f64) * 1e-6))
            .collect();
        let tree = RTree::<u32>::bulk_load_points(&points, RTreeConfig::with_max_entries(8));
        tree.check_invariants();
        // ceil(log_2-of-fanout bound): generous upper bound for min fill 3.
        let bound = ((n as f64).ln() / 2.0f64.ln()).ceil() as usize + 2;
        assert!(tree.height() <= bound, "n = {n}");
    }
}
