//! The R*-tree implementation.
//!
//! Nodes live in an arena (`Vec<Node>`); entries of an internal node are
//! `(mbr, child id)` pairs, entries of a leaf are `(mbr, item)` pairs.
//! Insertion follows Beckmann et al.'s R* heuristics (choose-subtree by
//! minimum overlap enlargement at the leaf level, split axis by minimum
//! margin sum, split distribution by minimum overlap); the forced-reinsert
//! optimization is omitted — it only improves MBR quality marginally for
//! our workloads, and the STR bulk loader (used for the big experiment
//! datasets) produces near-optimal packing anyway.

use ssq_geom::{Point, Rect};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default node capacity, matching the paper's setup ("a maximum of 50
/// entries in each node", §7).
pub const DEFAULT_MAX_ENTRIES: usize = 50;

/// Identifier of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

/// Tree construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries per node (fan-out). Must be ≥ 4.
    pub max_entries: usize,
    /// Minimum entries per node after a split. Must satisfy
    /// `2 ≤ min_entries ≤ max_entries / 2`.
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: DEFAULT_MAX_ENTRIES,
            // The R* paper recommends m = 40% of M.
            min_entries: DEFAULT_MAX_ENTRIES * 2 / 5,
        }
    }
}

impl RTreeConfig {
    /// A configuration with the given fan-out and the R*-recommended 40%
    /// minimum fill.
    pub fn with_max_entries(max_entries: usize) -> RTreeConfig {
        assert!(max_entries >= 4, "fan-out must be at least 4");
        RTreeConfig {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
        }
    }
}

/// One entry of a node, as exposed by [`RTree::entries`].
#[derive(Clone, Copy, Debug)]
pub enum Entry<T> {
    /// An internal entry: the MBR of a child node.
    Node {
        /// MBR of the subtree.
        mbr: Rect,
        /// The child node.
        child: NodeId,
    },
    /// A leaf entry: one indexed item.
    Item {
        /// MBR of the item.
        mbr: Rect,
        /// The item payload.
        item: T,
    },
}

impl<T> Entry<T> {
    /// The entry's MBR.
    pub fn mbr(&self) -> Rect {
        match *self {
            Entry::Node { mbr, .. } | Entry::Item { mbr, .. } => mbr,
        }
    }
}

#[derive(Clone, Debug)]
struct Node<T> {
    rects: Vec<Rect>,
    /// For internal nodes: child node ids (parallel to `rects`).
    children: Vec<u32>,
    /// For leaves: item payloads (parallel to `rects`).
    items: Vec<T>,
    is_leaf: bool,
    /// Height of the subtree rooted here (leaf = 0). Kept so reinsertion of
    /// split roots lands at the right level.
    level: u32,
}

impl<T> Node<T> {
    fn new(is_leaf: bool, level: u32) -> Node<T> {
        Node {
            rects: Vec::new(),
            children: Vec::new(),
            items: Vec::new(),
            is_leaf,
            level,
        }
    }

    fn len(&self) -> usize {
        self.rects.len()
    }

    fn mbr(&self) -> Rect {
        self.rects.iter().fold(Rect::EMPTY, |acc, r| acc.union(r))
    }
}

/// An R*-tree over items of type `T`.
///
/// `T` is any cheap-to-copy payload; the SSQ crates use the index of the
/// data point. Node accesses are counted on every [`RTree::entries`] call
/// (and internally by the built-in queries), mirroring the paper's I/O
/// metric; reset the counter with [`RTree::reset_node_accesses`] before
/// each measured query.
#[derive(Debug)]
pub struct RTree<T: Copy> {
    nodes: Vec<Node<T>>,
    root: Option<u32>,
    len: usize,
    config: RTreeConfig,
    /// Arena slots vacated by deletions, reused by later node pushes so
    /// a long-lived tree mutated across many generations stays compact.
    free: Vec<u32>,
    // Relaxed atomic (not `Cell`) so a shared tree stays `Sync`; counts
    // are best-effort when several threads query concurrently.
    accesses: AtomicU64,
}

impl<T: Copy> Clone for RTree<T> {
    /// Deep-copies the node arena — the cheap node-copy path delta
    /// builds start from. The access counter starts at zero: it is
    /// per-instance measurement state, not index state.
    fn clone(&self) -> RTree<T> {
        RTree {
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            config: self.config,
            free: self.free.clone(),
            accesses: AtomicU64::new(0),
        }
    }
}

impl<T: Copy> RTree<T> {
    /// Creates an empty tree with the default configuration.
    pub fn new() -> RTree<T> {
        Self::with_config(RTreeConfig::default())
    }

    /// Creates an empty tree with the given configuration.
    pub fn with_config(config: RTreeConfig) -> RTree<T> {
        assert!(config.max_entries >= 4);
        assert!(config.min_entries >= 2 && config.min_entries <= config.max_entries / 2);
        RTree {
            nodes: Vec::new(),
            root: None,
            len: 0,
            config,
            free: Vec::new(),
            accesses: AtomicU64::new(0),
        }
    }

    /// Bulk-loads `items` with Sort-Tile-Recursive packing.
    ///
    /// STR produces a fully-packed tree whose leaves tile the data in
    /// `√(n/M)` vertical slices of `√(n/M)` horizontal runs each — the
    /// standard way to build a high-quality static index, which is what the
    /// SSQ experiments need.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> RTree<T> {
        Self::bulk_load_with_config(items, RTreeConfig::default())
    }

    /// [`RTree::bulk_load`] with an explicit configuration.
    pub fn bulk_load_with_config(mut items: Vec<(Rect, T)>, config: RTreeConfig) -> RTree<T> {
        let mut tree = Self::with_config(config);
        tree.len = items.len();
        if items.is_empty() {
            return tree;
        }
        let cap = config.max_entries;

        // Leaf level: STR packing.
        let n = items.len();
        let leaf_count = n.div_ceil(cap);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = n.div_ceil(slices);
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut leaf_ids: Vec<u32> = Vec::with_capacity(leaf_count);
        for slice in items.chunks_mut(per_slice) {
            slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            for run in slice.chunks(cap) {
                let mut node = Node::new(true, 0);
                for &(r, t) in run {
                    node.rects.push(r);
                    node.items.push(t);
                }
                leaf_ids.push(tree.push_node(node));
            }
        }

        // Pack upper levels the same way until one node remains.
        let mut level = 0u32;
        let mut ids = leaf_ids;
        while ids.len() > 1 {
            level += 1;
            let count = ids.len().div_ceil(cap);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per_slice = ids.len().div_ceil(slices);
            let mut with_mbr: Vec<(Rect, u32)> = ids
                .iter()
                .map(|&id| (tree.nodes[id as usize].mbr(), id))
                .collect();
            with_mbr.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
            let mut next: Vec<u32> = Vec::with_capacity(count);
            for slice in with_mbr.chunks_mut(per_slice) {
                slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                for run in slice.chunks(cap) {
                    let mut node = Node::new(false, level);
                    for &(r, id) in run {
                        node.rects.push(r);
                        node.children.push(id);
                    }
                    next.push(tree.push_node(node));
                }
            }
            ids = next;
        }
        tree.root = Some(ids[0]);
        tree
    }

    /// Bulk-loads a set of points (degenerate rectangles) with their
    /// indices as payloads — the common case for SSQ data sets.
    pub fn bulk_load_points(points: &[Point], config: RTreeConfig) -> RTree<u32> {
        RTree::bulk_load_with_config(
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (Rect::from_point(p), i as u32))
                .collect(),
            config,
        )
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (leaf level = 1, empty tree = 0).
    pub fn height(&self) -> usize {
        match self.root {
            None => 0,
            Some(r) => self.nodes[r as usize].level as usize + 1,
        }
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root node, if any.
    pub fn root(&self) -> Option<NodeId> {
        self.root.map(NodeId)
    }

    /// The MBR of the whole tree.
    pub fn mbr(&self) -> Rect {
        match self.root {
            None => Rect::EMPTY,
            Some(r) => self.nodes[r as usize].mbr(),
        }
    }

    /// Reads the entries of a node, counting one node access.
    ///
    /// This is the primitive the skyline algorithms build their best-first
    /// traversals on.
    pub fn entries(&self, id: NodeId) -> Vec<Entry<T>> {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let node = &self.nodes[id.0 as usize];
        if node.is_leaf {
            node.rects
                .iter()
                .zip(&node.items)
                .map(|(&mbr, &item)| Entry::Item { mbr, item })
                .collect()
        } else {
            node.rects
                .iter()
                .zip(&node.children)
                .map(|(&mbr, &child)| Entry::Node {
                    mbr,
                    child: NodeId(child),
                })
                .collect()
        }
    }

    /// Node accesses since the last reset.
    pub fn node_accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Resets the node-access counter.
    pub fn reset_node_accesses(&self) {
        self.accesses.store(0, Ordering::Relaxed);
    }

    /// Inserts an item with the given MBR (R* heuristics).
    pub fn insert(&mut self, mbr: Rect, item: T) {
        self.len += 1;
        let Some(root) = self.root else {
            let mut node = Node::new(true, 0);
            node.rects.push(mbr);
            node.items.push(item);
            let id = self.push_node(node);
            self.root = Some(id);
            return;
        };
        if let Some((r1, r2)) = self.insert_at(root, mbr, item) {
            // Root split: grow the tree.
            let level = self.nodes[root as usize].level + 1;
            let mut new_root = Node::new(false, level);
            new_root.rects.push(self.nodes[r1 as usize].mbr());
            new_root.children.push(r1);
            new_root.rects.push(self.nodes[r2 as usize].mbr());
            new_root.children.push(r2);
            let id = self.push_node(new_root);
            self.root = Some(id);
        }
    }

    /// Deletes one entry matching `(mbr, item)` exactly, condensing the
    /// tree on the way back up (delete-with-reinsert).
    ///
    /// Nodes that fall below the minimum fill are dissolved and their
    /// surviving items reinserted through the regular R* insertion path,
    /// which keeps MBR quality comparable to a fresh build. Returns
    /// `false` (tree unchanged) when no such entry exists.
    pub fn delete(&mut self, mbr: Rect, item: T) -> bool
    where
        T: PartialEq,
    {
        let Some(root) = self.root else {
            return false;
        };
        let mut orphans: Vec<(Rect, T)> = Vec::new();
        if !self.delete_at(root, &mbr, &item, &mut orphans) {
            return false;
        }
        self.len -= 1;
        // Shrink the root: an internal root with one child hands the root
        // role to that child; an empty root leaves the tree empty.
        while let Some(r) = self.root {
            let node = &self.nodes[r as usize];
            if node.len() == 0 {
                self.free_node(r);
                self.root = None;
                break;
            }
            if node.is_leaf || node.len() > 1 {
                break;
            }
            let child = node.children[0];
            self.free_node(r);
            self.root = Some(child);
        }
        // Reinsert orphaned items from dissolved nodes. They were never
        // subtracted from `len`, so compensate for `insert`'s increment.
        self.len -= orphans.len();
        for (r, t) in orphans {
            self.insert(r, t);
        }
        true
    }

    /// Applies `f` to every stored item payload in place.
    ///
    /// Delta builds use this to relabel point ids after deletions compact
    /// the id space; the geometry (and therefore the tree structure) is
    /// untouched.
    pub fn map_items(&mut self, mut f: impl FnMut(T) -> T) {
        for node in &mut self.nodes {
            if node.is_leaf {
                for item in &mut node.items {
                    *item = f(*item);
                }
            }
        }
    }

    /// All items whose MBR intersects `query`.
    pub fn query_rect(&self, query: &Rect) -> Vec<T> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![NodeId(root)];
        while let Some(id) = stack.pop() {
            for e in self.entries(id) {
                match e {
                    Entry::Node { mbr, child } => {
                        if mbr.intersects(query) {
                            stack.push(child);
                        }
                    }
                    Entry::Item { mbr, item } => {
                        if mbr.intersects(query) {
                            out.push(item);
                        }
                    }
                }
            }
        }
        out
    }

    /// The item nearest to `q` (by MBR `mindist`), via best-first search.
    pub fn nearest(&self, q: Point) -> Option<T> {
        use std::collections::BinaryHeap;

        enum HeapEntry<T> {
            Node(NodeId),
            Item(T),
        }

        /// Min-heap item: ordered by key ascending, ties by insertion
        /// sequence (unique, so the payload is never compared).
        struct HeapItem<T> {
            key: f64,
            seq: u64,
            entry: HeapEntry<T>,
        }
        impl<T> PartialEq for HeapItem<T> {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key && self.seq == other.seq
            }
        }
        impl<T> Eq for HeapItem<T> {}
        impl<T> PartialOrd for HeapItem<T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapItem<T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we want min-key first.
                other
                    .key
                    .total_cmp(&self.key)
                    .then(other.seq.cmp(&self.seq))
            }
        }

        let root = self.root?;
        let mut heap: BinaryHeap<HeapItem<T>> = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(HeapItem {
            key: 0.0,
            seq,
            entry: HeapEntry::Node(NodeId(root)),
        });
        while let Some(HeapItem { entry, .. }) = heap.pop() {
            match entry {
                HeapEntry::Item(t) => return Some(t),
                HeapEntry::Node(id) => {
                    for e in self.entries(id) {
                        seq += 1;
                        let entry = match e {
                            Entry::Node { child, .. } => HeapEntry::Node(child),
                            Entry::Item { item, .. } => HeapEntry::Item(item),
                        };
                        heap.push(HeapItem {
                            key: e.mbr().mindist(q),
                            seq,
                            entry,
                        });
                    }
                }
            }
        }
        None
    }

    // -- insertion internals -------------------------------------------------

    fn push_node(&mut self, node: Node<T>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Retires a node slot: its storage is dropped and the slot becomes
    /// available for reuse by later inserts.
    fn free_node(&mut self, node_id: u32) {
        let level = self.nodes[node_id as usize].level;
        self.nodes[node_id as usize] = Node::new(true, level);
        self.free.push(node_id);
    }

    /// Recursive delete; returns `true` when the entry was found and
    /// removed somewhere below `node_id`. Underfull children are dissolved
    /// into `orphans` on the way back up.
    fn delete_at(
        &mut self,
        node_id: u32,
        mbr: &Rect,
        item: &T,
        orphans: &mut Vec<(Rect, T)>,
    ) -> bool
    where
        T: PartialEq,
    {
        if self.nodes[node_id as usize].is_leaf {
            let pos = {
                let node = &self.nodes[node_id as usize];
                node.rects
                    .iter()
                    .zip(&node.items)
                    .position(|(r, t)| r == mbr && t == item)
            };
            let Some(i) = pos else { return false };
            let node = &mut self.nodes[node_id as usize];
            node.rects.swap_remove(i);
            node.items.swap_remove(i);
            return true;
        }

        let candidates: Vec<(usize, u32)> = {
            let node = &self.nodes[node_id as usize];
            node.rects
                .iter()
                .zip(&node.children)
                .enumerate()
                .filter(|(_, (r, _))| r.contains_rect(mbr))
                .map(|(i, (_, &c))| (i, c))
                .collect()
        };
        for (idx, child) in candidates {
            if !self.delete_at(child, mbr, item, orphans) {
                continue;
            }
            if self.nodes[child as usize].len() < self.config.min_entries {
                // Dissolve the underfull child: unlink it, queue its
                // remaining items for reinsertion, recycle its slots.
                let node = &mut self.nodes[node_id as usize];
                node.rects.swap_remove(idx);
                node.children.swap_remove(idx);
                self.collect_items(child, orphans);
            } else {
                let new_mbr = self.nodes[child as usize].mbr();
                self.nodes[node_id as usize].rects[idx] = new_mbr;
            }
            return true;
        }
        false
    }

    /// Moves every item stored in the subtree rooted at `node_id` into
    /// `out` and frees all of the subtree's node slots.
    fn collect_items(&mut self, node_id: u32, out: &mut Vec<(Rect, T)>) {
        let level = self.nodes[node_id as usize].level;
        let node = std::mem::replace(&mut self.nodes[node_id as usize], Node::new(true, level));
        self.free.push(node_id);
        if node.is_leaf {
            out.extend(node.rects.iter().copied().zip(node.items.iter().copied()));
        } else {
            for &c in &node.children {
                self.collect_items(c, out);
            }
        }
    }

    /// Recursive insert; returns `Some((left, right))` when `node` split.
    fn insert_at(&mut self, node_id: u32, mbr: Rect, item: T) -> Option<(u32, u32)> {
        if self.nodes[node_id as usize].is_leaf {
            self.nodes[node_id as usize].rects.push(mbr);
            self.nodes[node_id as usize].items.push(item);
            if self.nodes[node_id as usize].len() > self.config.max_entries {
                return Some(self.split(node_id));
            }
            return None;
        }

        let child_idx = self.choose_subtree(node_id, &mbr);
        let child_id = self.nodes[node_id as usize].children[child_idx];
        let split = self.insert_at(child_id, mbr, item);
        match split {
            None => {
                // Refresh the child's MBR.
                let new_mbr = self.nodes[child_id as usize].mbr();
                self.nodes[node_id as usize].rects[child_idx] = new_mbr;
                None
            }
            Some((left, right)) => {
                // Replace the child entry with the two split halves.
                let lm = self.nodes[left as usize].mbr();
                let rm = self.nodes[right as usize].mbr();
                {
                    let node = &mut self.nodes[node_id as usize];
                    node.rects[child_idx] = lm;
                    node.children[child_idx] = left;
                    node.rects.push(rm);
                    node.children.push(right);
                }
                if self.nodes[node_id as usize].len() > self.config.max_entries {
                    Some(self.split(node_id))
                } else {
                    None
                }
            }
        }
    }

    /// R* choose-subtree: minimum overlap enlargement for nodes whose
    /// children are leaves, minimum area enlargement otherwise; ties broken
    /// by area enlargement then area.
    fn choose_subtree(&self, node_id: u32, mbr: &Rect) -> usize {
        let node = &self.nodes[node_id as usize];
        let children_are_leaves = node.level == 1;
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, r) in node.rects.iter().enumerate() {
            let enlarged = r.union(mbr);
            let area_enlargement = enlarged.area() - r.area();
            let key = if children_are_leaves {
                // Overlap enlargement of entry i with its siblings.
                let mut overlap_delta = 0.0;
                for (j, other) in node.rects.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_delta +=
                        enlarged.intersection(other).area() - r.intersection(other).area();
                }
                (overlap_delta, area_enlargement, r.area())
            } else {
                (area_enlargement, r.area(), 0.0)
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// R* split of an overfull node; returns the two replacement node ids
    /// (the original id is reused as the left node).
    fn split(&mut self, node_id: u32) -> (u32, u32) {
        let m = self.config.min_entries;
        let total = self.nodes[node_id as usize].len();
        debug_assert!(total == self.config.max_entries + 1);

        // Gather (rect, payload index) pairs; payloads are moved at the end.
        let rects: Vec<Rect> = self.nodes[node_id as usize].rects.clone();
        let k = total - 2 * m + 1; // number of candidate distributions per sort

        // Choose the split axis: minimum sum of perimeters over all
        // candidate distributions of both sorts (by min and by max) on each
        // axis.
        let mut best_axis = 0usize;
        let mut best_margin = f64::INFINITY;
        let mut best_orders: Vec<Vec<usize>> = Vec::new();
        for axis in 0..2usize {
            let mut orders: Vec<Vec<usize>> = Vec::with_capacity(2);
            for by_max in [false, true] {
                let mut idx: Vec<usize> = (0..total).collect();
                idx.sort_by(|&a, &b| {
                    let (ka, kb) = if by_max {
                        match axis {
                            0 => (rects[a].max.x, rects[b].max.x),
                            _ => (rects[a].max.y, rects[b].max.y),
                        }
                    } else {
                        match axis {
                            0 => (rects[a].min.x, rects[b].min.x),
                            _ => (rects[a].min.y, rects[b].min.y),
                        }
                    };
                    ka.total_cmp(&kb)
                });
                orders.push(idx);
            }
            let mut margin = 0.0;
            for order in &orders {
                for split_at in 0..k {
                    let cut = m + split_at;
                    let left = group_mbr(&rects, &order[..cut]);
                    let right = group_mbr(&rects, &order[cut..]);
                    margin += left.perimeter() + right.perimeter();
                }
            }
            if margin < best_margin {
                best_margin = margin;
                best_axis = axis;
                best_orders = orders;
            }
        }
        let _ = best_axis;

        // Choose the distribution on the winning axis: minimum overlap,
        // ties by minimum total area.
        let mut best_cut: Option<(Vec<usize>, usize)> = None;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for order in best_orders {
            for split_at in 0..k {
                let cut = m + split_at;
                let left = group_mbr(&rects, &order[..cut]);
                let right = group_mbr(&rects, &order[cut..]);
                let key = (left.intersection(&right).area(), left.area() + right.area());
                if key < best_key {
                    best_key = key;
                    best_cut = Some((order.clone(), cut));
                }
            }
        }
        // ssq-analyze: allow(no-panic-transitive): the R*-split loop evaluates at least one distribution, so best_cut is always Some
        let (order, cut) = best_cut.expect("at least one distribution");

        // Materialize the two nodes.
        let is_leaf = self.nodes[node_id as usize].is_leaf;
        let level = self.nodes[node_id as usize].level;
        let old = std::mem::replace(&mut self.nodes[node_id as usize], Node::new(is_leaf, level));
        let mut right_node = Node::new(is_leaf, level);
        {
            let left_node = &mut self.nodes[node_id as usize];
            for (rank, &i) in order.iter().enumerate() {
                let target = if rank < cut {
                    &mut *left_node
                } else {
                    &mut right_node
                };
                target.rects.push(old.rects[i]);
                if is_leaf {
                    target.items.push(old.items[i]);
                } else {
                    target.children.push(old.children[i]);
                }
            }
        }
        let right_id = self.push_node(right_node);
        (node_id, right_id)
    }

    /// Checks structural invariants (parent MBRs cover children, fill
    /// bounds, level consistency). Used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let Some(root) = self.root else {
            assert_eq!(self.len, 0);
            return;
        };
        let mut count = 0usize;
        let mut stack = vec![(root, None::<Rect>)];
        while let Some((id, parent_mbr)) = stack.pop() {
            let node = &self.nodes[id as usize];
            if let Some(pm) = parent_mbr {
                assert!(pm.contains_rect(&node.mbr()), "parent MBR must cover child");
                // Non-root nodes respect the capacity; STR packing may
                // leave one trailing node per level below the R* minimum
                // fill, so only non-emptiness is asserted on the low side.
                assert!(
                    node.len() >= 1 && node.len() <= self.config.max_entries,
                    "node fill {} out of [1, {}]",
                    node.len(),
                    self.config.max_entries
                );
            }
            if node.is_leaf {
                assert_eq!(node.level, 0);
                count += node.len();
            } else {
                for (i, &c) in node.children.iter().enumerate() {
                    assert_eq!(
                        self.nodes[c as usize].level + 1,
                        node.level,
                        "levels must decrease by one"
                    );
                    stack.push((c, Some(node.rects[i])));
                }
            }
        }
        assert_eq!(count, self.len, "item count must match");
    }
}

impl<T: Copy> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn group_mbr(rects: &[Rect], idx: &[usize]) -> Rect {
    idx.iter().fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn pseudorandom(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| p(next() * 1000.0, next() * 1000.0))
            .collect()
    }

    fn small_config() -> RTreeConfig {
        RTreeConfig::with_max_entries(4)
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.root().is_none());
        assert!(t.nearest(p(0.0, 0.0)).is_none());
        assert!(t.query_rect(&Rect::EVERYTHING).is_empty());
    }

    #[test]
    fn insert_and_query() {
        let mut t = RTree::with_config(small_config());
        let pts = pseudorandom(200, 1);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);

        let query = Rect::from_corners(p(100.0, 100.0), p(400.0, 400.0));
        let mut got = t.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, &q)| query.contains(q))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let pts = pseudorandom(500, 7);
        let t = RTree::<u32>::bulk_load_points(&pts, small_config());
        t.check_invariants();
        assert_eq!(t.len(), 500);
        for query in [
            Rect::from_corners(p(0.0, 0.0), p(50.0, 50.0)),
            Rect::from_corners(p(500.0, 0.0), p(1000.0, 1000.0)),
            Rect::from_point(pts[17]),
        ] {
            let mut got = t.query_rect(&query);
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, &q)| query.contains(q))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = pseudorandom(300, 13);
        let t = RTree::<u32>::bulk_load_points(&pts, small_config());
        for q in pseudorandom(40, 99) {
            let got = t.nearest(q).unwrap();
            let brute = (0..pts.len() as u32)
                .min_by(|&a, &b| {
                    pts[a as usize]
                        .distance_sq(q)
                        .total_cmp(&pts[b as usize].distance_sq(q))
                })
                .unwrap();
            assert_eq!(
                pts[got as usize].distance_sq(q),
                pts[brute as usize].distance_sq(q)
            );
        }
    }

    #[test]
    fn incremental_nearest_matches_too() {
        let pts = pseudorandom(150, 21);
        let mut t = RTree::with_config(small_config());
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        t.check_invariants();
        for q in pseudorandom(20, 5) {
            let got = t.nearest(q).unwrap();
            let brute = (0..pts.len() as u32)
                .min_by(|&a, &b| {
                    pts[a as usize]
                        .distance_sq(q)
                        .total_cmp(&pts[b as usize].distance_sq(q))
                })
                .unwrap();
            assert_eq!(
                pts[got as usize].distance_sq(q),
                pts[brute as usize].distance_sq(q)
            );
        }
    }

    #[test]
    fn node_access_counter() {
        let pts = pseudorandom(300, 3);
        let t = RTree::<u32>::bulk_load_points(&pts, small_config());
        t.reset_node_accesses();
        assert_eq!(t.node_accesses(), 0);
        let _ = t.query_rect(&Rect::from_corners(p(0.0, 0.0), p(10.0, 10.0)));
        let small = t.node_accesses();
        assert!(small >= 1);
        t.reset_node_accesses();
        let _ = t.query_rect(&Rect::EVERYTHING);
        let all = t.node_accesses();
        assert_eq!(all as usize, t.node_count(), "full scan touches every node");
        assert!(small < all);
    }

    #[test]
    fn height_grows_logarithmically() {
        let pts = pseudorandom(1000, 17);
        let t = RTree::<u32>::bulk_load_points(&pts, RTreeConfig::with_max_entries(10));
        t.check_invariants();
        assert!(t.height() >= 3, "1000 items at fan-out 10 needs 3+ levels");
        assert!(t.height() <= 5);
    }

    #[test]
    fn duplicate_positions_are_allowed() {
        let mut t = RTree::with_config(small_config());
        for i in 0..20u32 {
            t.insert(Rect::from_point(p(1.0, 1.0)), i);
        }
        t.check_invariants();
        let got = t.query_rect(&Rect::from_point(p(1.0, 1.0)));
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn entries_expose_structure() {
        let pts = pseudorandom(100, 31);
        let t = RTree::<u32>::bulk_load_points(&pts, small_config());
        let root = t.root().unwrap();
        let mut item_count = 0usize;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            for e in t.entries(id) {
                match e {
                    Entry::Node { mbr, child } => {
                        assert!(!mbr.is_empty());
                        stack.push(child);
                    }
                    Entry::Item { mbr, item } => {
                        assert_eq!(mbr, Rect::from_point(pts[item as usize]));
                        item_count += 1;
                    }
                }
            }
        }
        assert_eq!(item_count, 100);
    }

    #[test]
    fn delete_then_query_matches_linear_scan() {
        let pts = pseudorandom(300, 57);
        let mut t = RTree::with_config(small_config());
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        // Delete every third point.
        let mut alive: Vec<u32> = Vec::new();
        for (i, &q) in pts.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.delete(Rect::from_point(q), i as u32));
            } else {
                alive.push(i as u32);
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), alive.len());
        let query = Rect::from_corners(p(200.0, 200.0), p(800.0, 800.0));
        let mut got = t.query_rect(&query);
        got.sort_unstable();
        let mut want: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|&i| query.contains(pts[i as usize]))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_missing_entry_is_a_noop() {
        let pts = pseudorandom(50, 61);
        let mut t = RTree::with_config(small_config());
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        assert!(!t.delete(Rect::from_point(p(-5.0, -5.0)), 0));
        assert!(!t.delete(Rect::from_point(pts[3]), 999));
        assert_eq!(t.len(), 50);
        t.check_invariants();
    }

    #[test]
    fn delete_everything_empties_the_tree() {
        let pts = pseudorandom(120, 67);
        let mut t = RTree::with_config(small_config());
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        for (i, &q) in pts.iter().enumerate() {
            assert!(t.delete(Rect::from_point(q), i as u32));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert!(t.root().is_none());
        // The tree is reusable after being emptied.
        t.insert(Rect::from_point(p(1.0, 2.0)), 7);
        assert_eq!(t.query_rect(&Rect::EVERYTHING), vec![7]);
        t.check_invariants();
    }

    #[test]
    fn clone_is_independent_and_resets_access_counter() {
        let pts = pseudorandom(200, 71);
        let t = RTree::<u32>::bulk_load_points(&pts, small_config());
        let _ = t.query_rect(&Rect::EVERYTHING);
        assert!(t.node_accesses() > 0);
        let mut c = t.clone();
        assert_eq!(c.node_accesses(), 0, "clone starts with a fresh counter");
        // Mutating the clone leaves the original untouched.
        assert!(c.delete(Rect::from_point(pts[0]), 0));
        c.insert(Rect::from_point(p(1.0, 1.0)), 1000);
        c.check_invariants();
        t.check_invariants();
        assert_eq!(t.len(), 200);
        assert_eq!(c.len(), 200);
        let mut orig = t.query_rect(&Rect::from_point(pts[0]));
        orig.sort_unstable();
        assert!(orig.contains(&0));
        assert!(!c.query_rect(&Rect::from_point(pts[0])).contains(&0));
    }

    #[test]
    fn map_items_relabels_payloads() {
        let pts = pseudorandom(80, 73);
        let mut t = RTree::<u32>::bulk_load_points(&pts, small_config());
        t.map_items(|i| i + 1000);
        let mut got = t.query_rect(&Rect::EVERYTHING);
        got.sort_unstable();
        let want: Vec<u32> = (1000..1080).collect();
        assert_eq!(got, want);
        t.check_invariants();
    }

    /// Property test: pseudorandom interleavings of insert / delete /
    /// reinsert uphold the structural invariants, and the mutated tree is
    /// query-equivalent to a fresh STR bulk load of the surviving points.
    #[test]
    fn interleaved_mutations_match_fresh_bulk_load() {
        for seed in [5u64, 19, 43, 101] {
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut rnd = move || (next() >> 11) as f64 / (1u64 << 53) as f64;

            let mut t = RTree::with_config(small_config());
            // (point, payload) pairs currently stored in the tree.
            let mut live: Vec<(Point, u32)> = Vec::new();
            let mut next_id = 0u32;
            for step in 0..600usize {
                let roll = rnd();
                if roll < 0.55 || live.len() < 4 {
                    let q = p(rnd() * 1000.0, rnd() * 1000.0);
                    t.insert(Rect::from_point(q), next_id);
                    live.push((q, next_id));
                    next_id += 1;
                } else if roll < 0.85 {
                    let victim = (rnd() * live.len() as f64) as usize % live.len();
                    let (q, id) = live.swap_remove(victim);
                    assert!(t.delete(Rect::from_point(q), id));
                } else {
                    // Reinsert: delete an entry and immediately add it back.
                    let victim = (rnd() * live.len() as f64) as usize % live.len();
                    let (q, id) = live[victim];
                    assert!(t.delete(Rect::from_point(q), id));
                    t.insert(Rect::from_point(q), id);
                }
                if step % 97 == 0 {
                    t.check_invariants();
                }
            }
            t.check_invariants();
            assert_eq!(t.len(), live.len());

            let fresh = RTree::bulk_load_with_config(
                live.iter()
                    .map(|&(q, id)| (Rect::from_point(q), id))
                    .collect(),
                small_config(),
            );
            fresh.check_invariants();
            let mut s2 = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            let mut next2 = move || {
                s2 ^= s2 << 13;
                s2 ^= s2 >> 7;
                s2 ^= s2 << 17;
                (s2 >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..40 {
                let a = p(next2() * 1000.0, next2() * 1000.0);
                let b = p(next2() * 1000.0, next2() * 1000.0);
                let query = Rect::from_corners(
                    p(a.x.min(b.x), a.y.min(b.y)),
                    p(a.x.max(b.x), a.y.max(b.y)),
                );
                let mut got = t.query_rect(&query);
                got.sort_unstable();
                let mut want = fresh.query_rect(&query);
                want.sort_unstable();
                assert_eq!(got, want, "mutated tree must agree with fresh bulk load");
                let probe = p(next2() * 1000.0, next2() * 1000.0);
                let got_n = t.nearest(probe);
                let want_n = fresh.nearest(probe);
                match (got_n, want_n) {
                    (Some(g), Some(w)) => {
                        let dg = live.iter().find(|&&(_, id)| id == g).unwrap().0;
                        let dw = live.iter().find(|&&(_, id)| id == w).unwrap().0;
                        assert_eq!(dg.distance_sq(probe), dw.distance_sq(probe));
                    }
                    (g, w) => assert_eq!(g.is_none(), w.is_none()),
                }
            }
        }
    }

    #[test]
    fn freed_slots_are_reused() {
        let pts = pseudorandom(200, 83);
        let mut t = RTree::with_config(small_config());
        for (i, &q) in pts.iter().enumerate() {
            t.insert(Rect::from_point(q), i as u32);
        }
        let before = t.node_count();
        // Churn: repeatedly delete and reinsert the same window of points.
        for _round in 0..20 {
            for (i, &q) in pts.iter().enumerate().take(60) {
                assert!(t.delete(Rect::from_point(q), i as u32));
            }
            for (i, &q) in pts.iter().enumerate().take(60) {
                t.insert(Rect::from_point(q), i as u32);
            }
        }
        t.check_invariants();
        assert!(
            t.node_count() <= before + before / 2 + 8,
            "arena must not grow unboundedly under churn: {} -> {}",
            before,
            t.node_count()
        );
    }

    #[test]
    fn paper_default_fanout() {
        assert_eq!(RTreeConfig::default().max_entries, 50);
        let pts = pseudorandom(5000, 41);
        let t = RTree::<u32>::bulk_load_points(&pts, RTreeConfig::default());
        t.check_invariants();
        assert_eq!(t.len(), 5000);
    }
}
