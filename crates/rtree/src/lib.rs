//! # ssq-rtree
//!
//! An R*-tree built from scratch for the spatial skyline library.
//!
//! The paper's experiments index the USGS dataset "by an R*-tree index with
//! the page size of 1K bytes and a maximum of 50 entries in each node"
//! (§7), and both the BBS competitor and B²S² traverse that index
//! best-first while counting "the number of accessed nodes" as the I/O
//! metric. This crate provides:
//!
//! * [`RTree`] — insertion with the R* choose-subtree and split heuristics,
//!   plus Sort-Tile-Recursive (STR) bulk loading for the large experiment
//!   datasets;
//! * classic queries ([`RTree::query_rect`], [`RTree::nearest`]) used by
//!   tests and examples;
//! * a low-level read API ([`RTree::root`], [`RTree::entries`]) that lets
//!   the skyline algorithms drive their own best-first traversals with
//!   arbitrary pruning, while the tree transparently counts node accesses
//!   ([`RTree::node_accesses`]) exactly the way the paper reports I/O.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::all)]

mod tree;

pub use tree::{Entry, NodeId, RTree, RTreeConfig, DEFAULT_MAX_ENTRIES};
