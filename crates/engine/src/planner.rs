//! The adaptive planner: which algorithm should serve this query?
//!
//! The paper's experiments (§7) rank the algorithms by regime, and the
//! planner encodes that ranking as a small decision tree:
//!
//! * **Tiny datasets** — index traversal overhead dominates; a sorted
//!   scan ([`naive_sorted`](ssq_core::naive_sorted)) wins outright below
//!   a cutoff (default 64 points).
//! * **Degenerate hulls** — when `CH(Q)` collapses to a point or segment
//!   (≤ 2 anchors), VS²'s visible-region machinery degenerates while
//!   B²S²'s mindist pruning is unaffected, so B²S² is preferred.
//! * **Everything else** — VS² is the paper's overall winner (Fig. 12):
//!   it visits a neighborhood of `CH(Q)` instead of descending from the
//!   R-tree root.
//!
//! A forced algorithm (engine-wide via
//! [`EngineConfig`](crate::EngineConfig), or per request via
//! [`QueryRequest`](crate::QueryRequest)) bypasses the heuristic — that
//! is what lets benchmarks compare plans on identical workloads.

use ssq_core::QueryContext;

/// The serving algorithms the engine can plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sorted naive scan (`naive_sorted`) — no index.
    Naive,
    /// BBS adapted to spatial skylines (the paper's competitor, §7).
    Bbs,
    /// B²S² on the R*-tree (§4.1).
    B2s2,
    /// VS² on the Voronoi index (§4.2).
    Vs2,
}

impl Algorithm {
    /// Every algorithm, in [`Algorithm::index`] order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Naive,
        Algorithm::Bbs,
        Algorithm::B2s2,
        Algorithm::Vs2,
    ];

    /// Dense index (for metrics arrays).
    pub fn index(self) -> usize {
        match self {
            Algorithm::Naive => 0,
            Algorithm::Bbs => 1,
            Algorithm::B2s2 => 2,
            Algorithm::Vs2 => 3,
        }
    }

    /// Lower-case name, matching the CLI's `--algo` values.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Bbs => "bbs",
            Algorithm::B2s2 => "b2s2",
            Algorithm::Vs2 => "vs2",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Algorithm, String> {
        match s {
            "naive" => Ok(Algorithm::Naive),
            "bbs" => Ok(Algorithm::Bbs),
            "b2s2" => Ok(Algorithm::B2s2),
            "vs2" => Ok(Algorithm::Vs2),
            other => Err(format!(
                "unknown algorithm '{other}' (expected naive|bbs|b2s2|vs2)"
            )),
        }
    }
}

/// Chooses the algorithm for each query from dataset size and hull shape.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    force: Option<Algorithm>,
    naive_cutoff: usize,
}

impl Planner {
    /// Default `|P|` below which the sorted naive scan is chosen.
    pub const DEFAULT_NAIVE_CUTOFF: usize = 64;

    /// An adaptive planner; `force` pins every choice to one algorithm.
    pub fn new(force: Option<Algorithm>) -> Planner {
        Planner {
            force,
            naive_cutoff: Self::DEFAULT_NAIVE_CUTOFF,
        }
    }

    /// Overrides the naive cutoff (useful in tests).
    pub fn with_naive_cutoff(mut self, cutoff: usize) -> Planner {
        self.naive_cutoff = cutoff;
        self
    }

    /// The engine-wide forced algorithm, if any.
    pub fn forced(&self) -> Option<Algorithm> {
        self.force
    }

    /// Picks the algorithm for a query over `data_len` points.
    pub fn choose(&self, data_len: usize, ctx: &QueryContext) -> Algorithm {
        self.choose_for_anchors(data_len, ctx.anchors().len())
    }

    /// [`choose`](Self::choose) given only the anchor count — used by the
    /// diagram hit path, which never materializes a [`QueryContext`].
    pub fn choose_for_anchors(&self, data_len: usize, anchors: usize) -> Algorithm {
        if let Some(forced) = self.force {
            return forced;
        }
        if data_len < self.naive_cutoff {
            Algorithm::Naive
        } else if anchors <= 2 {
            Algorithm::B2s2
        } else {
            Algorithm::Vs2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_geom::Point;

    fn ctx(q: &[(f64, f64)]) -> QueryContext {
        let pts: Vec<Point> = q.iter().map(|&(x, y)| Point::new(x, y)).collect();
        QueryContext::new(&pts)
    }

    #[test]
    fn small_datasets_scan() {
        let planner = Planner::new(None);
        let c = ctx(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        assert_eq!(planner.choose(10, &c), Algorithm::Naive);
        assert_eq!(planner.choose(63, &c), Algorithm::Naive);
        assert_eq!(planner.choose(64, &c), Algorithm::Vs2);
    }

    #[test]
    fn degenerate_hulls_use_the_rtree() {
        let planner = Planner::new(None);
        // Collinear query points: the hull is a segment, 2 anchors.
        let segment = ctx(&[(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]);
        assert_eq!(segment.anchors().len(), 2);
        assert_eq!(planner.choose(10_000, &segment), Algorithm::B2s2);
        // A single query point.
        let point = ctx(&[(0.3, 0.7)]);
        assert_eq!(planner.choose(10_000, &point), Algorithm::B2s2);
    }

    #[test]
    fn proper_hulls_use_voronoi() {
        let planner = Planner::new(None);
        let c = ctx(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0), (0.5, 0.4)]);
        assert_eq!(planner.choose(10_000, &c), Algorithm::Vs2);
    }

    #[test]
    fn force_wins_over_every_heuristic() {
        let planner = Planner::new(Some(Algorithm::Bbs));
        let c = ctx(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        assert_eq!(planner.choose(3, &c), Algorithm::Bbs);
        assert_eq!(planner.choose(1_000_000, &c), Algorithm::Bbs);
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algo in Algorithm::ALL {
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
        }
        assert!("quantum".parse::<Algorithm>().is_err());
    }
}
