//! Warm-start persistence: hot canonical query keys on disk.
//!
//! A serving process periodically saves its hottest keys
//! ([`Engine::hot_keys`](crate::Engine::hot_keys)); the next process
//! loads the file and hands the keys to
//! [`Engine::warm_start`](crate::Engine::warm_start) before accepting
//! traffic, so known-hot query shapes have their contexts cached and
//! their diagram cells materialized from the first request.
//!
//! # Format
//!
//! A line-oriented text file:
//!
//! ```text
//! ssq-warm v1
//! quantum 1e-9
//! k 3100000000 2200000000 7400000000 5900000000
//! k ...
//! ```
//!
//! Line 1 is a fixed magic + version. Line 2 records the coordinate
//! quantum the keys were canonicalized with (Rust's `f64` `Display` is
//! shortest-round-trip, so parsing it back is exact). Every following
//! `k` line is one key: its quantized hull cells as `x y` integer
//! pairs. A loader whose engine uses a *different* quantum can still
//! use the keys — [`Engine::warm_start`](crate::Engine::warm_start)
//! re-canonicalizes through each key's representative points.

use ssq_core::QueryKey;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

const MAGIC: &str = "ssq-warm v1";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes `keys` (canonicalized with `quantum`) to `path`, atomically
/// via a sibling temp file so a crash mid-write never leaves a torn
/// warm file.
pub fn save_warm_keys(path: &Path, quantum: f64, keys: &[QueryKey]) -> io::Result<()> {
    if !(quantum > 0.0 && quantum.is_finite()) {
        return Err(invalid(format!("quantum must be positive, got {quantum}")));
    }
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("quantum {quantum}\n"));
    for key in keys {
        if key.is_empty() {
            continue;
        }
        out.push('k');
        for &(x, y) in key.cells() {
            out.push_str(&format!(" {x} {y}"));
        }
        out.push('\n');
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(out.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads a warm file back as `(quantum, keys)`.
pub fn load_warm_keys(path: &Path) -> io::Result<(f64, Vec<QueryKey>)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    match lines.next() {
        Some(MAGIC) => {}
        other => {
            return Err(invalid(format!(
                "not a warm file: expected `{MAGIC}`, got {other:?}"
            )))
        }
    }
    let quantum = match lines.next().and_then(|l| l.strip_prefix("quantum ")) {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|e| invalid(format!("bad quantum `{raw}`: {e}")))?,
        None => return Err(invalid("missing quantum line".into())),
    };
    if !(quantum > 0.0 && quantum.is_finite()) {
        return Err(invalid(format!("quantum must be positive, got {quantum}")));
    }
    let mut keys = Vec::new();
    for (number, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let Some(rest) = line.strip_prefix("k ") else {
            return Err(invalid(format!("line {}: expected `k ...`", number + 3)));
        };
        let coords: Vec<i64> = rest
            .split_ascii_whitespace()
            .map(|tok| {
                tok.parse::<i64>()
                    .map_err(|e| invalid(format!("line {}: bad cell `{tok}`: {e}", number + 3)))
            })
            .collect::<io::Result<_>>()?;
        if coords.is_empty() || !coords.len().is_multiple_of(2) {
            return Err(invalid(format!(
                "line {}: key needs an even, nonzero number of coordinates",
                number + 3
            )));
        }
        let cells: Vec<(i64, i64)> = coords.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        keys.push(QueryKey::from_cells(cells));
    }
    Ok((quantum, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_geom::Point;

    #[test]
    fn round_trips_keys_and_quantum() {
        let quantum = 1e-9;
        let keys = vec![
            QueryKey::canonical(&[Point::new(3.1, 2.2), Point::new(7.4, 5.9)], quantum),
            QueryKey::canonical(
                &[
                    Point::new(1.0, 1.0),
                    Point::new(9.0, 3.0),
                    Point::new(5.0, 8.0),
                ],
                quantum,
            ),
            QueryKey::canonical(&[Point::new(-2.5, 4.0)], quantum),
        ];
        let dir = std::env::temp_dir().join(format!("ssq-warm-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hot.warm");
        save_warm_keys(&path, quantum, &keys).unwrap();
        let (got_quantum, got_keys) = load_warm_keys(&path).unwrap();
        assert_eq!(got_quantum, quantum);
        assert_eq!(got_keys, keys);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("ssq-warm-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        for (name, contents) in [
            ("magic", "not a warm file\n"),
            ("quantum", "ssq-warm v1\nquantum zero\n"),
            ("negative", "ssq-warm v1\nquantum -1\n"),
            ("odd", "ssq-warm v1\nquantum 1e-9\nk 1 2 3\n"),
            ("token", "ssq-warm v1\nquantum 1e-9\nk one 2\n"),
            ("prefix", "ssq-warm v1\nquantum 1e-9\nq 1 2\n"),
        ] {
            let path = dir.join(name);
            fs::write(&path, contents).unwrap();
            assert!(load_warm_keys(&path).is_err(), "{name} was accepted");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
