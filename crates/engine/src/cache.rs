//! The LRU query-context cache.
//!
//! Building a [`QueryContext`] means computing `CH(Q)` and its anchor
//! list; a serving engine sees the same handful of query sets over and
//! over (the same team of friends re-asking as one member drives around),
//! so contexts are worth caching. The interesting part is the key.
//!
//! # Cache-key semantics
//!
//! Theorem 2 of the paper: the spatial skyline depends **only on the
//! vertices of `CH(Q)`** — interior query points are irrelevant. The key
//! is therefore the canonicalized hull of `Q`:
//!
//! 1. compute the convex hull of the query set,
//! 2. quantize each vertex coordinate to a grid (default `1e-9`),
//! 3. sort the quantized vertices lexicographically.
//!
//! Since the engine serves a *versioned* dataset (see
//! [`snapshot`](crate::snapshot)), every entry is additionally scoped by
//! the snapshot **generation** it was computed against: the full key is
//! `(generation, QueryKey)`. A reindex therefore needs no global cache
//! flush — entries of retired generations simply stop being looked up
//! and die by LRU eviction as new-generation traffic displaces them.
//!
//! Consequences, by construction:
//!
//! * permuting `Q` hits the same entry;
//! * duplicating query points hits the same entry;
//! * adding or moving *interior* query points hits the same entry — the
//!   cached context's `query()` may differ from the submitted `Q`, but
//!   every algorithm's result only depends on `anchors()`, which agree;
//! * two query sets whose hull vertices differ by less than the quantum
//!   collide; the entry built first wins. The default quantum (`1e-9` of
//!   a coordinate unit) only merges hulls that are equal up to
//!   floating-point noise. A coarser quantum trades exactness for hit
//!   rate — that is a deliberate knob, not an accident.

use crate::sync::{RankedMutex, RANK_CONTEXT_CACHE};
use ssq_core::QueryContext;
use ssq_geom::Point;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// The key lives in `ssq-core` (see its module docs) so the skyline
// diagram can index materialized cells by it without a dependency cycle;
// it is re-exported here because this cache is where its semantics are
// load-bearing.
pub use ssq_core::QueryKey;

/// The full cache key: which dataset generation the context was built
/// for, plus the canonicalized query key.
///
/// A [`QueryContext`] is derived from `Q` alone today, but scoping
/// entries by generation makes the dataset lifetime part of the cache
/// contract: contexts belonging to retired generations stop being hit
/// the moment a new snapshot is published, and are reclaimed by normal
/// LRU pressure rather than an explicit flush.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Snapshot generation the entry is scoped to.
    pub generation: u64,
    /// Canonicalized query key within that generation.
    pub query: QueryKey,
}

struct Slot {
    ctx: Arc<QueryContext>,
    /// Tick of the most recent touch; also the slot's key into `order`.
    tick: u64,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    /// Recency index: tick → key. The smallest tick is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

impl Inner {
    /// Refreshes `key`'s recency and returns its context, or `None` when
    /// the key is absent.
    fn touch(&mut self, key: &CacheKey) -> Option<Arc<QueryContext>> {
        let slot = self.map.get_mut(key)?;
        self.tick += 1;
        self.order.remove(&slot.tick);
        slot.tick = self.tick;
        self.order.insert(self.tick, key.clone());
        Some(Arc::clone(&slot.ctx))
    }
}

/// A thread-safe LRU cache of [`QueryContext`]s keyed by
/// `(generation, QueryKey)`.
pub struct ContextCache {
    capacity: usize,
    quantum: f64,
    inner: RankedMutex<Inner>,
}

impl ContextCache {
    /// Default coordinate quantum: merges only floating-point noise.
    pub const DEFAULT_QUANTUM: f64 = 1e-9;

    /// A cache holding at most `capacity` contexts (capacity ≥ 1).
    pub fn new(capacity: usize, quantum: f64) -> ContextCache {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(quantum > 0.0, "quantum must be positive");
        ContextCache {
            capacity,
            quantum,
            inner: RankedMutex::new(
                "engine.cache",
                RANK_CONTEXT_CACHE,
                Inner {
                    map: HashMap::new(),
                    order: BTreeMap::new(),
                    tick: 0,
                },
            ),
        }
    }

    /// The cache lock's `(name, rank)`, for lock-order assertions.
    pub fn lock_info(&self) -> (&'static str, u32) {
        (self.inner.name(), self.inner.rank())
    }

    /// The cached context for `q` under snapshot `generation`, building
    /// and inserting it on a miss.
    ///
    /// Returns `(context, hit)`; `hit` is `true` when the context came
    /// from the cache. The miss path builds the context *outside* the
    /// lock candidate-free: the hull pass needed for the key is the same
    /// work, so a duplicate build on a racing miss is possible but
    /// harmless (last writer wins, both callers get a valid context).
    /// Entries of other generations never match; after a snapshot swap
    /// they age out through LRU eviction as the new generation's
    /// working set fills the cache.
    pub fn get_or_build(&self, generation: u64, q: &[Point]) -> (Arc<QueryContext>, bool) {
        let key = CacheKey {
            generation,
            query: QueryKey::canonical(q, self.quantum),
        };
        {
            let mut inner = self.inner.lock();
            if let Some(ctx) = inner.touch(&key) {
                return (ctx, true);
            }
        }
        let ctx = Arc::new(QueryContext::new(q));
        let mut inner = self.inner.lock();
        if let Some(ctx) = inner.touch(&key) {
            // A racing thread inserted the same key first; keep its entry.
            return (ctx, true);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key.clone(),
            Slot {
                ctx: Arc::clone(&ctx),
                tick,
            },
        );
        inner.order.insert(tick, key);
        while inner.map.len() > self.capacity {
            let Some((&victim_tick, _)) = inner.order.iter().next() else {
                break; // order empty: nothing left to evict
            };
            if let Some(victim) = inner.order.remove(&victim_tick) {
                inner.map.remove(&victim);
            }
        }
        (ctx, false)
    }

    /// `true` when `q`'s canonical key is cached for `generation`. Does
    /// not touch recency.
    pub fn contains(&self, generation: u64, q: &[Point]) -> bool {
        let key = CacheKey {
            generation,
            query: QueryKey::canonical(q, self.quantum),
        };
        self.inner.lock().map.contains_key(&key)
    }

    /// Number of cached contexts scoped to `generation` — how much of
    /// the cache a given dataset generation still occupies.
    pub fn len_for_generation(&self, generation: u64) -> usize {
        self.inner
            .lock()
            .map
            .keys()
            .filter(|k| k.generation == generation)
            .count()
    }

    /// Number of cached contexts.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured coordinate quantum.
    pub fn quantum(&self) -> f64 {
        self.quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(pts: &[(f64, f64)]) -> Vec<Point> {
        pts.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn permuted_query_sets_share_a_key() {
        let quantum = ContextCache::DEFAULT_QUANTUM;
        let a = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]), quantum);
        let b = QueryKey::canonical(&q(&[(0.5, 1.0), (0.0, 0.0), (1.0, 0.0)]), quantum);
        assert_eq!(a, b);
    }

    #[test]
    fn interior_query_points_do_not_change_the_key() {
        // Theorem 2: the skyline ignores interior query points, so the
        // cache may too.
        let quantum = ContextCache::DEFAULT_QUANTUM;
        let hull_only = q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        let with_interior = q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0), (0.5, 0.3), (0.4, 0.2)]);
        assert_eq!(
            QueryKey::canonical(&hull_only, quantum),
            QueryKey::canonical(&with_interior, quantum)
        );
    }

    #[test]
    fn duplicate_query_points_do_not_change_the_key() {
        let quantum = ContextCache::DEFAULT_QUANTUM;
        let once = q(&[(0.0, 0.0), (1.0, 1.0)]);
        let twice = q(&[(0.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert_eq!(
            QueryKey::canonical(&once, quantum),
            QueryKey::canonical(&twice, quantum)
        );
    }

    #[test]
    fn distinct_hulls_get_distinct_keys() {
        let quantum = ContextCache::DEFAULT_QUANTUM;
        let a = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]), quantum);
        let b = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 2.0)]), quantum);
        assert_ne!(a, b);
    }

    #[test]
    fn quantization_merges_noise_but_not_structure() {
        let a = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 1.0)]), 1e-6);
        let noisy = QueryKey::canonical(&q(&[(1e-9, -1e-9), (1.0 + 1e-9, 1.0)]), 1e-6);
        let moved = QueryKey::canonical(&q(&[(0.0, 0.0), (1.0, 1.001)]), 1e-6);
        assert_eq!(a, noisy);
        assert_ne!(a, moved);
    }

    #[test]
    fn hit_and_miss_are_reported() {
        let cache = ContextCache::new(8, ContextCache::DEFAULT_QUANTUM);
        let qa = q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        let (_, hit) = cache.get_or_build(0, &qa);
        assert!(!hit, "first lookup must miss");
        let (_, hit) = cache.get_or_build(0, &qa);
        assert!(hit, "second lookup must hit");
        // A permutation with an extra interior point is still a hit.
        let qb = q(&[(0.5, 1.0), (0.5, 0.3), (1.0, 0.0), (0.0, 0.0)]);
        let (ctx, hit) = cache.get_or_build(0, &qb);
        assert!(hit, "canonically-equal query must hit");
        // The cached context is the one built from the FIRST query seen
        // for this key — anchors agree, raw query() may not.
        assert_eq!(ctx.query().len(), 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ContextCache::new(2, ContextCache::DEFAULT_QUANTUM);
        let qa = q(&[(0.0, 0.0), (1.0, 0.0)]);
        let qb = q(&[(0.0, 0.0), (2.0, 0.0)]);
        let qc = q(&[(0.0, 0.0), (3.0, 0.0)]);
        cache.get_or_build(0, &qa);
        cache.get_or_build(0, &qb);
        // Touch A so B becomes the LRU victim.
        assert!(cache.get_or_build(0, &qa).1);
        cache.get_or_build(0, &qc);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(0, &qa), "recently-touched entry evicted");
        assert!(!cache.contains(0, &qb), "LRU entry survived eviction");
        assert!(cache.contains(0, &qc));
    }

    #[test]
    fn capacity_one_still_works() {
        let cache = ContextCache::new(1, ContextCache::DEFAULT_QUANTUM);
        let qa = q(&[(0.0, 0.0), (1.0, 0.0)]);
        let qb = q(&[(0.0, 0.0), (2.0, 0.0)]);
        assert!(!cache.get_or_build(0, &qa).1);
        assert!(cache.get_or_build(0, &qa).1);
        assert!(!cache.get_or_build(0, &qb).1);
        assert!(!cache.contains(0, &qa));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generations_scope_entries() {
        let cache = ContextCache::new(8, ContextCache::DEFAULT_QUANTUM);
        let qa = q(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        assert!(!cache.get_or_build(0, &qa).1);
        // The same query under a newer generation is a MISS: contexts do
        // not leak across snapshot swaps.
        assert!(!cache.get_or_build(1, &qa).1);
        assert!(cache.get_or_build(1, &qa).1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.len_for_generation(0), 1);
        assert_eq!(cache.len_for_generation(1), 1);
        assert!(cache.contains(0, &qa));
        assert!(cache.contains(1, &qa));
        assert!(!cache.contains(2, &qa));
    }

    #[test]
    fn old_generation_entries_die_by_lru_pressure() {
        let cache = ContextCache::new(4, ContextCache::DEFAULT_QUANTUM);
        let sets: Vec<Vec<Point>> = (0..4)
            .map(|i| q(&[(0.0, 0.0), (1.0 + i as f64, 0.0), (0.5, 1.0)]))
            .collect();
        for s in &sets {
            cache.get_or_build(0, s);
        }
        assert_eq!(cache.len_for_generation(0), 4);
        // A "swap": the same working set now arrives under generation 1.
        // Without any explicit flush, the old generation's entries are
        // displaced one by one until none remain.
        for s in &sets {
            cache.get_or_build(1, s);
        }
        assert_eq!(cache.len(), 4, "capacity must be respected");
        assert_eq!(
            cache.len_for_generation(0),
            0,
            "stale generation survived LRU pressure"
        );
        assert_eq!(cache.len_for_generation(1), 4);
    }
}
