//! Versioned dataset snapshots and the catalog that publishes them.
//!
//! The paper's algorithms assume *immutable* R-tree / Voronoi indexes,
//! and everything in this workspace preserves that assumption — what
//! changes here is **which** immutable bundle the serving layer reads.
//! A [`Snapshot`] packages one dataset together with both physical
//! designs built over it, stamped with a monotonically increasing
//! `generation`. A [`SnapshotCatalog`] owns the *current* snapshot and
//! replaces it atomically: readers pin an `Arc<Snapshot>` and keep
//! computing against it even while a newer generation is published, so
//! a reindex never drains or pauses in-flight queries.
//!
//! # Lifecycle
//!
//! 1. **Build** — [`Snapshot::build`] constructs both indexes off the
//!    serving path (any thread; typically a dedicated reindex thread).
//!    Building touches nothing shared, so queries proceed untouched.
//! 2. **Publish** — [`SnapshotCatalog::install`] swaps the current
//!    `Arc` under a mutex held only for the pointer exchange. New
//!    queries (which pin at dequeue time) see the new generation.
//! 3. **Pin** — every query clones the `Arc` once and works against
//!    that bundle; continuous sessions pin at session open.
//! 4. **Retire** — when the last pinned `Arc` drops, the old indexes
//!    are freed. There is no epoch machinery: `Arc` reference counting
//!    *is* the retirement protocol.

use crate::sync::{RankedMutex, RANK_CATALOG};
use ssq_core::{DeltaStats, RTreeIndex, UpdateBatch, VoronoiIndex};
use ssq_geom::{Point, Rect};
use std::sync::Arc;

/// One immutable dataset generation: the points plus both index
/// structures the planner can choose between.
///
/// Snapshots are cheap to share (`Arc` all the way down) and never
/// mutated after construction; a new dataset means a new snapshot with
/// a higher [`generation`](Snapshot::generation).
pub struct Snapshot {
    generation: u64,
    rtree: Arc<RTreeIndex>,
    voronoi: Arc<VoronoiIndex>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("generation", &self.generation)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// Builds both indexes over `points` and stamps the bundle with
    /// `generation`.
    ///
    /// `points` must be non-empty, finite, and duplicate-free (the
    /// Voronoi builder's requirements); the error string is the
    /// underlying builder's.
    pub fn build(generation: u64, points: &[Point]) -> Result<Snapshot, String> {
        if points.is_empty() {
            return Err("cannot build a snapshot over an empty dataset".into());
        }
        let rtree = Arc::new(RTreeIndex::new(points));
        let voronoi = Arc::new(VoronoiIndex::new(points).map_err(|e| e.to_string())?);
        Ok(Snapshot {
            generation,
            rtree,
            voronoi,
        })
    }

    /// Wraps pre-built indexes (they can be shared with code outside the
    /// engine).
    ///
    /// # Panics
    ///
    /// Panics if the two indexes cover different numbers of points.
    pub fn from_indexes(
        generation: u64,
        rtree: Arc<RTreeIndex>,
        voronoi: Arc<VoronoiIndex>,
    ) -> Snapshot {
        assert_eq!(
            rtree.len(),
            voronoi.len(),
            "R-tree and Voronoi snapshots index different datasets"
        );
        Snapshot {
            generation,
            rtree,
            voronoi,
        }
    }

    /// Produces the next generation by applying an [`UpdateBatch`] as a
    /// copy-on-write delta: both indexes of `self` stay untouched (and
    /// keep serving pinned readers), while the new bundle is built in
    /// `O(|batch| log n)` plus the memory copies of generation
    /// publishing — not a full rebuild.
    ///
    /// The batch is validated against this snapshot and normalized
    /// (deletes sorted/deduplicated, inserts Hilbert-ordered over this
    /// generation's universe), so the resulting point order — survivors
    /// densely renumbered, then inserts — is a deterministic function of
    /// `(self, batch)`: rebuilding from scratch over
    /// [`points`](Snapshot::points) of the result reproduces it exactly.
    pub fn apply_delta(
        &self,
        generation: u64,
        batch: &UpdateBatch,
    ) -> Result<(Snapshot, DeltaStats), String> {
        batch.validate(self.len()).map_err(|e| e.to_string())?;
        let mut batch = batch.clone();
        batch.normalize(&self.universe());
        let rtree = Arc::new(self.rtree.apply_delta(&batch));
        let (voronoi, stats) = self
            .voronoi
            .apply_delta(&batch)
            .map_err(|e| e.to_string())?;
        Ok((
            Snapshot {
                generation,
                rtree,
                voronoi: Arc::new(voronoi),
            },
            stats,
        ))
    }

    /// The dataset generation this snapshot carries.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The R*-tree over this generation's points (BBS, B²S²).
    pub fn rtree(&self) -> &Arc<RTreeIndex> {
        &self.rtree
    }

    /// The Voronoi index over this generation's points (VS², VCS²).
    pub fn voronoi(&self) -> &Arc<VoronoiIndex> {
        &self.voronoi
    }

    /// The snapshot's points, in index order. Skyline ids index into
    /// this slice.
    pub fn points(&self) -> &[Point] {
        self.rtree.points()
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.rtree.len()
    }

    /// `true` when the snapshot holds no points (never constructed by
    /// [`Snapshot::build`], which rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.rtree.is_empty()
    }

    /// The bounding rectangle of this generation's points.
    pub fn universe(&self) -> Rect {
        self.rtree.universe()
    }
}

/// The publication point for [`Snapshot`]s: one *current* generation,
/// replaced atomically by [`install`](SnapshotCatalog::install).
///
/// The mutex guards only the `Arc` exchange —
/// [`current`](SnapshotCatalog::current) holds it for a single clone,
/// never across an index build or a query, so the read path is
/// contention-free in practice and readers can never block a publisher
/// for long (nor vice versa).
pub struct SnapshotCatalog {
    current: RankedMutex<Arc<Snapshot>>,
}

impl std::fmt::Debug for SnapshotCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCatalog")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl SnapshotCatalog {
    /// A catalog whose current snapshot is `initial`.
    pub fn new(initial: Arc<Snapshot>) -> SnapshotCatalog {
        SnapshotCatalog {
            current: RankedMutex::new("engine.catalog", RANK_CATALOG, initial),
        }
    }

    /// Pins the current snapshot: the returned `Arc` stays valid (and
    /// keeps its generation's indexes alive) for as long as the caller
    /// holds it, regardless of later installs.
    pub fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock())
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current.lock().generation
    }

    /// The catalog lock's `(name, rank)`, for lock-order assertions.
    pub fn lock_info(&self) -> (&'static str, u32) {
        (self.current.name(), self.current.rank())
    }

    /// Atomically replaces the current snapshot, returning the retired
    /// one (callers usually drop it; tests inspect its strong count).
    ///
    /// Rejects a snapshot whose generation is not strictly newer than
    /// the current one — installs must move time forward, otherwise a
    /// slow build racing a fast one could roll the dataset back.
    pub fn install(&self, snapshot: Arc<Snapshot>) -> Result<Arc<Snapshot>, StaleSnapshot> {
        let mut current = self.current.lock();
        if snapshot.generation <= current.generation {
            return Err(StaleSnapshot {
                offered: snapshot.generation,
                current: current.generation,
            });
        }
        Ok(std::mem::replace(&mut *current, snapshot))
    }

    /// Publishes the next generation by delta: pins the current
    /// snapshot, applies `batch` off-lock (readers keep serving), then
    /// installs the result. Returns the published snapshot and the
    /// maintenance stats.
    ///
    /// Concurrent callers race on the final install — the loser's
    /// generation is stale and the install fails — so delta publishing
    /// should be driven by one writer (the engine's ingestor thread).
    pub fn apply_delta(&self, batch: &UpdateBatch) -> Result<(Arc<Snapshot>, DeltaStats), String> {
        let base = self.current();
        let (next, stats) = base.apply_delta(base.generation() + 1, batch)?;
        let next = Arc::new(next);
        self.install(Arc::clone(&next)).map_err(|e| e.to_string())?;
        Ok((next, stats))
    }
}

/// Rejected install: the offered snapshot is not newer than the
/// published one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleSnapshot {
    /// Generation of the snapshot that was offered.
    pub offered: u64,
    /// Generation the catalog already serves.
    pub current: u64,
}

impl std::fmt::Display for StaleSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale snapshot: offered generation {} <= current {}",
            self.offered, self.current
        )
    }
}

impl std::error::Error for StaleSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 13) as f64 + 1e-4 * i as f64, (i / 13) as f64))
            .collect()
    }

    #[test]
    fn build_stamps_generation_and_indexes_agree() {
        let snap = Snapshot::build(3, &pts(50)).unwrap();
        assert_eq!(snap.generation(), 3);
        assert_eq!(snap.len(), 50);
        assert_eq!(snap.rtree().len(), snap.voronoi().len());
        assert!(!snap.is_empty());
    }

    #[test]
    fn empty_and_degenerate_datasets_are_rejected() {
        assert!(Snapshot::build(0, &[]).is_err());
        let dup = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert!(Snapshot::build(0, &dup).is_err());
    }

    #[test]
    fn install_swaps_and_returns_the_retired_snapshot() {
        let catalog = SnapshotCatalog::new(Arc::new(Snapshot::build(0, &pts(20)).unwrap()));
        let pinned = catalog.current();
        assert_eq!(pinned.generation(), 0);

        let next = Arc::new(Snapshot::build(1, &pts(30)).unwrap());
        let retired = catalog.install(next).unwrap();
        assert_eq!(retired.generation(), 0);
        assert_eq!(catalog.generation(), 1);
        // The pinned Arc still reads generation 0's data.
        assert_eq!(pinned.len(), 20);
        assert_eq!(catalog.current().len(), 30);
    }

    #[test]
    fn stale_installs_are_rejected() {
        let catalog = SnapshotCatalog::new(Arc::new(Snapshot::build(5, &pts(20)).unwrap()));
        let stale = Arc::new(Snapshot::build(5, &pts(10)).unwrap());
        assert_eq!(
            catalog.install(stale).unwrap_err(),
            StaleSnapshot {
                offered: 5,
                current: 5
            }
        );
        assert_eq!(catalog.generation(), 5);
        assert_eq!(catalog.current().len(), 20, "rollback must not happen");
    }

    #[test]
    fn apply_delta_publishes_next_generation() {
        let snap = Snapshot::build(4, &pts(60)).unwrap();
        let batch = UpdateBatch {
            inserts: vec![Point::new(50.0, 50.0), Point::new(51.0, 50.5)],
            deletes: vec![3, 17, 3],
        };
        let (next, stats) = snap.apply_delta(5, &batch).unwrap();
        assert_eq!(next.generation(), 5);
        assert_eq!(next.len(), 60 - 2 + 2);
        assert_eq!(stats.deletes, 2, "duplicate delete ids collapse");
        assert_eq!(stats.inserts, 2);
        // The base snapshot is untouched (copy-on-write).
        assert_eq!(snap.len(), 60);
        assert_eq!(snap.generation(), 4);
        // Determinism: a full rebuild over the delta's points matches.
        let rebuilt = Snapshot::build(5, next.points()).unwrap();
        assert_eq!(rebuilt.points(), next.points());
    }

    #[test]
    fn apply_delta_rejects_invalid_batches() {
        let snap = Snapshot::build(0, &pts(10)).unwrap();
        let bad = UpdateBatch {
            inserts: vec![],
            deletes: vec![10],
        };
        assert!(snap.apply_delta(1, &bad).is_err());
        let empties = UpdateBatch {
            inserts: vec![],
            deletes: (0..10).collect(),
        };
        assert!(snap.apply_delta(1, &empties).is_err());
    }

    #[test]
    fn catalog_apply_delta_installs_atomically() {
        let catalog = SnapshotCatalog::new(Arc::new(Snapshot::build(0, &pts(40)).unwrap()));
        let pinned = catalog.current();
        let batch = UpdateBatch {
            inserts: vec![Point::new(40.0, 40.0)],
            deletes: vec![0],
        };
        let (published, stats) = catalog.apply_delta(&batch).unwrap();
        assert_eq!(published.generation(), 1);
        assert_eq!(catalog.generation(), 1);
        assert_eq!(stats.inserts + stats.deletes, 2);
        assert_eq!(pinned.len(), 40, "pinned readers keep the old data");
    }

    #[test]
    fn retirement_is_arc_reference_counting() {
        let catalog = SnapshotCatalog::new(Arc::new(Snapshot::build(0, &pts(20)).unwrap()));
        let weak = {
            let pinned = catalog.current();
            let weak = Arc::downgrade(&pinned);
            catalog
                .install(Arc::new(Snapshot::build(1, &pts(25)).unwrap()))
                .unwrap();
            assert!(weak.upgrade().is_some(), "pinned generation freed early");
            weak
        };
        assert!(
            weak.upgrade().is_none(),
            "old generation leaked after the last pin dropped"
        );
    }
}
