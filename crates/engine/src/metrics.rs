//! Engine-side observability: request counters, cache hit/miss, a
//! log-bucketed latency histogram, and aggregated [`QueryStats`].
//!
//! Everything is lock-free except the [`QueryStats`] aggregate (a plain
//! mutex absorbed once per finished query — nanoseconds next to an
//! algorithm run). Latencies go into power-of-two nanosecond buckets, so
//! percentile estimates are upper bounds with at most 2× resolution —
//! plenty for a throughput report, constant memory forever.

use crate::planner::Algorithm;
use crate::sync::{RankedMutex, RANK_METRICS};
use ssq_core::{DeltaStats, QueryStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A histogram of durations in power-of-two nanosecond buckets.
///
/// Bucket `i` (for `i >= 1`) covers `[2^(i-1), 2^i)` nanoseconds; bucket 0
/// holds exact zeros. Recording is a single relaxed `fetch_add`.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket(nanos: u64) -> usize {
        (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`].
#[derive(Clone)]
pub struct LatencySnapshot {
    counts: [u64; BUCKETS],
}

impl Default for LatencySnapshot {
    fn default() -> LatencySnapshot {
        LatencySnapshot {
            counts: [0; BUCKETS],
        }
    }
}

impl LatencySnapshot {
    /// Total number of recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every bucket of `other` into `self`. Because the buckets are
    /// fixed power-of-two ranges, merging histograms from different
    /// engines (e.g. one per shard) is exact.
    pub fn absorb(&mut self, other: &LatencySnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as an upper bound: the top edge
    /// of the bucket holding that rank. Zero when nothing was recorded.
    pub fn percentile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Upper edge of bucket i: 2^i ns (bucket 0 holds zeros).
                let nanos = if i == 0 { 0 } else { 1u64 << i.min(63) };
                return Duration::from_nanos(nanos);
            }
        }
        Duration::from_nanos(u64::MAX)
    }
}

/// The mutex-guarded slice of the metrics: everything that is not a
/// single word. One lock (the engine's rank-600 leaf) instead of two so
/// that a snapshot read never holds two guards at once.
#[derive(Default)]
struct Aggregates {
    /// Queries served per snapshot generation — the observable form of
    /// "dataset lifetime": a generation whose count stops moving has
    /// fully drained.
    per_generation: BTreeMap<u64, u64>,
    stats: QueryStats,
}

/// Shared counters for one [`Engine`](crate::Engine).
pub struct EngineMetrics {
    requests: [AtomicU64; Algorithm::ALL.len()],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sessions_opened: AtomicU64,
    session_updates: AtomicU64,
    /// Current snapshot generation, mirrored here so one metrics read
    /// answers "what is this engine serving right now".
    generation: AtomicU64,
    /// Snapshot swaps performed over the engine's lifetime.
    swaps: AtomicU64,
    /// Wall-clock nanoseconds the most recent reindex build took.
    last_build_nanos: AtomicU64,
    diagram_hits: AtomicU64,
    diagram_misses: AtomicU64,
    /// Cells in the most recently published skyline diagram.
    diagram_cells: AtomicU64,
    /// Wall-clock nanoseconds the most recent diagram build took.
    diagram_build_nanos: AtomicU64,
    /// Hot keys materialized into the most recent diagram.
    diagram_warmed: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_inserts: AtomicU64,
    ingest_deletes: AtomicU64,
    ingest_incremental: AtomicU64,
    ingest_rebuilds: AtomicU64,
    ingest_dirty_cells: AtomicU64,
    ingest_shed: AtomicU64,
    /// Operations in the most recently published delta batch.
    ingest_last_ops: AtomicU64,
    /// Wall-clock nanoseconds the most recent delta publish took.
    ingest_last_build_nanos: AtomicU64,
    aggregates: RankedMutex<Aggregates>,
    latency: LatencyHistogram,
}

impl Default for EngineMetrics {
    fn default() -> EngineMetrics {
        EngineMetrics::new()
    }
}

impl EngineMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> EngineMetrics {
        EngineMetrics {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            session_updates: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            last_build_nanos: AtomicU64::new(0),
            diagram_hits: AtomicU64::new(0),
            diagram_misses: AtomicU64::new(0),
            diagram_cells: AtomicU64::new(0),
            diagram_build_nanos: AtomicU64::new(0),
            diagram_warmed: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            ingest_inserts: AtomicU64::new(0),
            ingest_deletes: AtomicU64::new(0),
            ingest_incremental: AtomicU64::new(0),
            ingest_rebuilds: AtomicU64::new(0),
            ingest_dirty_cells: AtomicU64::new(0),
            ingest_shed: AtomicU64::new(0),
            ingest_last_ops: AtomicU64::new(0),
            ingest_last_build_nanos: AtomicU64::new(0),
            aggregates: RankedMutex::new("engine.metrics", RANK_METRICS, Aggregates::default()),
            latency: LatencyHistogram::new(),
        }
    }

    /// The metrics lock's `(name, rank)`, for lock-order assertions.
    pub fn lock_info(&self) -> (&'static str, u32) {
        (self.aggregates.name(), self.aggregates.rank())
    }

    /// Records a cache lookup outcome.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one finished snapshot query: which algorithm ran, which
    /// dataset generation it was answered against, how long it took end
    /// to end, and its work counters.
    pub fn record_query(
        &self,
        algorithm: Algorithm,
        generation: u64,
        latency: Duration,
        stats: &QueryStats,
    ) {
        self.requests[algorithm.index()].fetch_add(1, Ordering::Relaxed);
        {
            let mut agg = self.aggregates.lock();
            *agg.per_generation.entry(generation).or_insert(0) += 1;
            agg.stats.absorb(stats);
        }
        self.latency.record(latency);
    }

    /// Records the generation currently being served (at construction
    /// and after every swap).
    pub fn note_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// Records one completed snapshot swap: the new generation and how
    /// long its off-line index build took.
    pub fn record_swap(&self, generation: u64, build: Duration) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.last_build_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Records one query answered straight from the skyline diagram.
    ///
    /// Diagram hits are deliberately *not* counted in the per-algorithm
    /// request array — no algorithm ran — but they do join the latency
    /// histogram and the per-generation tallies, so total served is
    /// `queries() + diagram.hits`.
    pub fn record_diagram_hit(&self, generation: u64, latency: Duration) {
        self.diagram_hits.fetch_add(1, Ordering::Relaxed);
        *self
            .aggregates
            .lock()
            .per_generation
            .entry(generation)
            .or_insert(0) += 1;
        self.latency.record(latency);
    }

    /// Records a diagram probe that fell through to the planner.
    pub fn record_diagram_miss(&self) {
        self.diagram_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a skyline diagram being published: its total cell count,
    /// build wall-clock, and how many hot keys it materialized.
    pub fn record_diagram_publish(&self, cells: u64, build: Duration, warmed: u64) {
        self.diagram_cells.store(cells, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.diagram_build_nanos.store(nanos, Ordering::Relaxed);
        self.diagram_warmed.store(warmed, Ordering::Relaxed);
    }

    /// Records one delta batch published as a new generation: what the
    /// batch contained, whether the incremental path ran, and how long
    /// the publish (delta build + install) took.
    pub fn record_ingest(&self, stats: &DeltaStats, build: Duration) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_inserts
            .fetch_add(stats.inserts as u64, Ordering::Relaxed);
        self.ingest_deletes
            .fetch_add(stats.deletes as u64, Ordering::Relaxed);
        if stats.incremental {
            self.ingest_incremental.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ingest_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        self.ingest_dirty_cells
            .fetch_add(stats.dirty_cells as u64, Ordering::Relaxed);
        self.ingest_last_ops
            .store((stats.inserts + stats.deletes) as u64, Ordering::Relaxed);
        let nanos = u64::try_from(build.as_nanos()).unwrap_or(u64::MAX);
        self.ingest_last_build_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Records a batch refused by ingest admission control (the ingest
    /// queue was at capacity).
    pub fn record_ingest_shed(&self) {
        self.ingest_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a continuous session being opened.
    pub fn record_session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one applied motion update (kept out of the query latency
    /// histogram: updates and snapshot queries are different workloads).
    pub fn record_session_update(&self, stats: &QueryStats) {
        self.session_updates.fetch_add(1, Ordering::Relaxed);
        self.aggregates.lock().stats.absorb(stats);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Copy the guarded slice first and release the leaf lock before
        // assembling the (lock-free) remainder.
        let (queries_per_generation, stats) = {
            let agg = self.aggregates.lock();
            (agg.per_generation.clone(), agg.stats)
        };
        MetricsSnapshot {
            requests: std::array::from_fn(|i| self.requests[i].load(Ordering::Relaxed)),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            session_updates: self.session_updates.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            last_build: Duration::from_nanos(self.last_build_nanos.load(Ordering::Relaxed)),
            queries_per_generation,
            latency: self.latency.snapshot(),
            stats,
            kernel_path: ssq_geom::simd::path_name(),
            net: NetCounters::default(),
            ingest: IngestCounters {
                batches: self.ingest_batches.load(Ordering::Relaxed),
                inserts: self.ingest_inserts.load(Ordering::Relaxed),
                deletes: self.ingest_deletes.load(Ordering::Relaxed),
                incremental: self.ingest_incremental.load(Ordering::Relaxed),
                rebuilds: self.ingest_rebuilds.load(Ordering::Relaxed),
                dirty_cells: self.ingest_dirty_cells.load(Ordering::Relaxed),
                shed: self.ingest_shed.load(Ordering::Relaxed),
                last_batch_ops: self.ingest_last_ops.load(Ordering::Relaxed),
                last_build: Duration::from_nanos(
                    self.ingest_last_build_nanos.load(Ordering::Relaxed),
                ),
                rebalance_moves: 0,
            },
            diagram: DiagramCounters {
                hits: self.diagram_hits.load(Ordering::Relaxed),
                misses: self.diagram_misses.load(Ordering::Relaxed),
                cells: self.diagram_cells.load(Ordering::Relaxed),
                build: Duration::from_nanos(self.diagram_build_nanos.load(Ordering::Relaxed)),
                warmed: self.diagram_warmed.load(Ordering::Relaxed),
            },
        }
    }
}

/// Skyline-diagram counters, carried inside [`MetricsSnapshot`]. All
/// zero for an engine whose diagram is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiagramCounters {
    /// Queries answered straight from the diagram (no algorithm run).
    pub hits: u64,
    /// Probes that fell through to the planner.
    pub misses: u64,
    /// Cells in the published diagram (point-location buckets plus
    /// materialized key cells); summed across the fleet by
    /// [`absorb`](DiagramCounters::absorb).
    pub cells: u64,
    /// Wall-clock duration of the most recent diagram build (the
    /// slowest across the fleet after [`absorb`](DiagramCounters::absorb)).
    pub build: Duration,
    /// Hot keys materialized into the published diagram.
    pub warmed: u64,
}

impl DiagramCounters {
    /// Folds another engine's counters into this one — the fleet view.
    pub fn absorb(&mut self, other: &DiagramCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.cells += other.cells;
        self.build = self.build.max(other.build);
        self.warmed += other.warmed;
    }

    /// Hits / probes, or 0.0 before any probe.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Streaming-ingest counters, carried inside [`MetricsSnapshot`]: the
/// per-generation publish cost of the delta pipeline. All zero for an
/// engine that never ingested a batch. `rebalance_moves` is zero at the
/// engine level; the shard router fills it when it snapshots a fleet
/// (points moved between shards belong to no single engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestCounters {
    /// Delta batches published as new generations.
    pub batches: u64,
    /// Points inserted across all batches.
    pub inserts: u64,
    /// Points deleted across all batches.
    pub deletes: u64,
    /// Publishes that ran the incremental (delta) index path.
    pub incremental: u64,
    /// Publishes that fell back to a full index rebuild.
    pub rebuilds: u64,
    /// Voronoi cells recomputed across all incremental publishes.
    pub dirty_cells: u64,
    /// Batches refused by ingest admission control (queue full).
    pub shed: u64,
    /// Operations (inserts + deletes) in the most recent batch.
    pub last_batch_ops: u64,
    /// Wall-clock duration of the most recent delta publish (the
    /// slowest across the fleet after [`absorb`](IngestCounters::absorb)).
    pub last_build: Duration,
    /// Points moved between shards by fleet rebalances (router-level).
    pub rebalance_moves: u64,
}

impl IngestCounters {
    /// Folds another engine's counters into this one — the fleet view.
    pub fn absorb(&mut self, other: &IngestCounters) {
        self.batches += other.batches;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.incremental += other.incremental;
        self.rebuilds += other.rebuilds;
        self.dirty_cells += other.dirty_cells;
        self.shed += other.shed;
        self.last_batch_ops += other.last_batch_ops;
        self.last_build = self.last_build.max(other.last_build);
        self.rebalance_moves += other.rebalance_moves;
    }
}

/// Network front-end counters, carried inside [`MetricsSnapshot`] so
/// one metrics read answers for the whole serving stack. All zero for
/// an engine that is not served over a socket; the `ssq-net` crate
/// fills them from its own atomics when it snapshots a server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections refused at the connection cap (greeted with a
    /// `RetryLater` frame and closed).
    pub shed_connections: u64,
    /// Requests refused by admission control — the per-client in-flight
    /// window or the engine job queue was full.
    pub shed_requests: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Malformed, oversized, or wrong-version frames received (each one
    /// is fatal to its connection).
    pub frame_errors: u64,
    /// Writes abandoned because a client socket stalled past the write
    /// timeout (the connection is then torn down).
    pub write_timeouts: u64,
}

impl NetCounters {
    /// Adds every counter of `other` into `self` — the fleet view over
    /// several servers.
    pub fn absorb(&mut self, other: &NetCounters) {
        self.accepted += other.accepted;
        self.active += other.active;
        self.shed_connections += other.shed_connections;
        self.shed_requests += other.shed_requests;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frame_errors += other.frame_errors;
        self.write_timeouts += other.write_timeouts;
    }
}

/// A point-in-time copy of an engine's metrics.
#[derive(Clone, Default)]
pub struct MetricsSnapshot {
    /// Completed requests per algorithm, indexed by [`Algorithm::index`].
    pub requests: [u64; Algorithm::ALL.len()],
    /// Context-cache hits.
    pub cache_hits: u64,
    /// Context-cache misses.
    pub cache_misses: u64,
    /// Continuous sessions opened over the engine's lifetime.
    pub sessions_opened: u64,
    /// Motion updates applied across all sessions.
    pub session_updates: u64,
    /// Snapshot generation being served when the snapshot was taken
    /// (the newest generation across the fleet after
    /// [`absorb`](MetricsSnapshot::absorb)).
    pub generation: u64,
    /// Snapshot swaps performed (reindexes published).
    pub swaps: u64,
    /// Wall-clock duration of the most recent reindex build (zero until
    /// the first swap; the slowest last build across the fleet after
    /// [`absorb`](MetricsSnapshot::absorb)).
    pub last_build: Duration,
    /// Queries served per snapshot generation, in generation order.
    pub queries_per_generation: BTreeMap<u64, u64>,
    /// Latency histogram of snapshot queries.
    pub latency: LatencySnapshot,
    /// Work counters absorbed from every query and update.
    pub stats: QueryStats,
    /// The tile-kernel dispatch serving this engine's scratch kernels
    /// (`"scalar"`, `"tiled"`, `"sse2"`, or `"avx2"` — see
    /// [`ssq_geom::simd::path_name`]). Empty on a default snapshot that
    /// never came from a live engine.
    pub kernel_path: &'static str,
    /// Socket front-end counters (zero unless this snapshot came from a
    /// running `ssq-net` server).
    pub net: NetCounters,
    /// Streaming-ingest counters (zero unless deltas were published).
    pub ingest: IngestCounters,
    /// Skyline-diagram counters (zero unless the diagram is enabled).
    pub diagram: DiagramCounters,
}

impl MetricsSnapshot {
    /// Completed snapshot queries answered by a skyline algorithm (sum
    /// over algorithms). Diagram hits are counted separately in
    /// [`diagram`](MetricsSnapshot::diagram); total served is
    /// `queries() + diagram.hits`.
    pub fn queries(&self) -> u64 {
        self.requests.iter().sum()
    }

    /// Requests served by `algorithm`.
    pub fn requests_for(&self, algorithm: Algorithm) -> u64 {
        self.requests[algorithm.index()]
    }

    /// Cache hits / lookups, or 0.0 before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Folds another snapshot into this one — the fleet view over many
    /// engines. Counters add, histograms merge bucket-wise, and the
    /// [`QueryStats`] aggregate absorbs; every derived quantity
    /// ([`queries`](MetricsSnapshot::queries), percentiles, hit rate)
    /// then reads as the combined population.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (mine, theirs) in self.requests.iter_mut().zip(&other.requests) {
            *mine += theirs;
        }
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.sessions_opened += other.sessions_opened;
        self.session_updates += other.session_updates;
        // Generations are fleet-wide (the router stamps every shard's
        // snapshot from one counter), so the max is the newest published
        // anywhere; swap counts add, and the slowest last build is the
        // fleet's effective reindex cost.
        self.generation = self.generation.max(other.generation);
        self.swaps += other.swaps;
        self.last_build = self.last_build.max(other.last_build);
        for (&generation, &count) in &other.queries_per_generation {
            *self.queries_per_generation.entry(generation).or_insert(0) += count;
        }
        self.latency.absorb(&other.latency);
        self.stats.absorb(&other.stats);
        // Every shard in a fleet shares one process, hence one detected
        // dispatch — absorbing just fills in an unset fleet view.
        if self.kernel_path.is_empty() {
            self.kernel_path = other.kernel_path;
        }
        self.net.absorb(&other.net);
        self.ingest.absorb(&other.ingest);
        self.diagram.absorb(&other.diagram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(1023), 10);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn percentiles_are_monotone_upper_bounds() {
        let h = LatencyHistogram::new();
        for nanos in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800] {
            h.record(Duration::from_nanos(nanos));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        let p50 = s.percentile(0.5);
        let p99 = s.percentile(0.99);
        assert!(p50 >= Duration::from_nanos(800), "p50 = {p50:?}");
        assert!(p99 >= p50);
        // Upper bound: the largest sample (12800 ns) sits in [8192, 16384).
        assert!(p99 <= Duration::from_nanos(16384), "p99 = {p99:?}");
    }

    #[test]
    fn snapshot_reports_the_dispatched_kernel_path() {
        let s = EngineMetrics::new().snapshot();
        assert_eq!(s.kernel_path, ssq_geom::simd::path_name());
        let mut fleet = MetricsSnapshot::default();
        assert!(fleet.kernel_path.is_empty());
        fleet.absorb(&s);
        assert_eq!(fleet.kernel_path, s.kernel_path);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn cache_and_request_accounting() {
        let m = EngineMetrics::new();
        m.record_cache(true);
        m.record_cache(true);
        m.record_cache(false);
        let stats = QueryStats {
            dominance_checks: 7,
            ..QueryStats::default()
        };
        m.record_query(Algorithm::Vs2, 0, Duration::from_micros(3), &stats);
        m.record_query(Algorithm::Naive, 1, Duration::from_micros(1), &stats);
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.queries(), 2);
        assert_eq!(s.requests_for(Algorithm::Vs2), 1);
        assert_eq!(s.requests_for(Algorithm::Naive), 1);
        assert_eq!(s.requests_for(Algorithm::B2s2), 0);
        assert_eq!(s.stats.dominance_checks, 14);
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.queries_per_generation.get(&0), Some(&1));
        assert_eq!(s.queries_per_generation.get(&1), Some(&1));
    }

    #[test]
    fn swap_accounting() {
        let m = EngineMetrics::new();
        m.note_generation(0);
        assert_eq!(m.snapshot().swaps, 0);
        assert_eq!(m.snapshot().last_build, Duration::ZERO);
        m.record_swap(1, Duration::from_millis(7));
        m.record_swap(2, Duration::from_millis(3));
        let s = m.snapshot();
        assert_eq!(s.generation, 2);
        assert_eq!(s.swaps, 2);
        assert_eq!(s.last_build, Duration::from_millis(3));
    }

    #[test]
    fn net_counters_absorb_additively() {
        let mut a = NetCounters {
            accepted: 3,
            active: 1,
            shed_connections: 2,
            shed_requests: 5,
            bytes_in: 100,
            bytes_out: 200,
            frame_errors: 1,
            write_timeouts: 0,
        };
        let b = NetCounters {
            accepted: 7,
            active: 2,
            shed_connections: 0,
            shed_requests: 1,
            bytes_in: 50,
            bytes_out: 25,
            frame_errors: 0,
            write_timeouts: 4,
        };
        a.absorb(&b);
        assert_eq!(a.accepted, 10);
        assert_eq!(a.active, 3);
        assert_eq!(a.shed_connections, 2);
        assert_eq!(a.shed_requests, 6);
        assert_eq!(a.bytes_in, 150);
        assert_eq!(a.bytes_out, 225);
        assert_eq!(a.frame_errors, 1);
        assert_eq!(a.write_timeouts, 4);

        // And through the MetricsSnapshot fleet fold.
        let mut fleet = MetricsSnapshot::default();
        let one = MetricsSnapshot {
            net: b,
            ..MetricsSnapshot::default()
        };
        fleet.absorb(&one);
        fleet.absorb(&one);
        assert_eq!(fleet.net.accepted, 14);
    }

    #[test]
    fn ingest_accounting_and_absorb() {
        let m = EngineMetrics::new();
        m.record_ingest(
            &DeltaStats {
                inserts: 30,
                deletes: 20,
                incremental: true,
                dirty_cells: 55,
            },
            Duration::from_millis(4),
        );
        m.record_ingest(
            &DeltaStats {
                inserts: 500,
                deletes: 0,
                incremental: false,
                dirty_cells: 0,
            },
            Duration::from_millis(90),
        );
        m.record_ingest_shed();
        let s = m.snapshot();
        assert_eq!(s.ingest.batches, 2);
        assert_eq!(s.ingest.inserts, 530);
        assert_eq!(s.ingest.deletes, 20);
        assert_eq!(s.ingest.incremental, 1);
        assert_eq!(s.ingest.rebuilds, 1);
        assert_eq!(s.ingest.dirty_cells, 55);
        assert_eq!(s.ingest.shed, 1);
        assert_eq!(s.ingest.last_batch_ops, 500);
        assert_eq!(s.ingest.last_build, Duration::from_millis(90));

        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&s);
        fleet.absorb(&s);
        assert_eq!(fleet.ingest.batches, 4);
        assert_eq!(fleet.ingest.inserts, 1060);
        assert_eq!(fleet.ingest.last_build, Duration::from_millis(90));
        assert_eq!(fleet.ingest.rebalance_moves, 0);
    }

    #[test]
    fn diagram_accounting_and_absorb() {
        let m = EngineMetrics::new();
        m.record_diagram_publish(4100, Duration::from_millis(12), 4);
        m.record_diagram_hit(2, Duration::from_micros(1));
        m.record_diagram_hit(2, Duration::from_micros(2));
        m.record_diagram_miss();
        let s = m.snapshot();
        assert_eq!(s.diagram.hits, 2);
        assert_eq!(s.diagram.misses, 1);
        assert_eq!(s.diagram.cells, 4100);
        assert_eq!(s.diagram.build, Duration::from_millis(12));
        assert_eq!(s.diagram.warmed, 4);
        assert!((s.diagram.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Hits join the histogram and generation tallies, not requests.
        assert_eq!(s.queries(), 0);
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.queries_per_generation.get(&2), Some(&2));

        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&s);
        fleet.absorb(&s);
        assert_eq!(fleet.diagram.hits, 4);
        assert_eq!(fleet.diagram.misses, 2);
        assert_eq!(fleet.diagram.cells, 8200);
        assert_eq!(fleet.diagram.build, Duration::from_millis(12));
        assert_eq!(fleet.diagram.warmed, 8);
    }

    #[test]
    fn snapshots_absorb_into_a_fleet_view() {
        let a = EngineMetrics::new();
        let b = EngineMetrics::new();
        let stats = QueryStats {
            dominance_checks: 3,
            ..QueryStats::default()
        };
        a.record_cache(true);
        a.record_query(Algorithm::Vs2, 1, Duration::from_micros(2), &stats);
        a.record_swap(1, Duration::from_millis(5));
        b.record_cache(false);
        b.record_query(Algorithm::Naive, 0, Duration::from_micros(8), &stats);
        b.record_query(Algorithm::B2s2, 1, Duration::from_micros(1), &stats);

        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&a.snapshot());
        fleet.absorb(&b.snapshot());
        assert_eq!(fleet.queries(), 3);
        assert_eq!(fleet.generation, 1);
        assert_eq!(fleet.swaps, 1);
        assert_eq!(fleet.last_build, Duration::from_millis(5));
        assert_eq!(fleet.queries_per_generation.get(&0), Some(&1));
        assert_eq!(fleet.queries_per_generation.get(&1), Some(&2));
        assert_eq!(fleet.requests_for(Algorithm::Vs2), 1);
        assert_eq!(fleet.requests_for(Algorithm::Naive), 1);
        assert_eq!(fleet.requests_for(Algorithm::B2s2), 1);
        assert_eq!(fleet.cache_hits, 1);
        assert_eq!(fleet.cache_misses, 1);
        assert_eq!(fleet.latency.count(), 3);
        assert_eq!(fleet.stats.dominance_checks, 9);
        // Percentiles read the merged population.
        assert!(fleet.latency.percentile(1.0) >= Duration::from_micros(8));
    }
}
