//! Lock-rank infrastructure: the runtime half of the `ssq-analyze`
//! pass.
//!
//! Every long-lived engine/shard mutex is a [`RankedMutex`] carrying a
//! `(name, rank)` pair from the table below. In debug builds each
//! thread keeps a stack of the ranks it currently holds, and acquiring
//! a lock whose rank is **not strictly greater** than every held rank
//! panics immediately — turning a potential deadlock (which would need
//! the right interleaving to reproduce) into a deterministic failure on
//! the first wrong-order acquisition, on any interleaving. Release
//! builds compile the bookkeeping away; a `RankedMutex` is then exactly
//! a named `Mutex`.
//!
//! ## The rank table
//!
//! | rank | lock | holder |
//! |-----:|------|--------|
//! |  50 | `net.connections` | ssq-net server's connection registry |
//! | 100 | `shard.reindex` | serializes fleet-wide reindex |
//! | 110 | `shard.fleet` | current [`Fleet`] snapshot pointer |
//! | 150 | `engine.reindex` | serializes per-engine reindex |
//! | 160 | `engine.diagram.builders` | background diagram-builder join handles |
//! | 200 | `engine.catalog` | [`SnapshotCatalog`] current pointer |
//! | 240 | `engine.diagram` | published skyline diagram + its config |
//! | 250 | `engine.hotkeys` | hot canonical-query-key tracker |
//! | 300 | `engine.cache` | context-cache LRU state |
//! | 400 | `engine.sessions` | session map |
//! | 450 | `session.pending` | per-session pending batch |
//! | 460 | `session.sky` | per-session continuous skyline |
//! | 500 | `shard.merge` | cross-shard merge scratch arena |
//! | 600 | `engine.metrics` | aggregated metrics (histogram + per-gen) |
//! | 700 | `net.conn.writer` | per-connection socket write half + encode scratch |
//!
//! Acquisition must follow strictly ascending ranks, which makes the
//! wait-for graph acyclic and the system deadlock-free: a cycle would
//! need some thread to wait on a rank ≤ one it holds, which the checker
//! forbids. The orderings that actually occur are `shard.reindex →
//! engine.catalog`, `shard.reindex → shard.fleet`, `engine.reindex →
//! engine.catalog`, `shard.fleet → engine.*` (query fan-out),
//! `engine.sessions → session.pending → session.sky`, and `* →
//! engine.metrics` (metrics is the universal leaf among engine locks).
//! The two `net.*` locks bracket the table: the connection registry
//! (rank 50) is held only for registry mutation — never across an
//! engine call or a socket write — and a connection's writer lock
//! (rank 700) is a per-connection leaf a thread may take after reading
//! any engine state (e.g. a metrics snapshot for a stats frame), so it
//! outranks everything.
//!
//! Short-lived condvar-paired mutexes (the worker-pool queue and the
//! [`Ticket`](crate::Ticket) result cell) stay raw `Mutex`es — a
//! condvar wait *releases* the lock, which a held-rank stack cannot
//! model — and use the poison-recovering helpers below instead.
//!
//! [`Fleet`]: ../../ssq_shard/index.html
//! [`SnapshotCatalog`]: crate::SnapshotCatalog

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Rank of the shard-level reindex serialization lock.
pub const RANK_SHARD_REINDEX: u32 = 100;
/// Rank of the sharded router's fleet snapshot pointer.
pub const RANK_SHARD_FLEET: u32 = 110;
/// Rank of the per-engine reindex serialization lock.
pub const RANK_ENGINE_REINDEX: u32 = 150;
/// Rank of the engine's background diagram-builder handle list.
/// Between reindex and catalog: reindex spawns builders while holding
/// its lock, and a builder reads the catalog after registering.
pub const RANK_DIAGRAM_BUILDERS: u32 = 160;
/// Rank of the engine's snapshot-catalog pointer.
pub const RANK_CATALOG: u32 = 200;
/// Rank of the engine's published skyline diagram slot. Above the
/// catalog: publishers stamp the diagram with the generation they read
/// from the catalog before taking this lock.
pub const RANK_DIAGRAM: u32 = 240;
/// Rank of the engine's hot-query-key tracker, recorded on diagram
/// misses just before the context-cache probe.
pub const RANK_HOT_KEYS: u32 = 250;
/// Rank of the engine's context-cache interior state.
pub const RANK_CONTEXT_CACHE: u32 = 300;
/// Rank of the engine's session map.
pub const RANK_SESSION_MAP: u32 = 400;
/// Rank of a session's pending-batch buffer.
pub const RANK_SESSION_PENDING: u32 = 450;
/// Rank of a session's continuous-skyline state.
pub const RANK_SESSION_SKY: u32 = 460;
/// Rank of the sharded router's merge scratch arena.
pub const RANK_SHARD_MERGE: u32 = 500;
/// Rank of the engine's aggregated metrics — the universal leaf among
/// engine locks.
pub const RANK_METRICS: u32 = 600;
/// Rank of the ssq-net server's connection registry — the outermost
/// lock: taken bare at accept/teardown, released before any engine or
/// socket work.
pub const RANK_NET_CONNECTIONS: u32 = 50;
/// Rank of an ssq-net connection's socket write half — a
/// per-connection leaf above even `engine.metrics`, because a stats
/// response snapshots the metrics before taking the writer to send it.
pub const RANK_NET_WRITER: u32 = 700;

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks (and names, for diagnostics) of locks this thread holds,
    /// in acquisition order.
    static HELD: std::cell::RefCell<Vec<(u32, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A named, ranked mutex. See the [module docs](self) for the rank
/// table and the deadlock-freedom argument.
#[derive(Debug)]
pub struct RankedMutex<T> {
    name: &'static str,
    rank: u32,
    // Named `raw` (not `inner`) so lock-rank-static never confuses this
    // internal std mutex with a ranked field of the same name elsewhere.
    raw: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex with the given diagnostic name and
    /// rank.
    pub fn new(name: &'static str, rank: u32, value: T) -> Self {
        RankedMutex {
            name,
            rank,
            raw: Mutex::new(value),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Acquires the lock.
    ///
    /// In debug builds, panics if this thread already holds a lock of
    /// equal or higher rank — the acquisition would violate the global
    /// order and could deadlock under a different interleaving.
    /// Poisoning is recovered: every `RankedMutex` protects state kept
    /// coherent by construction (pointer swaps, monotonic counters,
    /// self-healing caches), so a panicking holder cannot leave it
    /// torn.
    pub fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                if self.rank <= top_rank {
                    // ssq-analyze: allow(no-panic): the whole point of the checker is to fail fast, in debug builds only, on a lock-order violation
                    panic!(
                        "lock-order violation: acquiring `{}` (rank {}) while \
                         holding `{}` (rank {}); ranks must strictly ascend",
                        self.name, self.rank, top_name, top_rank
                    );
                }
            }
            held.push((self.rank, self.name));
        });
        RankedGuard {
            guard: self.raw.lock().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }
}

/// RAII guard for a [`RankedMutex`]; releases the rank (debug builds)
/// and the lock on drop.
#[derive(Debug)]
pub struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: u32,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(rank, _)| rank == self.rank) {
                held.remove(pos);
            }
        });
    }
}

/// Locks a raw `Mutex`, recovering from poisoning.
///
/// For the short-lived condvar-paired mutexes that stay unranked (the
/// pool queue, the ticket cell): their protected state is kept coherent
/// by construction, so a panicking holder cannot leave it torn and the
/// poison flag carries no information.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering from poisoning.
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering from poisoning.
pub fn wait_timeout_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ascending_acquisition_is_allowed() {
        let low = RankedMutex::new("test.low", 10, 0u32);
        let high = RankedMutex::new("test.high", 20, 0u32);
        let _l = low.lock();
        let _h = high.lock();
    }

    #[test]
    fn reacquisition_after_release_is_allowed() {
        let low = RankedMutex::new("test.low", 10, 0u32);
        let high = RankedMutex::new("test.high", 20, 0u32);
        {
            let _h = high.lock();
        }
        let _l = low.lock();
        drop(_l);
        let _h = high.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_acquisition_panics() {
        let low = RankedMutex::new("test.low", 10, 0u32);
        let high = RankedMutex::new("test.high", 20, 0u32);
        let _h = high.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _l = low.lock();
        }))
        .expect_err("descending ranks must panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("test.low"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn equal_rank_acquisition_panics() {
        let a = RankedMutex::new("test.a", 10, 0u32);
        let b = RankedMutex::new("test.b", 10, 0u32);
        let _a = a.lock();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _b = b.lock();
        }))
        .is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_stack_unwinds_with_guards() {
        let low = RankedMutex::new("test.low", 10, 0u32);
        let high = RankedMutex::new("test.high", 20, 0u32);
        // A rank violation mid-stack must not corrupt the stack: after
        // the panic unwinds and all guards drop, fresh ascending
        // acquisition works again.
        {
            let _h = high.lock();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _l = low.lock();
            }));
        }
        let _l = low.lock();
        let _h = high.lock();
    }

    #[test]
    fn poisoned_ranked_mutex_recovers() {
        let m = Arc::new(RankedMutex::new("test.poison", 10, 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a panicking holder");
    }

    #[test]
    fn helpers_recover_from_poison() {
        let m = Arc::new(Mutex::new(3u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock_unpoisoned(&m), 3);
    }

    #[test]
    fn ranks_are_independent_across_threads() {
        let high = Arc::new(RankedMutex::new("test.high", 20, 0u32));
        let low = Arc::new(RankedMutex::new("test.low", 10, 0u32));
        let _h = high.lock();
        // Another thread holds nothing, so taking the low lock there is
        // legal even while this thread holds the high one.
        let low2 = Arc::clone(&low);
        std::thread::spawn(move || {
            let _l = low2.lock();
        })
        .join()
        .expect("cross-thread low acquisition is clean");
    }
}
